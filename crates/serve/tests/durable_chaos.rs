//! Kill-during-publish chaos: the durable publish path dies at every
//! faultpoint of the `serve.wal_append` → `store.wal_append` →
//! `store.checkpoint` → `store.manifest_publish` chain, and every time
//! the two acceptance invariants must hold — **no acknowledged mutation
//! is lost** (the recovered fingerprint and top-k query bits equal an
//! uninterrupted run's) and **the service always restarts serving**.
//!
//! Each test arms only its own faultpoint and disarms it; both
//! registries (serve's and store's) are process-global, so `reset()`
//! would race sibling tests.
#![cfg(feature = "fault-injection")]

mod common;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use atd_core::greedy::{Discovery, DiscoveryOptions};
use atd_distance::persist::graph_fingerprint;
use atd_graph::{ExpertGraph, GraphDelta, NodeId};
use atd_serve::{DurableConfig, DurableError, DurableService, Request, ServeConfig};
use atd_store::JournalConfig;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "atd_serve_chaos_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn options() -> DiscoveryOptions {
    DiscoveryOptions {
        threads: Some(1),
        ..Default::default()
    }
}

fn config() -> DurableConfig {
    DurableConfig {
        journal: JournalConfig {
            sync_writes: false,
            ..Default::default()
        },
        serve: ServeConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline: None,
            ..ServeConfig::default()
        },
        discovery: options(),
        checkpoint_every: 0,
    }
}

fn delta(u: usize, v: usize, w: f64) -> GraphDelta {
    let mut d = GraphDelta::new();
    d.upsert_edge(NodeId::from_index(u), NodeId::from_index(v), w);
    d
}

/// Asserts the service answers bit-identically to an uninterrupted run
/// over `graph` — the "recovered state matches a non-crashed run"
/// acceptance check.
fn assert_serves_uninterrupted_state(
    service: &DurableService,
    graph: &ExpertGraph,
    skills: &atd_core::SkillIndex,
    projects: &[atd_core::Project],
    context: &str,
) {
    let reference = Discovery::with_options(
        graph.clone(),
        skills.padded_to(graph.num_nodes()),
        options(),
    )
    .expect("reference engine builds");
    for (i, project) in projects.iter().enumerate() {
        let strategy = common::strategies()[i % 3];
        let resp = service
            .query(Request::new(project.clone(), strategy, 3))
            .expect("recovered service serves");
        let want = reference.top_k(project, strategy, 3).unwrap();
        common::assert_bit_identical(&resp.teams, &want, &format!("{context}: {strategy}"));
    }
}

/// An I/O fault at either append-side faultpoint (the service's
/// `serve.wal_append` entry or the store's `store.wal_append` write
/// guard) rejects the mutation un-acknowledged, and a subsequent crash +
/// restart recovers exactly the acknowledged prefix.
#[test]
fn append_faults_reject_unacknowledged_and_recovery_keeps_the_acked_prefix() {
    for (tag, arm_point) in [
        ("serve_append", None),
        ("store_append", Some("store.wal_append")),
    ] {
        let net = common::network(31);
        let dir = tempdir(tag);
        let genesis = net.graph.clone();
        let (service, _) =
            DurableService::open(&dir, net.skills.clone(), config(), || genesis).unwrap();

        let d1 = delta(0, 1, 0.3);
        let r1 = service.publish_mutation(&d1).unwrap();

        match arm_point {
            None => atd_serve::faultpoint::arm(
                "serve.wal_append",
                atd_serve::FaultPlan::next(atd_serve::Fault::IoError("disk gone"), 1),
            ),
            Some(p) => atd_store::faultpoint::arm(
                p,
                atd_store::faultpoint::FaultPlan::next(
                    atd_store::faultpoint::Fault::IoError("disk gone"),
                    1,
                ),
            ),
        }
        let err = service.publish_mutation(&delta(0, 2, 0.7)).unwrap_err();
        match arm_point {
            None => atd_serve::faultpoint::disarm("serve.wal_append"),
            Some(p) => atd_store::faultpoint::disarm(p),
        }
        assert!(
            matches!(err, DurableError::Store(_)),
            "{tag}: an append fault must mean not-acknowledged, got {err:?}"
        );
        assert_eq!(service.graph_fingerprint(), r1.graph_fingerprint);

        // "kill -9": abandon the handle without a graceful shutdown.
        drop(service);

        let (mut service, report) =
            DurableService::open(&dir, net.skills.clone(), config(), || unreachable!()).unwrap();
        assert_eq!(report.replayed_records, 1, "{tag}");
        assert_eq!(report.graph_fingerprint, r1.graph_fingerprint, "{tag}");
        let acked = net.graph.apply_delta(&d1).unwrap();
        assert_serves_uninterrupted_state(
            &service,
            &acked,
            &net.skills,
            &common::projects(&net, 4),
            tag,
        );
        // The rejected mutation is still acceptable afterwards.
        service.publish_mutation(&delta(0, 2, 0.7)).unwrap();
        service.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A publisher killed mid-append (panic at `serve.wal_append`) leaves
/// the service serving; the poisoned journal lock is recovered and the
/// next publish succeeds.
#[test]
fn killed_publisher_thread_does_not_take_the_service_down() {
    let net = common::network(32);
    let dir = tempdir("killed_publisher");
    let genesis = net.graph.clone();
    let (mut service, _) =
        DurableService::open(&dir, net.skills.clone(), config(), || genesis).unwrap();
    let r1 = service.publish_mutation(&delta(0, 1, 0.45)).unwrap();

    atd_serve::faultpoint::arm(
        "serve.wal_append",
        atd_serve::FaultPlan::next(atd_serve::Fault::Panic("kill the publisher"), 1),
    );
    let result = catch_unwind(AssertUnwindSafe(|| {
        service.publish_mutation(&delta(0, 2, 0.9))
    }));
    atd_serve::faultpoint::disarm("serve.wal_append");
    assert!(result.is_err(), "injected panic must unwind");

    // Still serving, still acknowledging.
    assert_eq!(service.graph_fingerprint(), r1.graph_fingerprint);
    let acked = net.graph.apply_delta(&delta(0, 1, 0.45)).unwrap();
    assert_serves_uninterrupted_state(
        &service,
        &acked,
        &net.skills,
        &common::projects(&net, 3),
        "after killed publisher",
    );
    service.publish_mutation(&delta(0, 2, 0.9)).unwrap();
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The widest checkpoint crash window: every generation file written,
/// manifest rename never reached. The old generation still rules after
/// restart, every acknowledged mutation replays, and the next
/// checkpoint succeeds.
#[test]
fn kill_between_checkpoint_files_and_manifest_publish_recovers_acked_state() {
    let net = common::network(33);
    let dir = tempdir("checkpoint_kill");
    let genesis = net.graph.clone();
    let (service, _) =
        DurableService::open(&dir, net.skills.clone(), config(), || genesis).unwrap();
    let d1 = delta(1, 2, 0.6);
    let r1 = service.publish_mutation(&d1).unwrap();

    atd_store::faultpoint::arm(
        "store.checkpoint",
        atd_store::faultpoint::FaultPlan::next(atd_store::faultpoint::Fault::Panic("kill -9"), 1),
    );
    let result = catch_unwind(AssertUnwindSafe(|| service.checkpoint()));
    atd_store::faultpoint::disarm("store.checkpoint");
    assert!(result.is_err(), "injected kill must unwind");
    drop(service); // the "crashed" process never touches the handle again

    let (mut service, report) =
        DurableService::open(&dir, net.skills.clone(), config(), || unreachable!()).unwrap();
    assert_eq!(report.generation, 0, "old generation still rules");
    assert_eq!(report.replayed_records, 1);
    assert_eq!(report.graph_fingerprint, r1.graph_fingerprint);
    assert!(report.quarantined.is_empty(), "orphan files are inert");
    let acked = net.graph.apply_delta(&d1).unwrap();
    assert_serves_uninterrupted_state(
        &service,
        &acked,
        &net.skills,
        &common::projects(&net, 4),
        "checkpoint kill",
    );
    assert_eq!(service.checkpoint().unwrap(), 1);
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A refused manifest rename aborts the checkpoint cleanly: the service
/// keeps serving and acknowledging on the old generation, and the
/// retried checkpoint lands.
#[test]
fn manifest_publish_fault_aborts_checkpoint_and_service_keeps_serving() {
    let net = common::network(34);
    let dir = tempdir("manifest_fault");
    let genesis = net.graph.clone();
    let (service, _) =
        DurableService::open(&dir, net.skills.clone(), config(), || genesis).unwrap();
    let r1 = service.publish_mutation(&delta(2, 3, 0.55)).unwrap();

    atd_store::faultpoint::arm(
        "store.manifest_publish",
        atd_store::faultpoint::FaultPlan::next(
            atd_store::faultpoint::Fault::IoError("rename refused"),
            1,
        ),
    );
    let err = service.checkpoint().unwrap_err();
    atd_store::faultpoint::disarm("store.manifest_publish");
    assert!(matches!(err, atd_store::StoreError::Io(_)));
    assert_eq!(service.generation(), 0);
    assert_eq!(service.graph_fingerprint(), r1.graph_fingerprint);

    let r2 = service.publish_mutation(&delta(0, 3, 0.8)).unwrap();
    assert_eq!(service.checkpoint().unwrap(), 1);
    drop(service);

    let (mut service, report) =
        DurableService::open(&dir, net.skills.clone(), config(), || unreachable!()).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.graph_fingerprint, r2.graph_fingerprint);
    let acked = net
        .graph
        .apply_delta(&delta(2, 3, 0.55))
        .unwrap()
        .apply_delta(&delta(0, 3, 0.8))
        .unwrap();
    assert_serves_uninterrupted_state(
        &service,
        &acked,
        &net.skills,
        &common::projects(&net, 4),
        "after retried checkpoint",
    );
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A publisher killed **mid-incremental-patch** (panic at
/// `serve.incremental_patch`, after the ack, before the label patch):
/// the mutation is durable, and recovery — which finds no persisted
/// index for the un-checkpointed generation — falls back to a full
/// rebuild whose fingerprint and top-k answers are bit-identical to an
/// uninterrupted run.
#[test]
fn kill_mid_incremental_patch_recovers_by_full_rebuild_bit_identically() {
    let net = common::network(36);
    let dir = tempdir("inc_patch_kill");
    let genesis = net.graph.clone();
    let (service, _) =
        DurableService::open(&dir, net.skills.clone(), config(), || genesis).unwrap();

    // A pure relaxation (cheapest positive non-max edge halved) — the
    // delta that routes through the incremental faultpoint.
    let w_max = net.graph.edges().map(|(_, _, w)| w).fold(0.0f64, f64::max);
    let (u, v, w) = net
        .graph
        .edges()
        .filter(|&(_, _, w)| w > 0.0 && w < w_max)
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("network has a positive non-max edge");
    let mut relax = GraphDelta::new();
    relax.reinforce_edge(u, v, w * 0.5);

    atd_serve::faultpoint::arm(
        "serve.incremental_patch",
        atd_serve::FaultPlan::next(atd_serve::Fault::Panic("kill mid-patch"), 1),
    );
    let result = catch_unwind(AssertUnwindSafe(|| service.publish_mutation(&relax)));
    atd_serve::faultpoint::disarm("serve.incremental_patch");
    assert!(result.is_err(), "injected mid-patch kill must unwind");

    // "kill -9": the crashed process never touches the handle again. The
    // append preceded the faultpoint, so the mutation IS acknowledged.
    drop(service);

    let (mut service, report) =
        DurableService::open(&dir, net.skills.clone(), config(), || unreachable!()).unwrap();
    let mutated = net.graph.apply_delta(&relax).unwrap();
    assert_eq!(report.replayed_records, 1, "the acked mutation replays");
    assert_eq!(report.graph_fingerprint, graph_fingerprint(&mutated));
    let stats = service.service().stats();
    assert_eq!(
        stats.full_rebuild_fallbacks, 1,
        "no checkpoint index exists, so recovery must take the rebuild fallback"
    );
    assert_eq!(stats.incremental_applied, 0);
    assert_serves_uninterrupted_state(
        &service,
        &mutated,
        &net.skills,
        &common::projects(&net, 4),
        "after mid-patch kill",
    );
    // The service is fully live: the same relaxation class publishes
    // incrementally now that nothing is armed.
    let w_max2 = mutated.edges().map(|(_, _, w)| w).fold(0.0f64, f64::max);
    let (u2, v2, w2) = mutated
        .edges()
        .filter(|&(_, _, w)| w > 0.0 && w < w_max2)
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .unwrap();
    let mut relax2 = GraphDelta::new();
    relax2.reinforce_edge(u2, v2, w2 * 0.5);
    service.publish_mutation(&relax2).unwrap();
    assert_eq!(service.service().stats().incremental_applied, 1);
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash at **every byte offset** of the WAL tail: replaying a
/// prefix-truncated segment always recovers a whole-record prefix of
/// the acknowledged mutations, the service restarts serving, and the
/// surviving prefix answers bit-identically to an uninterrupted run
/// over that prefix.
#[test]
fn truncated_wal_tail_at_every_boundary_restarts_serving_a_whole_prefix() {
    let net = common::network(35);
    let dir = tempdir("torn_tail");
    let genesis = net.graph.clone();
    let (mut service, _) =
        DurableService::open(&dir, net.skills.clone(), config(), || genesis).unwrap();
    let deltas = [delta(0, 1, 0.2), delta(1, 2, 0.3), delta(2, 3, 0.4)];
    for d in &deltas {
        service.publish_mutation(d).unwrap();
    }
    service.shutdown();
    drop(service);

    let wal_path = dir.join("wal-0.atdw");
    let full = std::fs::read(&wal_path).unwrap();
    let projects = common::projects(&net, 2);
    // Every 7th offset keeps the test fast while still crossing every
    // record's header, payload, and checksum bytes.
    for cut in (0..full.len()).step_by(7) {
        std::fs::write(&wal_path, &full[..cut]).unwrap();
        let (mut service, report) =
            DurableService::open(&dir, net.skills.clone(), config(), || unreachable!())
                .unwrap_or_else(|e| panic!("cut at {cut}: service must restart serving: {e}"));
        let n = report.replayed_records as usize;
        assert!(n <= deltas.len(), "cut at {cut}");
        let mut graph = net.graph.clone();
        for d in &deltas[..n] {
            graph = graph.apply_delta(d).unwrap();
        }
        assert_eq!(
            report.graph_fingerprint,
            graph_fingerprint(&graph),
            "cut at {cut}: surviving prefix must be unmodified"
        );
        assert_serves_uninterrupted_state(
            &service,
            &graph,
            &net.skills,
            &projects,
            &format!("cut at {cut}"),
        );
        service.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}
