//! Shared fixture: a synthetic-DBLP expert network and deterministic
//! query workload, built without atd-eval (which depends on this crate).
// Each test binary uses a different subset of these helpers.
#![allow(dead_code)]

use atd_core::greedy::{Discovery, DiscoveryOptions};
use atd_core::{Project, SkillId, Strategy};
use atd_dblp::graph_build::{BuildConfig, ExpertNetwork};
use atd_dblp::synth::{SynthConfig, SynthCorpus};

/// Builds a test-scale network; `seed` varies the corpus so different
/// snapshots really differ.
pub fn network(seed: u64) -> ExpertNetwork {
    let cfg = SynthConfig {
        seed,
        ..SynthConfig::tiny()
    };
    let synth = SynthCorpus::generate(&cfg);
    ExpertNetwork::build(synth.corpus, &BuildConfig::default()).expect("synth network builds")
}

/// A deterministic single-threaded engine over `net`'s graph.
pub fn engine_from(net: &ExpertNetwork, options: DiscoveryOptions) -> Discovery {
    Discovery::with_options(net.graph.clone(), net.skills.clone(), options).expect("engine builds")
}

pub fn engine(net: &ExpertNetwork) -> Discovery {
    engine_from(
        net,
        DiscoveryOptions {
            threads: Some(1),
            ..Default::default()
        },
    )
}

/// Deterministic projects over well-covered skills: consecutive pairs of
/// the most-held skills, so every project is coverable and non-trivial.
pub fn projects(net: &ExpertNetwork, count: usize) -> Vec<Project> {
    let mut by_holders: Vec<(usize, SkillId)> = (0..net.skills.num_skills())
        .map(|i| {
            let s = SkillId(i as u32);
            (net.skills.holders(s).len(), s)
        })
        .filter(|&(h, _)| h >= 2)
        .collect();
    by_holders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1 .0.cmp(&b.1 .0)));
    assert!(
        by_holders.len() >= 3,
        "synth corpus must produce multi-holder skills"
    );
    (0..count)
        .map(|i| {
            let a = by_holders[i % by_holders.len()].1;
            let b = by_holders[(i + 1) % by_holders.len()].1;
            Project::new(if a == b { vec![a] } else { vec![a, b] })
        })
        .collect()
}

/// The strategy mix the tests cycle through.
pub fn strategies() -> [Strategy; 3] {
    [
        Strategy::Cc,
        Strategy::CaCc { gamma: 0.5 },
        Strategy::SaCaCc {
            gamma: 0.5,
            lambda: 0.5,
        },
    ]
}

/// Asserts two result lists are bit-identical (member keys and exact
/// float bits of both scores).
pub fn assert_bit_identical(a: &[atd_core::ScoredTeam], b: &[atd_core::ScoredTeam], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: result count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.team.member_key(), y.team.member_key(), "{context}");
        assert_eq!(x.objective.to_bits(), y.objective.to_bits(), "{context}");
        assert_eq!(
            x.algorithm_cost.to_bits(),
            y.algorithm_cost.to_bits(),
            "{context}"
        );
    }
}
