//! Fault-injection overload tests: sustained 2–4× offered load with
//! worker kills drives the service through its brownout tiers and back.
//! Full-fidelity responses must stay bit-identical to direct queries,
//! every degraded response must carry its scan-coverage bound, no
//! priority class may be starved, and the submission ledger must
//! reconcile exactly.
//!
//! Run with: `cargo test -p atd-serve --features fault-injection`
#![cfg(feature = "fault-injection")]

mod common;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use atd_serve::{
    faultpoint, AdmissionConfig, BrownoutConfig, BrownoutTier, Fault, FaultPlan, Priority,
    QueryService, Request, ServeConfig, ServeError,
};

/// The faultpoint registry is process-global; tests that arm it must not
/// overlap (the default test runner is multi-threaded).
fn serial() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::OnceLock;
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Satellite of the core poll-point sweep, at the serve layer: an
/// injected pre-engine delay burns the whole deadline, so the engine's
/// *entry* poll fires. Anytime requests get a flagged empty partial;
/// fail-fast requests get `DeadlineExceeded`; an undeadlined anytime
/// request runs to exhaustion and is bit-identical to a direct query.
#[test]
fn anytime_request_survives_deadline_expiry_as_flagged_partial() {
    let _guard = serial();
    faultpoint::reset();
    let net = common::network(210);
    let direct = common::engine(&net);
    let service = QueryService::start(
        common::engine(&net),
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            default_deadline: None,
            ..ServeConfig::default()
        },
    );
    let project = common::projects(&net, 1).remove(0);
    let strategy = common::strategies()[1];

    // Anytime + expired deadline → a well-formed, flagged partial.
    faultpoint::arm(
        "serve.request",
        FaultPlan::next(Fault::Delay(Duration::from_millis(60)), 1),
    );
    let mut doomed = Request::new(project.clone(), strategy, 2).with_anytime();
    doomed.deadline = Some(Duration::from_millis(15));
    let partial = service
        .query(doomed)
        .expect("anytime never fails on deadline");
    let bound = partial.degraded.expect("deadline-cut answer is flagged");
    assert!(
        bound.roots_scanned < bound.total_roots,
        "flag must carry a truncated scan bound: {bound:?}"
    );
    assert_eq!(
        bound.roots_scanned, 0,
        "the delay burned the deadline before the scan started"
    );
    assert!(partial.teams.is_empty(), "nothing was materialized");

    // Same injected fault, fail-fast request → typed deadline error.
    faultpoint::arm(
        "serve.request",
        FaultPlan::next(Fault::Delay(Duration::from_millis(60)), 1),
    );
    let mut failfast = Request::new(project.clone(), strategy, 2);
    failfast.deadline = Some(Duration::from_millis(15));
    assert_eq!(
        service.query(failfast).unwrap_err(),
        ServeError::DeadlineExceeded
    );

    // Undeadlined anytime request: exhausted scan, unflagged, and
    // bit-identical to the direct engine.
    let full = service
        .query(Request::new(project.clone(), strategy, 2).with_anytime())
        .expect("healthy anytime query");
    assert_eq!(full.degraded, None, "exhausted scans are full fidelity");
    common::assert_bit_identical(
        &full.teams,
        &direct.top_k(&project, strategy, 2).unwrap(),
        "anytime-exhausted",
    );

    let stats = service.stats();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.degraded_served, 1);
    assert_eq!(stats.deadline_exceeded, 1);
    assert!(stats.reconciles(), "ledger balances: {stats}");
    faultpoint::reset();
}

/// Predictive admission: once the EWMA model is warmed by a slow
/// request, a low-priority request with a hopeless deadline is shed at
/// the door — and an identical high-priority request is not.
#[test]
fn predictive_shed_refuses_hopeless_deadlines_but_never_high_priority() {
    let _guard = serial();
    faultpoint::reset();
    let net = common::network(211);
    let service = QueryService::start(
        common::engine(&net),
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            default_deadline: None,
            admission: AdmissionConfig {
                predictive: true,
                min_samples: 1,
                ewma_alpha: 1.0,
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        },
    );
    let project = common::projects(&net, 1).remove(0);
    let strategy = common::strategies()[0];

    // Warm the model with one artificially slow request (~60ms).
    faultpoint::arm(
        "serve.request",
        FaultPlan::next(Fault::Delay(Duration::from_millis(60)), 1),
    );
    service
        .query(Request::new(project.clone(), strategy, 1))
        .expect("warm-up request succeeds");

    // Low priority + 30ms deadline: the model predicts ~60ms → shed.
    let mut hopeless = Request::new(project.clone(), strategy, 1);
    hopeless.deadline = Some(Duration::from_millis(30));
    match service.query(hopeless) {
        Err(ServeError::DeadlineInfeasible {
            estimated,
            remaining,
        }) => {
            assert!(estimated > remaining, "{estimated:?} vs {remaining:?}");
            assert!(
                estimated >= Duration::from_millis(30),
                "model saw the delay"
            );
        }
        other => panic!("expected DeadlineInfeasible, got {other:?}"),
    }

    // The same hopeless deadline with High priority is admitted: the
    // verifier class bypasses predictive shedding entirely.
    let mut privileged = Request::new(project.clone(), strategy, 1);
    privileged.deadline = Some(Duration::from_millis(30));
    let privileged = privileged.with_priority(Priority::High);
    service
        .query(privileged)
        .expect("high priority is never predictively shed");

    let stats = service.stats();
    assert_eq!(stats.shed_infeasible, 1);
    assert_eq!(stats.served, 2);
    assert_eq!(stats.submitted, 3);
    assert!(stats.reconciles(), "ledger balances: {stats}");
    faultpoint::reset();
}

/// The `serve.admission` faultpoint fires at the very entry of
/// `submit`, before any counter is touched: a panicking admission hook
/// hurts only the submitting caller and leaves the ledger balanced.
#[test]
fn admission_faultpoint_panics_the_caller_not_the_service() {
    let _guard = serial();
    faultpoint::reset();
    let net = common::network(212);
    let service = QueryService::start(common::engine(&net), ServeConfig::default());
    let project = common::projects(&net, 1).remove(0);

    faultpoint::arm("serve.admission", FaultPlan::next(Fault::Panic("gate"), 1));
    let panicked = catch_unwind(AssertUnwindSafe(|| {
        let _ = service.submit(Request::new(project.clone(), common::strategies()[0], 1));
    }));
    assert!(panicked.is_err(), "armed admission hook must panic");

    let resp = service
        .query(Request::new(project, common::strategies()[0], 1))
        .expect("service unharmed by an admission panic");
    assert!(!resp.teams.is_empty());
    let stats = service.stats();
    assert_eq!(stats.submitted, 1, "the panicked submit never counted");
    assert!(stats.reconciles(), "ledger balances: {stats}");
    faultpoint::reset();
}

/// The `serve.brownout` faultpoint sits on the worker's bookkeeping
/// path *after* the reply is delivered: an armed panic kills the worker
/// (supervisor respawns it) but never costs the caller its answer.
#[test]
fn brownout_observation_panic_respawns_worker_after_reply_delivered() {
    let _guard = serial();
    faultpoint::reset();
    let net = common::network(213);
    let service = QueryService::start(
        common::engine(&net),
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            default_deadline: None,
            brownout: BrownoutConfig {
                p99_target: Some(Duration::from_millis(250)),
                window: 4,
                ..BrownoutConfig::default()
            },
            ..ServeConfig::default()
        },
    );
    let project = common::projects(&net, 1).remove(0);

    faultpoint::arm(
        "serve.brownout",
        FaultPlan::next(Fault::Panic("bookkeeping"), 1),
    );
    let resp = service
        .query(Request::new(project.clone(), common::strategies()[0], 1))
        .expect("the reply outruns the observation panic");
    assert!(!resp.teams.is_empty());

    // The worker died on the stats path; the supervisor brings it back.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while service.stats().workers_respawned == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor must respawn the killed worker"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    service
        .query(Request::new(project, common::strategies()[0], 1))
        .expect("respawned worker serves");
    let stats = service.stats();
    assert_eq!(stats.responses_lost, 0, "no answer was lost: {stats}");
    assert!(stats.reconciles(), "ledger balances: {stats}");
    faultpoint::reset();
}

/// The tentpole chaos test: sustained ~2.5× offered load (injected 25ms
/// service delays against a paced low-priority flood) plus two worker
/// kills. Asserts, per the acceptance criteria:
///
/// * full-fidelity responses are bit-identical to direct queries;
/// * every degraded response is flagged with `roots_scanned <
///   total_roots`;
/// * the service enters brownout AND exits it again (hysteresis
///   observable in `ServeStats`);
/// * high-priority traffic sees zero admission sheds while low-priority
///   absorbs them;
/// * the submission ledger reconciles exactly at quiescence.
#[test]
fn sustained_overload_browns_out_sheds_low_priority_and_recovers() {
    let _guard = serial();
    faultpoint::reset();
    let net = common::network(214);
    let direct = common::engine(&net);
    let service = Arc::new(QueryService::start(
        common::engine(&net),
        ServeConfig {
            workers: 2,
            queue_capacity: 32,
            default_deadline: None,
            admission: AdmissionConfig {
                // Reserve queue space so the verifier class cannot be
                // crowded out by the flood.
                low_priority_headroom: 4,
                ..AdmissionConfig::default()
            },
            brownout: BrownoutConfig {
                p99_target: Some(Duration::from_millis(10)),
                window: 8,
                enter_after: 2,
                exit_after: 2,
                exit_ratio: 0.5,
                brownout_root_fraction: 0.25,
            },
        },
    ));
    let projects = common::projects(&net, 8);
    let strategies = common::strategies();

    // Every served request is slowed to ≥25ms: 2 workers → ~80 req/s of
    // capacity against a ~200 req/s offered flood (≈2.5× overload).
    faultpoint::arm(
        "serve.request",
        FaultPlan::next(Fault::Delay(Duration::from_millis(25)), 500),
    );
    // Two worker kills mid-flood (passages 21 and 22 of the dequeue
    // hook) — the supervisor must respawn both while browned out.
    faultpoint::arm(
        "serve.worker",
        FaultPlan {
            fault: Fault::Panic("chaos"),
            skip: 20,
            times: 2,
        },
    );

    let degraded_seen = Arc::new(AtomicU64::new(0));

    // Low-priority flood: submit without waiting, collect handles, wait
    // at the end. Client-side outcome counts cross-check ServeStats.
    let flood = {
        let service = Arc::clone(&service);
        let projects = projects.clone();
        let degraded_seen = Arc::clone(&degraded_seen);
        std::thread::spawn(move || {
            let mut handles = Vec::new();
            let mut shed = 0u64;
            for i in 0..250usize {
                let project = projects[i % projects.len()].clone();
                let strategy = strategies[i % 3];
                match service.submit(Request::new(project.clone(), strategy, 2)) {
                    Ok(h) => handles.push((project, strategy, h)),
                    Err(
                        ServeError::Overloaded { .. }
                        | ServeError::BrownoutShed
                        | ServeError::DeadlineInfeasible { .. },
                    ) => shed += 1,
                    Err(other) => panic!("unexpected flood refusal: {other}"),
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            let mut ok_full = 0u64;
            let mut lost = 0u64;
            for (project, strategy, h) in handles {
                match h.wait() {
                    Ok(resp) => match resp.degraded {
                        Some(bound) => {
                            assert!(
                                bound.roots_scanned < bound.total_roots,
                                "degraded response must carry a real truncation: {bound:?}"
                            );
                            degraded_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            // Full fidelity under chaos: bit-identical
                            // to the direct single-threaded engine.
                            let want = direct.top_k(&project, strategy, 2).unwrap();
                            common::assert_bit_identical(&resp.teams, &want, "flood full-fidelity");
                            ok_full += 1;
                        }
                    },
                    Err(ServeError::ResponseLost) => lost += 1,
                    Err(other) => panic!("unexpected flood outcome: {other}"),
                }
            }
            (ok_full, shed, lost)
        })
    };

    // High-priority verifier traffic, paced through the same storm.
    let verifier = {
        let service = Arc::clone(&service);
        let projects = projects.clone();
        std::thread::spawn(move || {
            let mut ok = 0u64;
            let mut lost = 0u64;
            for i in 0..40usize {
                let project = projects[i % projects.len()].clone();
                let request =
                    Request::new(project, strategies[i % 3], 2).with_priority(Priority::High);
                match service.submit(request) {
                    Ok(h) => match h.wait() {
                        Ok(_) => ok += 1,
                        Err(ServeError::ResponseLost) => lost += 1,
                        Err(other) => panic!("unexpected verifier outcome: {other}"),
                    },
                    // Any admission shed here is a starvation bug.
                    Err(refused) => panic!("high priority was shed: {refused}"),
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            (ok, lost)
        })
    };

    let (flood_ok_full, flood_shed, flood_lost) = flood.join().unwrap();
    let (verifier_ok, verifier_lost) = verifier.join().unwrap();
    // Stop injecting delays so the service can actually recover.
    faultpoint::reset();

    let mid = service.stats();
    assert!(
        mid.brownout_entries >= 1,
        "sustained overload must enter brownout: {mid}"
    );
    assert!(
        mid.workers_respawned >= 2,
        "both worker kills must have respawned: {mid}"
    );
    assert!(
        flood_shed > 0,
        "the low-priority flood must absorb admission sheds"
    );
    assert_eq!(
        mid.shed_at_admission(),
        flood_shed,
        "all admission sheds were low-priority: {mid}"
    );
    assert!(verifier_ok > 0, "verifier class must make progress");
    assert!(
        degraded_seen.load(Ordering::Relaxed) >= 1,
        "brownout must have produced flagged degraded answers"
    );
    assert!(
        flood_ok_full >= 1,
        "pre-brownout answers must include verified full-fidelity ones"
    );

    // Recovery: cheap high-priority traffic drains the latency window
    // below the exit threshold until every entered tier is exited.
    let project = projects[0].clone();
    let mut attempts = 0;
    loop {
        let stats = service.stats();
        if stats.brownout_exits >= stats.brownout_entries
            && service.brownout_tier() == BrownoutTier::Normal
        {
            break;
        }
        assert!(
            attempts < 3000,
            "brownout must exit once load subsides: {stats}"
        );
        attempts += 1;
        let request = Request::new(project.clone(), strategies[0], 1).with_priority(Priority::High);
        let _ = service.query(request);
    }

    let stats = service.stats();
    assert!(stats.brownout_entries >= 1 && stats.brownout_exits >= 1);
    assert_eq!(
        stats.brownout_entries, stats.brownout_exits,
        "every entered tier was exited: {stats}"
    );
    assert_eq!(stats.responses_lost, flood_lost + verifier_lost);
    assert!(stats.reconciles(), "ledger balances at quiescence: {stats}");
    faultpoint::reset();
}
