//! Tier-1 durable publish path tests (no fault injection): mutations
//! acknowledged through the journal are served, survive a restart
//! bit-identically to an uninterrupted run, grown graphs get padded
//! skill indexes, and a checkpointed generation restarts off its
//! persisted index instead of rebuilding.

mod common;

use std::path::PathBuf;

use atd_core::greedy::{Discovery, DiscoveryOptions};
use atd_core::Project;
use atd_distance::persist::graph_fingerprint;
use atd_graph::{ExpertGraph, GraphDelta, NodeId};
use atd_serve::{DurableConfig, DurableService, Request, ServeConfig};
use atd_store::JournalConfig;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "atd_serve_durable_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn options() -> DiscoveryOptions {
    DiscoveryOptions {
        threads: Some(1),
        ..Default::default()
    }
}

fn config() -> DurableConfig {
    DurableConfig {
        journal: JournalConfig {
            sync_writes: false,
            ..Default::default()
        },
        serve: ServeConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline: None,
            ..ServeConfig::default()
        },
        discovery: options(),
        checkpoint_every: 0,
    }
}

/// The uninterrupted-run oracle: a direct engine over `graph` with the
/// same options and a padded skill index — exactly what recovery must
/// reproduce bit-for-bit.
fn reference_engine(graph: &ExpertGraph, skills: &atd_core::SkillIndex) -> Discovery {
    Discovery::with_options(
        graph.clone(),
        skills.padded_to(graph.num_nodes()),
        options(),
    )
    .expect("reference engine builds")
}

fn assert_serves_like(
    service: &DurableService,
    reference: &Discovery,
    projects: &[Project],
    context: &str,
) {
    for (i, project) in projects.iter().enumerate() {
        let strategy = common::strategies()[i % 3];
        let resp = service
            .query(Request::new(project.clone(), strategy, 3))
            .expect("query succeeds");
        let want = reference.top_k(project, strategy, 3).unwrap();
        common::assert_bit_identical(&resp.teams, &want, &format!("{context}: {strategy}"));
    }
}

#[test]
fn initial_open_serves_the_genesis_graph() {
    let net = common::network(21);
    let dir = tempdir("genesis");
    let genesis = net.graph.clone();
    let (mut service, report) =
        DurableService::open(&dir, net.skills.clone(), config(), || genesis).unwrap();
    assert!(report.initialized);
    assert_eq!(report.generation, 0);
    assert_eq!(report.graph_fingerprint, graph_fingerprint(&net.graph));

    let reference = reference_engine(&net.graph, &net.skills);
    assert_serves_like(&service, &reference, &common::projects(&net, 6), "genesis");
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn acknowledged_mutations_are_served_and_survive_restart_bit_identically() {
    let net = common::network(22);
    let dir = tempdir("restart");
    let genesis = net.graph.clone();
    let (mut service, _) =
        DurableService::open(&dir, net.skills.clone(), config(), || genesis).unwrap();

    // Two acknowledged mutations: a reweighted collaboration and a new
    // publication among three existing authors.
    let mut d1 = GraphDelta::new();
    d1.upsert_edge(NodeId::from_index(0), NodeId::from_index(1), 0.33);
    let r1 = service.publish_mutation(&d1).unwrap();
    assert_eq!((r1.generation, r1.seq), (0, 1));

    let mut d2 = GraphDelta::new();
    d2.publication(
        &[
            NodeId::from_index(0),
            NodeId::from_index(2),
            NodeId::from_index(3),
        ],
        0.4,
    );
    let r2 = service.publish_mutation(&d2).unwrap();
    assert_eq!(r2.seq, 2);

    // The uninterrupted run: same deltas applied directly.
    let mutated = net
        .graph
        .apply_delta(&d1)
        .unwrap()
        .apply_delta(&d2)
        .unwrap();
    assert_eq!(r2.graph_fingerprint, graph_fingerprint(&mutated));
    let reference = reference_engine(&mutated, &net.skills);
    let projects = common::projects(&net, 6);
    assert_serves_like(&service, &reference, &projects, "before restart");

    service.shutdown();
    drop(service);

    // Restart: the WAL tail replays both mutations and the service
    // answers bit-identically to the run that never went down.
    let (mut service, report) =
        DurableService::open(&dir, net.skills.clone(), config(), || unreachable!()).unwrap();
    assert!(!report.initialized);
    assert_eq!(report.replayed_records, 2);
    assert_eq!(report.graph_fingerprint, r2.graph_fingerprint);
    assert_eq!(service.graph_fingerprint(), r2.graph_fingerprint);
    assert_serves_like(&service, &reference, &projects, "after restart");
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn added_author_gets_a_padded_skill_index() {
    let net = common::network(23);
    let dir = tempdir("grow");
    let genesis = net.graph.clone();
    let (mut service, _) =
        DurableService::open(&dir, net.skills.clone(), config(), || genesis).unwrap();

    let before = net.graph.num_nodes();
    let mut delta = GraphDelta::new();
    let rookie = delta.add_author(1.5, before);
    delta.upsert_edge(NodeId::from_index(0), rookie, 0.25);
    delta.upsert_edge(NodeId::from_index(1), rookie, 0.35);
    service.publish_mutation(&delta).unwrap();

    let snapshot = service.current_snapshot();
    assert_eq!(snapshot.engine().graph().num_nodes(), before + 1);
    assert_eq!(snapshot.engine().skills().num_nodes(), before + 1);
    assert!(snapshot.engine().skills().skills_of(rookie).is_empty());

    // Queries still answer (the padded index keeps every lookup in
    // bounds even when a path routes through the new author).
    let mutated = net.graph.apply_delta(&delta).unwrap();
    let reference = reference_engine(&mutated, &net.skills);
    assert_serves_like(&service, &reference, &common::projects(&net, 6), "grown");
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_generation_restarts_off_its_persisted_index() {
    let net = common::network(24);
    let dir = tempdir("checkpoint");
    let genesis = net.graph.clone();
    let (mut service, _) =
        DurableService::open(&dir, net.skills.clone(), config(), || genesis).unwrap();

    let mut delta = GraphDelta::new();
    delta.upsert_edge(NodeId::from_index(1), NodeId::from_index(2), 0.2);
    let receipt = service.publish_mutation(&delta).unwrap();
    assert_eq!(service.checkpoint().unwrap(), 1);
    assert_eq!(service.tail_records(), 0);
    service.shutdown();
    drop(service);

    let (mut service, report) =
        DurableService::open(&dir, net.skills.clone(), config(), || unreachable!()).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.replayed_records, 0);
    assert_eq!(report.graph_fingerprint, receipt.graph_fingerprint);
    assert!(
        service.current_snapshot().engine().pll_index_loaded(),
        "a clean checkpoint restart loads the generation's index instead of rebuilding"
    );

    let mutated = net.graph.apply_delta(&delta).unwrap();
    let reference = reference_engine(&mutated, &net.skills);
    assert_serves_like(
        &service,
        &reference,
        &common::projects(&net, 6),
        "checkpoint restart",
    );
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A pure relaxation delta: reinforces the graph's cheapest *strictly
/// positive* non-max edge at half its weight. Positive so halving really
/// changes bits (Jaccard weights can be exactly 0), below the max so the
/// normalization scale stays, and weight-only so degrees (and with them
/// the vertex order) stay — the delta the incremental publish path must
/// accept.
fn relax_delta(g: &ExpertGraph) -> (GraphDelta, ExpertGraph) {
    let w_max = g.edges().map(|(_, _, w)| w).fold(0.0f64, f64::max);
    let (u, v, w) = g
        .edges()
        .filter(|&(_, _, w)| w > 0.0 && w < w_max)
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("network has a positive non-max edge");
    let mut d = GraphDelta::new();
    d.reinforce_edge(u, v, w * 0.5);
    let next = g.apply_delta(&d).unwrap();
    (d, next)
}

#[test]
fn single_edge_relax_takes_the_incremental_path_bit_identically() {
    let net = common::network(27);
    let dir = tempdir("incremental");
    let genesis = net.graph.clone();
    let (mut service, _) =
        DurableService::open(&dir, net.skills.clone(), config(), || genesis).unwrap();
    assert_eq!(service.service().stats().incremental_applied, 0);
    assert_eq!(service.service().stats().full_rebuild_fallbacks, 0);

    // One lowered edge: patched incrementally, never rebuilt.
    let (d1, g1) = relax_delta(&net.graph);
    let r1 = service.publish_mutation(&d1).unwrap();
    let stats = service.service().stats();
    assert_eq!(stats.incremental_applied, 1, "relax must patch in place");
    assert_eq!(stats.full_rebuild_fallbacks, 0);
    assert_eq!(r1.graph_fingerprint, graph_fingerprint(&g1));
    let projects = common::projects(&net, 6);
    assert_serves_like(
        &service,
        &reference_engine(&g1, &net.skills),
        &projects,
        "incremental publish",
    );

    // A structural delta (new edge) routes to the full rebuild.
    let mut d2 = GraphDelta::new();
    d2.publication(
        &[
            NodeId::from_index(0),
            NodeId::from_index(2),
            NodeId::from_index(4),
        ],
        0.4,
    );
    service.publish_mutation(&d2).unwrap();
    let stats = service.service().stats();
    assert_eq!(stats.incremental_applied, 1);
    assert_eq!(stats.full_rebuild_fallbacks, 1, "structural must rebuild");
    let g2 = g1.apply_delta(&d2).unwrap();
    assert_serves_like(
        &service,
        &reference_engine(&g2, &net.skills),
        &projects,
        "structural publish",
    );
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn over_budget_delta_falls_back_to_full_rebuild_bit_identically() {
    let net = common::network(28);
    let dir = tempdir("budget");
    let genesis = net.graph.clone();
    let mut cfg = config();
    // Zero hub budget: every label-touching delta blows the threshold.
    cfg.discovery.pll_build.incremental_hub_budget = Some(0);
    let (mut service, _) = DurableService::open(&dir, net.skills.clone(), cfg, || genesis).unwrap();

    let (d1, g1) = relax_delta(&net.graph);
    let r1 = service.publish_mutation(&d1).unwrap();
    let stats = service.service().stats();
    assert_eq!(stats.incremental_applied, 0);
    assert_eq!(
        stats.full_rebuild_fallbacks, 1,
        "a blown budget must fall back"
    );
    assert_eq!(r1.graph_fingerprint, graph_fingerprint(&g1));
    assert_serves_like(
        &service,
        &reference_engine(&g1, &net.skills),
        &common::projects(&net, 6),
        "over-budget fallback",
    );
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_replays_wal_tail_incrementally_off_the_checkpoint_index() {
    let net = common::network(29);
    let dir = tempdir("inc_recovery");
    let genesis = net.graph.clone();
    let (mut service, _) =
        DurableService::open(&dir, net.skills.clone(), config(), || genesis).unwrap();

    // Checkpoint after one relax (persists the index for generation 1),
    // then acknowledge a second relax that stays in the WAL tail.
    let (d1, g1) = relax_delta(&net.graph);
    service.publish_mutation(&d1).unwrap();
    assert_eq!(service.checkpoint().unwrap(), 1);
    let (d2, g2) = relax_delta(&g1);
    let r2 = service.publish_mutation(&d2).unwrap();
    service.shutdown();
    drop(service);

    // Restart: the tail record replays through the incremental path on
    // top of the checkpoint's loaded index — no full rebuild.
    let (mut service, report) =
        DurableService::open(&dir, net.skills.clone(), config(), || unreachable!()).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.replayed_records, 1);
    assert_eq!(report.graph_fingerprint, r2.graph_fingerprint);
    let stats = service.service().stats();
    assert_eq!(
        stats.incremental_applied, 1,
        "the tail record must replay incrementally"
    );
    assert_eq!(stats.full_rebuild_fallbacks, 0);
    assert_serves_like(
        &service,
        &reference_engine(&g2, &net.skills),
        &common::projects(&net, 6),
        "incremental recovery",
    );
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_newest_generation_is_quarantined_and_service_restarts_serving() {
    let net = common::network(26);
    let dir = tempdir("quarantine");
    let genesis = net.graph.clone();
    let (mut service, _) =
        DurableService::open(&dir, net.skills.clone(), config(), || genesis).unwrap();

    let mut delta = GraphDelta::new();
    delta.upsert_edge(NodeId::from_index(0), NodeId::from_index(3), 0.15);
    let receipt = service.publish_mutation(&delta).unwrap();
    assert_eq!(service.checkpoint().unwrap(), 1);
    service.shutdown();
    drop(service);

    // Bit-rot the generation-1 graph dump. Recovery must quarantine it
    // (keeping the file for forensics) and fall back to generation 0,
    // whose retained WAL still replays the acknowledged mutation.
    let gen1 = dir.join("gen-1.graph");
    let mut bytes = std::fs::read(&gen1).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&gen1, &bytes).unwrap();

    let (mut service, report) =
        DurableService::open(&dir, net.skills.clone(), config(), || unreachable!()).unwrap();
    assert_eq!(report.quarantined, vec![1]);
    assert_eq!(report.generation, 0, "serves the newest valid generation");
    assert_eq!(report.replayed_records, 1);
    assert_eq!(report.graph_fingerprint, receipt.graph_fingerprint);
    assert!(gen1.exists(), "quarantined files are kept, not deleted");

    let mutated = net.graph.apply_delta(&delta).unwrap();
    let reference = reference_engine(&mutated, &net.skills);
    assert_serves_like(
        &service,
        &reference,
        &common::projects(&net, 6),
        "quarantined restart",
    );
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The zero-copy serving contract end-to-end: a checkpoint restart with
/// [`IndexLoadMode::Mmap`] serves *borrowed* label planes straight out
/// of the generation's index file, answers bit-identically to an owned
/// load, and a publish over that mmap-backed snapshot copies-on-write —
/// the mapped file's bytes never change underneath the borrow.
#[test]
fn mmap_loaded_checkpoint_serves_and_publishes_without_touching_the_file() {
    use atd_core::IndexLoadMode;

    let net = common::network(30);
    let dir = tempdir("mmap");
    let genesis = net.graph.clone();
    let (mut service, _) =
        DurableService::open(&dir, net.skills.clone(), config(), || genesis).unwrap();
    let (d1, g1) = relax_delta(&net.graph);
    service.publish_mutation(&d1).unwrap();
    assert_eq!(service.checkpoint().unwrap(), 1);
    service.shutdown();
    drop(service);

    let index_file = dir.join("gen-1.atdl");
    let bytes_before = std::fs::read(&index_file).expect("checkpoint persisted the index");

    // Restart in mmap mode: recovery borrows the label planes from the
    // generation's index file instead of decoding an owned copy.
    let mut cfg = config();
    cfg.discovery.pll_load_mode = IndexLoadMode::Mmap;
    let (mut service, report) =
        DurableService::open(&dir, net.skills.clone(), cfg, || unreachable!()).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.replayed_records, 0);
    let snapshot = service.current_snapshot();
    assert!(snapshot.engine().pll_index_loaded());
    assert!(
        snapshot.engine().pll_index_zero_copy(),
        "mmap recovery must borrow the label planes from the index file"
    );
    let projects = common::projects(&net, 6);
    assert_serves_like(
        &service,
        &reference_engine(&g1, &net.skills),
        &projects,
        "mmap restart",
    );

    // Publish over the mmap-backed snapshot: the relax patches the
    // borrowed planes copy-on-write, so the served answer moves to the
    // post-mutation state while the mapped file stays bit-for-bit what
    // the checkpoint wrote.
    let (d2, g2) = relax_delta(&g1);
    service.publish_mutation(&d2).unwrap();
    assert_eq!(
        service.service().stats().incremental_applied,
        1,
        "the relax must patch the mmap-backed snapshot in place"
    );
    assert_serves_like(
        &service,
        &reference_engine(&g2, &net.skills),
        &projects,
        "publish over mmap",
    );
    // The pre-publish snapshot still pins the mapping and still answers
    // from the pre-mutation state — immutability survives the CoW.
    assert_serves_like_snapshot(&snapshot, &reference_engine(&g1, &net.skills), &projects);
    drop(snapshot);
    let bytes_after = std::fs::read(&index_file).unwrap();
    assert_eq!(
        bytes_before, bytes_after,
        "a publish must never write through the mapped index file"
    );
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Like [`assert_serves_like`] but against a pinned snapshot directly
/// (bypassing the service, which has already moved on).
fn assert_serves_like_snapshot(
    snapshot: &atd_serve::Snapshot,
    reference: &Discovery,
    projects: &[Project],
) {
    for (i, project) in projects.iter().enumerate() {
        let strategy = common::strategies()[i % 3];
        let got = snapshot.engine().top_k(project, strategy, 3).unwrap();
        let want = reference.top_k(project, strategy, 3).unwrap();
        common::assert_bit_identical(&got, &want, &format!("pinned snapshot: {strategy}"));
    }
}

#[test]
fn auto_checkpoint_rolls_generations() {
    let net = common::network(25);
    let dir = tempdir("auto");
    let genesis = net.graph.clone();
    let mut cfg = config();
    cfg.checkpoint_every = 2;
    let (mut service, _) = DurableService::open(&dir, net.skills.clone(), cfg, || genesis).unwrap();

    for i in 0..4 {
        let mut d = GraphDelta::new();
        d.upsert_edge(
            NodeId::from_index(i),
            NodeId::from_index(i + 1),
            0.1 + i as f64 * 0.05,
        );
        service.publish_mutation(&d).unwrap();
    }
    // Two records per checkpoint: generation advanced twice, WAL empty.
    assert_eq!(service.generation(), 2);
    assert_eq!(service.tail_records(), 0);
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
