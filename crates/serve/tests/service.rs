//! Tier-1 service tests (no fault injection): correctness under
//! concurrency, deadlines, backpressure accounting, hot swaps, and
//! corrupt-snapshot containment.

mod common;

use std::sync::Arc;
use std::time::Duration;

use atd_core::greedy::DiscoveryOptions;
use atd_core::DiscoveryError;
use atd_distance::RetryPolicy;
use atd_serve::{QueryService, Request, ServeConfig, ServeError};

#[test]
fn concurrent_responses_are_bit_identical_to_direct_queries() {
    let net = common::network(7);
    let direct = common::engine(&net);
    let service = QueryService::start(
        common::engine(&net),
        ServeConfig {
            workers: 4,
            queue_capacity: 256,
            default_deadline: None,
            ..ServeConfig::default()
        },
    );
    let projects = common::projects(&net, 12);
    let service = Arc::new(service);

    let mut clients = Vec::new();
    for c in 0..4 {
        let service = Arc::clone(&service);
        let projects = projects.clone();
        clients.push(std::thread::spawn(move || {
            let mut answers = Vec::new();
            for (i, project) in projects.iter().enumerate() {
                let strategy = common::strategies()[(c + i) % 3];
                let resp = service
                    .query(Request::new(project.clone(), strategy, 3))
                    .expect("query succeeds");
                assert_eq!(resp.snapshot_version, 1);
                answers.push((project.clone(), strategy, resp));
            }
            answers
        }));
    }
    for client in clients {
        for (project, strategy, resp) in client.join().unwrap() {
            let want = direct.top_k(&project, strategy, 3).unwrap();
            common::assert_bit_identical(&resp.teams, &want, &format!("{strategy}"));
        }
    }
    let stats = service.stats();
    assert_eq!(stats.served, 4 * 12);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.panics_recovered, 0);
}

#[test]
fn zero_deadline_is_deadline_exceeded_and_does_not_stall_others() {
    let net = common::network(8);
    let service = QueryService::start(
        common::engine(&net),
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline: None,
            ..ServeConfig::default()
        },
    );
    let project = common::projects(&net, 1).remove(0);

    let mut doomed = Request::new(project.clone(), common::strategies()[0], 2);
    doomed.deadline = Some(Duration::ZERO);
    assert_eq!(
        service.query(doomed).unwrap_err(),
        ServeError::DeadlineExceeded
    );

    // The pool is still healthy: an undeadlined request succeeds.
    let ok = service
        .query(Request::new(project, common::strategies()[0], 2))
        .expect("service still serves after a deadline shed");
    assert!(!ok.teams.is_empty());
    let stats = service.stats();
    // The doomed request expired while queued, so the worker fast-shed
    // it after dequeue — counted as shed_expired, not as a mid-search
    // deadline_exceeded.
    assert_eq!(stats.shed_expired, 1);
    assert_eq!(stats.deadline_exceeded, 0);
    assert_eq!(stats.served, 1);
    assert_eq!(stats.submitted, 2);
    assert!(stats.reconciles(), "ledger balances: {stats}");
}

#[test]
fn burst_sheds_cleanly_and_every_submission_is_accounted_for() {
    let net = common::network(9);
    let service = QueryService::start(
        common::engine(&net),
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            default_deadline: None,
            ..ServeConfig::default()
        },
    );
    let project = common::projects(&net, 1).remove(0);

    let mut handles = Vec::new();
    let mut shed_at_submit = 0u64;
    for _ in 0..100 {
        match service.submit(Request::new(project.clone(), common::strategies()[0], 1)) {
            Ok(h) => handles.push(h),
            Err(ServeError::Overloaded { capacity }) => {
                assert_eq!(capacity, 2);
                shed_at_submit += 1;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        // Queue depth never exceeds the bound — this is the
        // flat-memory guarantee.
        assert!(service.queue_depth() <= 2);
    }
    let mut served = 0u64;
    for h in handles {
        h.wait().expect("accepted requests all complete");
        served += 1;
    }
    let stats = service.stats();
    assert_eq!(stats.shed, shed_at_submit);
    assert_eq!(stats.served, served);
    assert_eq!(served + shed_at_submit, 100, "no request vanished");
    assert_eq!(stats.submitted, 100);
    assert!(stats.reconciles(), "ledger balances: {stats}");
}

#[test]
fn hot_swap_changes_answers_and_versions_without_downtime() {
    let net_a = common::network(10);
    let net_b = common::network(11);
    let direct_a = common::engine(&net_a);
    let direct_b = common::engine(&net_b);
    let service = QueryService::start(common::engine(&net_a), ServeConfig::default());
    let project_a = common::projects(&net_a, 1).remove(0);
    let project_b = common::projects(&net_b, 1).remove(0);
    let strategy = common::strategies()[2];

    let r1 = service
        .query(Request::new(project_a.clone(), strategy, 2))
        .unwrap();
    assert_eq!(r1.snapshot_version, 1);
    common::assert_bit_identical(
        &r1.teams,
        &direct_a.top_k(&project_a, strategy, 2).unwrap(),
        "v1",
    );

    let snap = service.publish(common::engine(&net_b));
    assert_eq!(snap.version(), 2);
    assert_eq!(service.current_version(), 2);

    let r2 = service
        .query(Request::new(project_b.clone(), strategy, 2))
        .unwrap();
    assert_eq!(r2.snapshot_version, 2);
    common::assert_bit_identical(
        &r2.teams,
        &direct_b.top_k(&project_b, strategy, 2).unwrap(),
        "v2",
    );
    assert_eq!(service.stats().swaps, 1);
}

#[test]
fn corrupt_snapshot_file_fails_the_swap_and_old_snapshot_keeps_serving() {
    let dir = std::env::temp_dir().join(format!(
        "atd_serve_corrupt_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.atdl");

    let net = common::network(12);
    let project = common::projects(&net, 1).remove(0);
    // Build-and-save a valid snapshot file, then corrupt it.
    let saved = common::engine_from(
        &net,
        DiscoveryOptions {
            threads: Some(1),
            pll_index_path: Some(path.clone()),
            ..Default::default()
        },
    );
    drop(saved);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    let service = QueryService::start(common::engine(&net), ServeConfig::default());
    let before = service
        .query(Request::new(project.clone(), common::strategies()[0], 2))
        .unwrap();

    // A load-only publish from the corrupt file must fail without
    // rebuilding and without disturbing the serving snapshot.
    let result = service.try_publish_with(|| {
        atd_core::Discovery::with_options(
            net.graph.clone(),
            net.skills.clone(),
            DiscoveryOptions {
                threads: Some(1),
                pll_index_path: Some(path.clone()),
                pll_load_only: true,
                pll_retry: RetryPolicy::none(),
                ..Default::default()
            },
        )
    });
    assert!(result.is_err(), "corrupt file must not publish");
    assert_eq!(service.current_version(), 1, "old snapshot still serving");
    assert_eq!(service.stats().swap_failures, 1);
    assert_eq!(service.stats().swaps, 0);

    let after = service
        .query(Request::new(project, common::strategies()[0], 2))
        .unwrap();
    assert_eq!(after.snapshot_version, 1);
    common::assert_bit_identical(&after.teams, &before.teams, "pre/post failed swap");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_errors_pass_through_typed() {
    let net = common::network(13);
    let service = QueryService::start(common::engine(&net), ServeConfig::default());
    let empty = Request::new(atd_core::Project::new(vec![]), common::strategies()[0], 1);
    assert_eq!(
        service.query(empty).unwrap_err(),
        ServeError::Query(DiscoveryError::EmptyProject)
    );
    assert_eq!(service.stats().query_errors, 1);
}

#[test]
fn shutdown_refuses_new_work() {
    let net = common::network(14);
    let mut service = QueryService::start(common::engine(&net), ServeConfig::default());
    let project = common::projects(&net, 1).remove(0);
    service
        .query(Request::new(project.clone(), common::strategies()[0], 1))
        .unwrap();
    service.shutdown();
    assert_eq!(
        service
            .submit(Request::new(project, common::strategies()[0], 1))
            .unwrap_err(),
        ServeError::ShuttingDown
    );
}
