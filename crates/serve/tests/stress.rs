//! Fault-injection stress test: many client threads hammer the service
//! while snapshots swap repeatedly and faults (worker-killing panics,
//! query panics, slow queries, corrupt snapshot loads) fire underneath.
//! Success responses must stay bit-identical to direct single-threaded
//! queries on the same snapshot version, and the process must never
//! crash.
//!
//! Run with: `cargo test -p atd-serve --features fault-injection`
#![cfg(feature = "fault-injection")]

mod common;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use atd_core::greedy::{Discovery, DiscoveryOptions};
use atd_distance::RetryPolicy;
use atd_serve::{faultpoint, Fault, FaultPlan, QueryService, Request, ServeConfig, ServeError};

const CLIENTS: usize = 5;
const SWAPS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 60;

/// The faultpoint registry is process-global; tests that arm it must not
/// overlap (the default test runner is multi-threaded).
fn serial() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::OnceLock;
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// One fixture per snapshot version: the network, a direct
/// single-threaded engine (the bit-identity oracle), and its workload.
struct Fixture {
    net: atd_dblp::graph_build::ExpertNetwork,
    direct: Discovery,
}

fn fixture(seed: u64) -> Fixture {
    let net = common::network(seed);
    let direct = common::engine(&net);
    Fixture { net, direct }
}

#[test]
fn swaps_panics_slow_queries_and_corrupt_loads_never_break_identity() {
    let _guard = serial();
    faultpoint::reset();
    let dir = std::env::temp_dir().join(format!("atd_serve_stress_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Versions 1..=SWAPS+1 each get their own synthetic network. The
    // oracle map lets clients verify any response against the direct
    // engine for the version that answered it.
    let fixtures: Vec<Fixture> = (0..=SWAPS as u64).map(|i| fixture(100 + i)).collect();
    let oracles: HashMap<u64, &Fixture> = fixtures
        .iter()
        .enumerate()
        .map(|(i, f)| (i as u64 + 1, f))
        .collect();

    let service = Arc::new(QueryService::start(
        common::engine(&fixtures[0].net),
        ServeConfig {
            workers: 4,
            queue_capacity: 128,
            default_deadline: Some(Duration::from_secs(5)),
            ..ServeConfig::default()
        },
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let violations: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    // Client threads: issue requests continuously, verifying every
    // success against the oracle for the snapshot version that answered.
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let violations = Arc::clone(&violations);
        // Clients verify against whichever version answers, so they need
        // projects valid in every fixture: build per-version workloads.
        let workloads: Vec<Vec<atd_core::Project>> = fixtures
            .iter()
            .map(|f| common::projects(&f.net, 8))
            .collect();
        clients.push(std::thread::spawn(move || {
            let mut outcomes = Outcomes::default();
            let mut i = 0;
            while i < REQUESTS_PER_CLIENT || !stop.load(Ordering::Relaxed) {
                // Target the currently serving version's workload; a swap
                // between load and answer means the response may come
                // from a newer version whose skill universe differs —
                // both success and typed query errors are acceptable,
                // but successes must match that version's oracle.
                let version = service.current_version();
                let workload = &workloads[(version as usize - 1) % workloads.len()];
                let project = workload[(c + i) % workload.len()].clone();
                let strategy = common::strategies()[i % 3];
                i += 1;
                match service.query(Request::new(project.clone(), strategy, 2)) {
                    Ok(resp) => {
                        outcomes.ok += 1;
                        outcomes.versions_seen.push(resp.snapshot_version);
                    }
                    Err(ServeError::DeadlineExceeded) => outcomes.deadline += 1,
                    Err(ServeError::QueryPanicked(_)) => outcomes.panicked += 1,
                    Err(ServeError::Overloaded { .. })
                    | Err(ServeError::DeadlineInfeasible { .. })
                    | Err(ServeError::BrownoutShed) => outcomes.shed += 1,
                    Err(ServeError::ResponseLost) => outcomes.lost += 1,
                    Err(ServeError::Query(_)) => outcomes.query_err += 1,
                    Err(ServeError::ShuttingDown) => {
                        violations
                            .lock()
                            .unwrap()
                            .push("ShuttingDown during steady state".into());
                        break;
                    }
                }
            }
            outcomes
        }));
    }

    // Verification clients: pin a snapshot, query through the service
    // repeatedly, and demand bit-identity whenever the answering version
    // is one they hold the oracle for.
    let mut verifiers = Vec::new();
    for v in 0..2usize {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let violations = Arc::clone(&violations);
        let oracle_data: Vec<(u64, Vec<atd_core::Project>)> = oracles
            .iter()
            .map(|(&ver, f)| (ver, common::projects(&f.net, 4)))
            .collect();
        let directs: HashMap<u64, &Discovery> =
            oracles.iter().map(|(&ver, f)| (ver, &f.direct)).collect();
        // Safety: fixtures outlives every thread (joined below), but the
        // compiler can't see that through Arc/spawn — scope the borrow.
        let directs: HashMap<u64, Discovery> = directs
            .into_iter()
            .map(|(ver, d)| (ver, rebuild(d)))
            .collect();
        verifiers.push(std::thread::spawn(move || {
            let mut checked = 0u64;
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) || checked == 0 {
                let (ver_hint, projects) = &oracle_data[i % oracle_data.len()];
                let project = projects[(v + i) % projects.len()].clone();
                let strategy = common::strategies()[(v + i) % 3];
                i += 1;
                if let Ok(resp) = service.query(Request::new(project.clone(), strategy, 2)) {
                    if resp.snapshot_version == *ver_hint {
                        let want = directs[ver_hint].top_k(&project, strategy, 2);
                        match want {
                            Ok(want) => {
                                let got = &resp.teams;
                                if got.len() != want.len()
                                    || got.iter().zip(&want).any(|(g, w)| {
                                        g.team.member_key() != w.team.member_key()
                                            || g.objective.to_bits() != w.objective.to_bits()
                                            || g.algorithm_cost.to_bits()
                                                != w.algorithm_cost.to_bits()
                                    })
                                {
                                    violations.lock().unwrap().push(format!(
                                        "version {ver_hint} response diverged from direct engine"
                                    ));
                                }
                                checked += 1;
                            }
                            Err(_) => { /* service raced a swap; skip */ }
                        }
                    }
                }
            }
            checked
        }));
    }

    // The swap/chaos driver: inject faults, then publish the next
    // snapshot — including one deterministic corrupt-file load failure
    // and one injected I/O failure — while clients run.
    let snapshot_path = dir.join("swap.atdl");
    for (round, fx) in fixtures.iter().enumerate().skip(1) {
        // Round-robin chaos: kill a worker, panic a query, slow a query.
        match round % 3 {
            0 => faultpoint::arm(
                "serve.worker",
                FaultPlan::next(Fault::Panic("chaos kill"), 1),
            ),
            1 => faultpoint::arm(
                "serve.request",
                FaultPlan::next(Fault::Panic("chaos query"), 2),
            ),
            _ => faultpoint::arm(
                "serve.request",
                FaultPlan::next(Fault::Delay(Duration::from_millis(20)), 3),
            ),
        }
        std::thread::sleep(Duration::from_millis(30));

        if round == 1 {
            // Deterministic corrupt-file swap failure: save a real index,
            // flip a byte, demand load-only.
            let save = common::engine_from(
                &fx.net,
                DiscoveryOptions {
                    threads: Some(1),
                    pll_index_path: Some(snapshot_path.clone()),
                    ..Default::default()
                },
            );
            drop(save);
            let mut bytes = std::fs::read(&snapshot_path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&snapshot_path, &bytes).unwrap();
            let failed = service.try_publish_with(|| {
                Discovery::with_options(
                    fx.net.graph.clone(),
                    fx.net.skills.clone(),
                    DiscoveryOptions {
                        threads: Some(1),
                        pll_index_path: Some(snapshot_path.clone()),
                        pll_load_only: true,
                        pll_retry: RetryPolicy::none(),
                        ..Default::default()
                    },
                )
            });
            assert!(failed.is_err(), "corrupt snapshot must fail the swap");
        }
        if round == 2 {
            // Injected I/O failure inside the publish closure.
            faultpoint::arm(
                "serve.snapshot_load",
                FaultPlan::next(Fault::IoError("disk detached"), 1),
            );
            let failed =
                service.try_publish_with(|| Ok::<_, std::convert::Infallible>(rebuild(&fx.direct)));
            assert!(failed.is_err(), "injected io error must fail the swap");
        }

        // The real swap for this round always succeeds.
        let published = service
            .try_publish_with(|| Ok::<_, std::convert::Infallible>(rebuild(&fx.direct)))
            .expect("healthy publish succeeds");
        assert_eq!(published.version() as usize, round + 1);
        std::thread::sleep(Duration::from_millis(30));
    }

    stop.store(true, Ordering::Relaxed);
    let totals: Vec<Outcomes> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    let checked: u64 = verifiers.into_iter().map(|h| h.join().unwrap()).sum();
    faultpoint::reset();

    let problems = violations.lock().unwrap();
    assert!(problems.is_empty(), "identity violations: {problems:?}");
    assert!(checked > 0, "verifiers must have checked real responses");

    let stats = service.stats();
    let ok: u64 = totals.iter().map(|o| o.ok).sum();
    assert!(ok > 0, "clients must have gotten successful answers");
    assert_eq!(
        stats.swaps as usize, SWAPS,
        "every healthy publish must have landed"
    );
    assert_eq!(stats.swap_failures, 2, "both induced swap failures counted");
    assert!(
        stats.panics_recovered >= 1,
        "query-panic chaos must have fired: {stats}"
    );
    assert!(
        stats.workers_respawned >= 1,
        "worker-kill chaos must have respawned: {stats}"
    );
    // Clients saw multiple snapshot versions over the run.
    let mut seen: Vec<u64> = totals
        .iter()
        .flat_map(|o| o.versions_seen.clone())
        .collect();
    seen.sort_unstable();
    seen.dedup();
    assert!(
        seen.len() >= 2,
        "responses must span several snapshot versions, saw {seen:?}"
    );
    // Every submission is accounted exactly once, even across worker
    // kills (lost replies) and mixed shed paths.
    assert!(
        stats.reconciles(),
        "submission ledger must balance at quiescence: {stats}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Rebuilds an engine equivalent to `d` (fresh Discovery for ownership
/// transfer into the service).
fn rebuild(d: &Discovery) -> Discovery {
    Discovery::with_options(
        d.graph().clone(),
        d.skills().clone(),
        DiscoveryOptions {
            threads: Some(1),
            ..Default::default()
        },
    )
    .expect("rebuild equivalent engine")
}

#[derive(Default)]
struct Outcomes {
    ok: u64,
    deadline: u64,
    panicked: u64,
    shed: u64,
    lost: u64,
    query_err: u64,
    versions_seen: Vec<u64>,
}

#[test]
fn injected_delay_trips_request_deadline() {
    let _guard = serial();
    faultpoint::reset();
    let net = common::network(200);
    let service = QueryService::start(
        common::engine(&net),
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            default_deadline: None,
            ..ServeConfig::default()
        },
    );
    let project = common::projects(&net, 1).remove(0);

    faultpoint::arm(
        "serve.request",
        FaultPlan::next(Fault::Delay(Duration::from_millis(80)), 1),
    );
    let mut slow = Request::new(project.clone(), common::strategies()[0], 1);
    slow.deadline = Some(Duration::from_millis(20));
    assert_eq!(
        service.query(slow).unwrap_err(),
        ServeError::DeadlineExceeded,
        "delay past the deadline must cancel the search"
    );
    // Next request is clean and fast.
    service
        .query(Request::new(project, common::strategies()[0], 1))
        .expect("service healthy after slow query");
    assert_eq!(service.stats().deadline_exceeded, 1);
    faultpoint::reset();
}

#[test]
fn overload_is_deterministic_with_a_blocked_worker() {
    let _guard = serial();
    faultpoint::reset();
    let net = common::network(201);
    let service = QueryService::start(
        common::engine(&net),
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            default_deadline: None,
            ..ServeConfig::default()
        },
    );
    let project = common::projects(&net, 1).remove(0);
    let mk = || Request::new(project.clone(), common::strategies()[0], 1);

    // Block the single worker for a while, then fill the queue: the
    // next submit MUST shed.
    faultpoint::arm(
        "serve.request",
        FaultPlan::next(Fault::Delay(Duration::from_millis(150)), 1),
    );
    let blocked = service.submit(mk()).expect("first request accepted");
    std::thread::sleep(Duration::from_millis(30)); // worker now sleeping
    let queued = service.submit(mk()).expect("queue holds one");
    let shed = service.submit(mk());
    assert!(
        matches!(shed, Err(ServeError::Overloaded { capacity: 1 })),
        "third submit must shed: {shed:?}"
    );
    blocked.wait().expect("blocked request completes");
    queued.wait().expect("queued request completes");
    let stats = service.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.served, 2);
    assert_eq!(stats.submitted, 3);
    assert!(stats.reconciles(), "ledger balances: {stats}");
    faultpoint::reset();
}

#[test]
fn worker_killed_mid_job_loses_only_that_response() {
    let _guard = serial();
    faultpoint::reset();
    let net = common::network(202);
    let service = QueryService::start(
        common::engine(&net),
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            default_deadline: None,
            ..ServeConfig::default()
        },
    );
    let project = common::projects(&net, 1).remove(0);

    faultpoint::arm("serve.worker", FaultPlan::next(Fault::Panic("die"), 1));
    let doomed = service.submit(Request::new(project.clone(), common::strategies()[0], 1));
    let doomed = doomed.expect("submission accepted");
    assert_eq!(
        doomed.wait().unwrap_err(),
        ServeError::ResponseLost,
        "the in-flight job dies with its worker"
    );
    // The supervisor respawns the worker; subsequent requests succeed.
    let resp = service
        .query(Request::new(project, common::strategies()[0], 1))
        .expect("respawned worker serves");
    assert!(!resp.teams.is_empty());
    let stats = service.stats();
    assert!(stats.workers_respawned >= 1);
    assert_eq!(
        stats.responses_lost, 1,
        "the dropped reply is counted, keeping the ledger balanced"
    );
    assert!(stats.reconciles(), "ledger balances: {stats}");
    faultpoint::reset();
}
