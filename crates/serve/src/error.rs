//! Typed failure modes of the query service.

use atd_core::DiscoveryError;

/// Everything that can go wrong between submitting a request and reading
/// its response. Each variant maps to a row of the failure-mode table in
/// the crate README: the service *always* answers — with a team list or
/// with one of these — and never takes the process down.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded submission queue was full: the service sheds the
    /// request instead of queueing unbounded work (backpressure). Carries
    /// the configured capacity so callers can log or resize.
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The request's deadline passed before the search completed. The
    /// worker abandoned the query cooperatively (between roots /
    /// candidates); no partial result exists.
    DeadlineExceeded,
    /// The admission controller's service-time model predicted the
    /// request could not finish before its deadline, so it was shed at
    /// the door instead of queued ([`AdmissionConfig::predictive`]).
    /// Only low-priority requests are shed this way.
    ///
    /// [`AdmissionConfig::predictive`]: crate::AdmissionConfig::predictive
    DeadlineInfeasible {
        /// Predicted completion time (queue wait + service).
        estimated: std::time::Duration,
        /// Time that remained until the request's deadline.
        remaining: std::time::Duration,
    },
    /// A low-priority request shed at admission because the service is
    /// in the [`BrownoutTier::Brownout2`](crate::BrownoutTier::Brownout2)
    /// degradation tier. High-priority traffic is never shed this way.
    BrownoutShed,
    /// The query panicked inside the worker. The panic was caught, the
    /// worker survives, and the payload message is returned here.
    QueryPanicked(String),
    /// The service is shutting down and no longer accepts or answers
    /// requests.
    ShuttingDown,
    /// The worker's reply could not be delivered (the caller dropped its
    /// receiver) — or, from the caller's side, the worker died before
    /// replying and the supervisor respawned it.
    ResponseLost,
    /// The query itself failed (empty project, uncoverable skill, no
    /// team, ...). Transparent wrapper over the engine error.
    Query(DiscoveryError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "service overloaded: submission queue full ({capacity})")
            }
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServeError::DeadlineInfeasible {
                estimated,
                remaining,
            } => write!(
                f,
                "deadline infeasible: estimated completion {estimated:?} exceeds remaining {remaining:?}"
            ),
            ServeError::BrownoutShed => {
                write!(f, "low-priority request shed: service in brownout")
            }
            ServeError::QueryPanicked(msg) => write!(f, "query panicked: {msg}"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::ResponseLost => write!(f, "response channel lost"),
            ServeError::Query(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiscoveryError> for ServeError {
    fn from(e: DiscoveryError) -> ServeError {
        match e {
            // A cancelled search inside the service is always
            // deadline-driven — the service never cancels explicitly.
            DiscoveryError::Cancelled => ServeError::DeadlineExceeded,
            other => ServeError::Query(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(ServeError::Overloaded { capacity: 8 }
            .to_string()
            .contains('8'));
        assert!(ServeError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(ServeError::DeadlineInfeasible {
            estimated: std::time::Duration::from_millis(50),
            remaining: std::time::Duration::from_millis(10),
        }
        .to_string()
        .contains("infeasible"));
        assert!(ServeError::BrownoutShed.to_string().contains("brownout"));
        assert!(ServeError::QueryPanicked("boom".into())
            .to_string()
            .contains("boom"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
    }

    #[test]
    fn cancelled_maps_to_deadline() {
        assert_eq!(
            ServeError::from(DiscoveryError::Cancelled),
            ServeError::DeadlineExceeded
        );
        assert_eq!(
            ServeError::from(DiscoveryError::EmptyProject),
            ServeError::Query(DiscoveryError::EmptyProject)
        );
    }
}
