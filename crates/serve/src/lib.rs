#![warn(missing_docs)]

//! # atd-serve — fault-tolerant concurrent team-discovery service
//!
//! The paper's setting is interactive: an organization asks for teams
//! while the underlying co-authorship network keeps growing. This crate
//! turns the single-threaded [`Discovery`](atd_core::Discovery) engine
//! into a long-lived **query service**:
//!
//! * a worker pool ([`QueryService`]) answering concurrent requests
//!   against one immutable, `Arc`-pinned [`Snapshot`], each worker
//!   reusing its own [`QueryScratch`](atd_core::QueryScratch);
//! * **hot snapshot swaps** ([`QueryService::publish`] /
//!   [`QueryService::try_publish_with`]): a background thread builds or
//!   loads the next index and atomically replaces the serving one;
//!   in-flight requests finish on the snapshot they pinned;
//! * **deadlines** per request via cooperative cancellation
//!   ([`ServeError::DeadlineExceeded`]) — an expensive query cannot pin a
//!   worker forever;
//! * **backpressure**: a bounded submission queue sheds excess load as
//!   [`ServeError::Overloaded`] instead of buffering unbounded work;
//! * **graceful degradation** ([`admission`]): an EWMA admission
//!   controller sheds requests predicted to miss their deadline before
//!   they queue ([`ServeError::DeadlineInfeasible`]), priority classes
//!   keep verifier/system traffic unstarved, and p99-driven **brownout
//!   tiers** switch serving to flagged best-effort anytime answers
//!   ([`ServeResponse::degraded`]) before shedding anything;
//! * **panic isolation**: a query that panics is caught
//!   ([`ServeError::QueryPanicked`]) and the worker keeps serving; a
//!   worker that dies anyway is respawned by the supervisor;
//! * a **deterministic fault-injection harness** ([`faultpoint`], behind
//!   the `fault-injection` feature) so all of the above is tested with
//!   forced failures, not hoped-for ones;
//! * a **durable publish path** ([`DurableService`]): mutations are
//!   applied through `atd-store`'s write-ahead journal and the serving
//!   snapshot swaps only after the record is on disk, so no
//!   acknowledged mutation survives a crash un-served — see
//!   [`durable`] for the ordering contract.
//!
//! Responses on a given snapshot are bit-identical to calling
//! [`Discovery::top_k`](atd_core::Discovery::top_k) directly on that
//! snapshot's engine — concurrency changes throughput, never answers.
//! See `src/README.md` for the snapshot lifecycle and the failure-mode
//! table.

pub mod admission;
pub mod durable;
pub mod error;
pub mod faultpoint;
mod queue;
pub mod service;
pub mod snapshot;
pub mod stats;

pub use admission::{AdmissionConfig, BrownoutConfig, BrownoutTier, Priority};
pub use durable::{
    AppendReceipt, DurableConfig, DurableError, DurableService, JournalConfig, RecoveryReport,
};
pub use error::ServeError;
pub use faultpoint::{Fault, FaultPlan};
pub use service::{
    PartialBound, QueryService, Request, ResponseHandle, ServeConfig, ServeResponse,
};
pub use snapshot::Snapshot;
pub use stats::ServeStats;
