//! Immutable snapshots and the atomic swap cell.
//!
//! A [`Snapshot`] is a fully built [`Discovery`] engine plus a version
//! number, held behind an `Arc` and never mutated after publication.
//! The crate-private `SnapshotCell` is the single point of coordination between the swap
//! path and the query path: publishing stores a new `Arc`, serving clones
//! the current one. An in-flight request *pins* its snapshot — the clone
//! keeps the old engine alive until the last request drops it, so a swap
//! never invalidates running queries and old snapshots are freed exactly
//! when the final reference disappears.
//!
//! The cell is a hand-rolled *left-right* structure (the build
//! environment has no arc-swap crate): two snapshot slots indexed by the
//! parity of a generation counter, plus one pin counter per slot. A
//! reader pins the live slot's counter, re-checks the generation (retry
//! on a lost race), clones the `Arc`, and unpins — wait-free against
//! other readers, never blocked by a writer, and with no `Mutex` there
//! is no poison state to paper over. A writer (swaps are rare and
//! already serialized by the service's swap thread, but the cell
//! tolerates concurrent callers via an internal spin lock) installs the
//! new snapshot in the inactive slot, bumps the generation, then waits
//! for the old slot's stragglers to drain before taking the old `Arc`
//! out — so `swap` still returns the previous snapshot and the cell
//! never retains more than the one live engine.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use atd_core::Discovery;

/// An immutable, versioned serving unit: one engine, one version stamp.
pub struct Snapshot {
    version: u64,
    engine: Discovery,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("version", &self.version)
            .finish_non_exhaustive()
    }
}

impl Snapshot {
    /// Wraps a built engine as snapshot `version`.
    pub fn new(version: u64, engine: Discovery) -> Snapshot {
        Snapshot { version, engine }
    }

    /// The version stamp assigned at publication.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The query engine. Immutable — all of `Discovery`'s query methods
    /// take `&self`.
    pub fn engine(&self) -> &Discovery {
        &self.engine
    }
}

/// The hot-swap cell: readers pin lock-free, writers replace.
///
/// Invariants the unsafe slot accesses rely on:
///
/// * The slot of the current generation's parity always holds `Some`.
/// * A slot's contents are only *dereferenced* by a reader whose pin on
///   that slot was confirmed by a generation re-check, and only
///   *written* by a writer after the generation has moved away from the
///   slot's parity and its pin count has drained to zero. The SeqCst
///   pin-then-check / publish-then-check protocol below makes those two
///   conditions mutually exclusive.
pub(crate) struct SnapshotCell {
    /// Two snapshot slots; `gen & 1` indexes the live one.
    slots: [UnsafeCell<Option<Arc<Snapshot>>>; 2],
    /// Generation counter; bumped once per swap, parity = live slot.
    gen: AtomicUsize,
    /// In-flight reader pins, one counter per slot.
    pins: [AtomicUsize; 2],
    /// Serializes writers; readers never touch it, and with no `Mutex`
    /// a panicking writer cannot poison anyone (the flag clears via the
    /// release guard's `Drop`).
    writing: AtomicBool,
}

// SAFETY: the slots are shared across threads under the protocol in the
// struct docs — every dereference is either a confirmed-pinned read of
// an immutable `Arc` or an exclusive writer access behind `writing` +
// drained pins.
unsafe impl Send for SnapshotCell {}
unsafe impl Sync for SnapshotCell {}

impl std::fmt::Debug for SnapshotCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("gen", &self.gen.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Clears the writer flag even if the writer unwinds.
struct WriteGuard<'a>(&'a AtomicBool);

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

impl SnapshotCell {
    pub fn new(initial: Arc<Snapshot>) -> SnapshotCell {
        SnapshotCell {
            slots: [UnsafeCell::new(Some(initial)), UnsafeCell::new(None)],
            gen: AtomicUsize::new(0),
            pins: [AtomicUsize::new(0), AtomicUsize::new(0)],
            writing: AtomicBool::new(false),
        }
    }

    /// Pins the current snapshot: the returned `Arc` stays valid (and
    /// keeps the engine alive) across any number of concurrent swaps.
    ///
    /// Lock-free: a reader retries only when a swap landed between its
    /// pin and its re-check, so the retry count is bounded by writer
    /// activity and readers never wait on each other or on a writer.
    pub fn load(&self) -> Arc<Snapshot> {
        loop {
            let gen = self.gen.load(Ordering::SeqCst);
            let idx = gen & 1;
            // Pin first, then re-check. SeqCst on both sides of the
            // store/load pairs (our pin vs. the writer's gen bump) means
            // either we see the new generation and retry, or the writer
            // sees our pin and waits — never neither.
            self.pins[idx].fetch_add(1, Ordering::SeqCst);
            if self.gen.load(Ordering::SeqCst) == gen {
                // SAFETY: pin confirmed at `gen`, so no writer will
                // touch this slot until we unpin; the live slot is
                // always `Some`.
                let snapshot = unsafe {
                    (*self.slots[idx].get())
                        .as_ref()
                        .expect("live slot")
                        .clone()
                };
                self.pins[idx].fetch_sub(1, Ordering::Release);
                return snapshot;
            }
            // Lost the race with a swap; this slot may be getting
            // rewritten. We never dereferenced it — just retry.
            self.pins[idx].fetch_sub(1, Ordering::Release);
        }
    }

    /// Atomically replaces the serving snapshot, returning the previous
    /// one (which stays alive while any request still pins it).
    pub fn swap(&self, next: Arc<Snapshot>) -> Arc<Snapshot> {
        while self.writing.swap(true, Ordering::Acquire) {
            std::hint::spin_loop();
        }
        let _release = WriteGuard(&self.writing);

        let gen = self.gen.load(Ordering::SeqCst);
        let old_idx = gen & 1;
        let new_idx = 1 - old_idx;
        // SAFETY: we hold the writer flag and the previous swap drained
        // and emptied this slot, so no confirmed reader can be
        // dereferencing it (a racing reader's pin fails its gen
        // re-check before it ever reads the slot).
        unsafe {
            *self.slots[new_idx].get() = Some(next);
        }
        self.gen.store(gen + 1, Ordering::SeqCst);
        // Wait out readers that confirmed a pin on the old slot before
        // the bump. New readers land on the new slot, so this drains in
        // the time of an `Arc` clone per straggler.
        while self.pins[old_idx].load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // SAFETY: generation moved away from this slot and its pins are
        // drained — we have exclusive access; the outgoing live slot is
        // always `Some`.
        unsafe {
            (*self.slots[old_idx].get())
                .take()
                .expect("previous live slot")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atd_core::{Project, SkillIndexBuilder, Strategy};
    use atd_graph::GraphBuilder;

    fn tiny_engine(auth: f64) -> (Discovery, Project) {
        let mut b = GraphBuilder::new();
        let a = b.add_node(auth);
        let c = b.add_node(2.0);
        b.add_edge(a, c, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut sb = SkillIndexBuilder::new();
        let s = sb.intern("s");
        sb.grant(a, s);
        let idx = sb.build(g.num_nodes());
        (Discovery::new(g, idx).unwrap(), Project::new(vec![s]))
    }

    #[test]
    fn pinned_snapshot_survives_swap() {
        let (e1, project) = tiny_engine(1.0);
        let (e2, _) = tiny_engine(5.0);
        let cell = SnapshotCell::new(Arc::new(Snapshot::new(1, e1)));
        let pinned = cell.load();
        assert_eq!(pinned.version(), 1);
        let old = cell.swap(Arc::new(Snapshot::new(2, e2)));
        assert_eq!(old.version(), 1);
        assert_eq!(cell.load().version(), 2);
        // The pinned snapshot still answers queries after the swap.
        pinned
            .engine()
            .best(&project, Strategy::Cc)
            .expect("pinned snapshot still serves");
        assert_eq!(pinned.version(), 1);
    }

    #[test]
    fn concurrent_loads_and_swaps_never_tear_or_regress() {
        use std::sync::atomic::{AtomicBool, Ordering};
        // One writer swapping as fast as it can; several readers
        // hammering load(). Every load must observe a monotonically
        // nondecreasing version (per reader), every swap must return the
        // exact previous snapshot, and nothing deadlocks or double-frees.
        let (e1, _) = tiny_engine(1.0);
        let cell = Arc::new(SnapshotCell::new(Arc::new(Snapshot::new(0, e1))));
        let stop = Arc::new(AtomicBool::new(false));
        const SWAPS: u64 = 200;

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.load();
                        assert!(snap.version() >= last, "version went backwards");
                        last = snap.version();
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();

        for version in 1..=SWAPS {
            let (engine, _) = tiny_engine(1.0 + version as f64);
            let old = cell.swap(Arc::new(Snapshot::new(version, engine)));
            assert_eq!(old.version(), version - 1, "swap returns the previous");
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            assert!(reader.join().unwrap() > 0, "reader made progress");
        }
        assert_eq!(cell.load().version(), SWAPS);
    }
}
