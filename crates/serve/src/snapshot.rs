//! Immutable snapshots and the atomic swap cell.
//!
//! A [`Snapshot`] is a fully built [`Discovery`] engine plus a version
//! number, held behind an `Arc` and never mutated after publication.
//! The crate-private `SnapshotCell` is the single point of coordination between the swap
//! path and the query path: publishing stores a new `Arc`, serving clones
//! the current one. An in-flight request *pins* its snapshot — the clone
//! keeps the old engine alive until the last request drops it, so a swap
//! never invalidates running queries and old snapshots are freed exactly
//! when the final reference disappears.
//!
//! The cell is a `Mutex<Arc<Snapshot>>` rather than a lock-free
//! `ArcSwap`: the build environment has no arc-swap crate, and the
//! critical section is a single `Arc` clone (a few nanoseconds), which no
//! query-path profile here can distinguish from the lock-free version.

use std::sync::{Arc, Mutex};

use atd_core::Discovery;

/// An immutable, versioned serving unit: one engine, one version stamp.
pub struct Snapshot {
    version: u64,
    engine: Discovery,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("version", &self.version)
            .finish_non_exhaustive()
    }
}

impl Snapshot {
    /// Wraps a built engine as snapshot `version`.
    pub fn new(version: u64, engine: Discovery) -> Snapshot {
        Snapshot { version, engine }
    }

    /// The version stamp assigned at publication.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The query engine. Immutable — all of `Discovery`'s query methods
    /// take `&self`.
    pub fn engine(&self) -> &Discovery {
        &self.engine
    }
}

/// The hot-swap cell: readers pin, writers replace.
#[derive(Debug)]
pub(crate) struct SnapshotCell {
    current: Mutex<Arc<Snapshot>>,
}

impl SnapshotCell {
    pub fn new(initial: Arc<Snapshot>) -> SnapshotCell {
        SnapshotCell {
            current: Mutex::new(initial),
        }
    }

    /// Pins the current snapshot: the returned `Arc` stays valid (and
    /// keeps the engine alive) across any number of concurrent swaps.
    pub fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Atomically replaces the serving snapshot, returning the previous
    /// one (which stays alive while any request still pins it).
    pub fn swap(&self, next: Arc<Snapshot>) -> Arc<Snapshot> {
        let mut cur = self.current.lock().unwrap_or_else(|p| p.into_inner());
        std::mem::replace(&mut *cur, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atd_core::{Project, SkillIndexBuilder, Strategy};
    use atd_graph::GraphBuilder;

    fn tiny_engine(auth: f64) -> (Discovery, Project) {
        let mut b = GraphBuilder::new();
        let a = b.add_node(auth);
        let c = b.add_node(2.0);
        b.add_edge(a, c, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut sb = SkillIndexBuilder::new();
        let s = sb.intern("s");
        sb.grant(a, s);
        let idx = sb.build(g.num_nodes());
        (Discovery::new(g, idx).unwrap(), Project::new(vec![s]))
    }

    #[test]
    fn pinned_snapshot_survives_swap() {
        let (e1, project) = tiny_engine(1.0);
        let (e2, _) = tiny_engine(5.0);
        let cell = SnapshotCell::new(Arc::new(Snapshot::new(1, e1)));
        let pinned = cell.load();
        assert_eq!(pinned.version(), 1);
        let old = cell.swap(Arc::new(Snapshot::new(2, e2)));
        assert_eq!(old.version(), 1);
        assert_eq!(cell.load().version(), 2);
        // The pinned snapshot still answers queries after the swap.
        pinned
            .engine()
            .best(&project, Strategy::Cc)
            .expect("pinned snapshot still serves");
        assert_eq!(pinned.version(), 1);
    }
}
