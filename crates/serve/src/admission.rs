//! Adaptive admission control and brownout degradation tiers.
//!
//! Two cooperating mechanisms replace the blind capacity-only shedding
//! of the bare bounded queue:
//!
//! * **`AdmissionController`** — keeps an EWMA of per-request service
//!   time, both globally and keyed by *request shape* (`k`, skill count,
//!   γ), and estimates a request's completion time at submission as
//!   `queue_depth × global_mean / workers + shape_mean`. A low-priority
//!   request whose estimate already exceeds its deadline is shed at the
//!   door ([`ServeError::DeadlineInfeasible`]) instead of wasting queue
//!   space and worker time on an answer nobody will wait for. Estimates
//!   activate only after [`AdmissionConfig::min_samples`] completions,
//!   so a cold service never sheds on a guess.
//! * **`BrownoutController`** — a service-level degradation state
//!   machine driven by the observed p99 of end-to-end latency
//!   (enqueue → reply) against a configured target:
//!
//!   ```text
//!               p99 > target            p99 > 2×target
//!              (enter_after          (enter_after windows)
//!                windows)
//!    Normal ───────────────▶ Brownout1 ───────────────▶ Brownout2
//!       ▲                    │    ▲                        │
//!       └────────────────────┘    └────────────────────────┘
//!        p99 < exit_ratio×target        p99 < target
//!          (exit_after windows)      (exit_after windows)
//!   ```
//!
//!   *Brownout1* switches answers to the anytime path with a reduced
//!   root-scan budget (bounded-quality degraded responses, explicitly
//!   flagged); *Brownout2* additionally sheds low-priority requests at
//!   admission ([`ServeError::BrownoutShed`]). Entry and exit both
//!   require **consecutive** windows over/under their thresholds
//!   (hysteresis), so a single latency spike cannot flap the tier.
//!
//! Priority classes ([`Priority`]) keep verifier/system traffic safe
//! from bulk clients: high-priority requests bypass predictive shedding,
//! brownout shedding, and the low-priority queue headroom reservation.
//!
//! [`ServeError::DeadlineInfeasible`]: crate::ServeError::DeadlineInfeasible
//! [`ServeError::BrownoutShed`]: crate::ServeError::BrownoutShed

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use crate::faultpoint;

/// Request priority class.
///
/// The default is [`Priority::Low`] — bulk/interactive client traffic
/// that absorbs degradation under overload. [`Priority::High`] is for
/// verifier and system traffic that must not be starved: it bypasses
/// predictive admission shedding, brownout shedding, and the
/// low-priority queue headroom reservation (only a genuinely full queue
/// can refuse it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Bulk client traffic; sheds first under overload.
    #[default]
    Low,
    /// Verifier/system traffic; admitted while any capacity remains.
    High,
}

/// Tuning for the `AdmissionController`.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Shed low-priority requests whose estimated completion exceeds
    /// their deadline ([`ServeError::DeadlineInfeasible`]). Estimates
    /// need [`AdmissionConfig::min_samples`] completions to warm up, so
    /// enabling this never sheds on a cold service.
    ///
    /// [`ServeError::DeadlineInfeasible`]: crate::ServeError::DeadlineInfeasible
    pub predictive: bool,
    /// Completions observed before predictive estimates activate.
    pub min_samples: u64,
    /// EWMA smoothing factor in `(0, 1]`; higher weighs recent requests
    /// more.
    pub ewma_alpha: f64,
    /// Queue slots reserved for high-priority traffic: a low-priority
    /// request is refused once fewer than this many slots remain. `0`
    /// (the default) disables the reservation.
    pub low_priority_headroom: usize,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            predictive: true,
            min_samples: 8,
            ewma_alpha: 0.2,
            low_priority_headroom: 0,
        }
    }
}

/// The shape of a request for service-time prediction: requests with the
/// same `k`, skill count, and γ cost roughly the same, so their history
/// predicts each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct RequestShape {
    k: usize,
    skills: usize,
    /// `γ.to_bits()`, `u64::MAX` for the untransformed base strategy
    /// (mirrors `QueryScratch`'s context key).
    gamma_bits: u64,
}

impl RequestShape {
    pub(crate) fn new(k: usize, skills: usize, gamma: Option<f64>) -> RequestShape {
        RequestShape {
            k,
            skills,
            gamma_bits: gamma.map(f64::to_bits).unwrap_or(u64::MAX),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Ewma {
    mean_secs: f64,
    samples: u64,
}

impl Ewma {
    fn observe(&mut self, alpha: f64, secs: f64) {
        self.mean_secs = if self.samples == 0 {
            secs
        } else {
            alpha * secs + (1.0 - alpha) * self.mean_secs
        };
        self.samples += 1;
    }
}

#[derive(Debug, Default)]
struct AdmissionState {
    global: Ewma,
    by_shape: HashMap<RequestShape, Ewma>,
}

/// EWMA-based service-time predictor for shed-before-enqueue decisions.
/// See the [module docs](self) for the estimation model.
#[derive(Debug)]
pub(crate) struct AdmissionController {
    config: AdmissionConfig,
    state: Mutex<AdmissionState>,
}

impl AdmissionController {
    pub(crate) fn new(config: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            config,
            state: Mutex::new(AdmissionState::default()),
        }
    }

    pub(crate) fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    fn lock(&self) -> MutexGuard<'_, AdmissionState> {
        // EWMA state is plain data; recover from a poisoned lock just
        // like the queue does.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Feeds one completed request's worker-side service time into the
    /// model (all outcomes count — a deadline-truncated query still
    /// occupied its worker for exactly this long).
    pub(crate) fn record(&self, shape: RequestShape, service_time: Duration) {
        let secs = service_time.as_secs_f64();
        let alpha = self.config.ewma_alpha.clamp(f64::MIN_POSITIVE, 1.0);
        let mut s = self.lock();
        s.global.observe(alpha, secs);
        s.by_shape.entry(shape).or_default().observe(alpha, secs);
    }

    /// Estimated completion time (queue wait + service) for a request of
    /// `shape` submitted now, or `None` while the model is cold.
    pub(crate) fn estimate(
        &self,
        shape: RequestShape,
        queue_depth: usize,
        workers: usize,
    ) -> Option<Duration> {
        let s = self.lock();
        if s.global.samples < self.config.min_samples.max(1) {
            return None;
        }
        let per_request = s.global.mean_secs;
        let service = s
            .by_shape
            .get(&shape)
            .filter(|e| e.samples > 0)
            .map(|e| e.mean_secs)
            .unwrap_or(per_request);
        let wait = queue_depth as f64 * per_request / workers.max(1) as f64;
        Some(Duration::from_secs_f64((wait + service).max(0.0)))
    }
}

/// The service's degradation tier. Ordered: each tier includes the
/// degradations of the ones before it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutTier {
    /// Full-fidelity serving.
    #[default]
    Normal,
    /// Anytime answers under a reduced root-scan budget; every degraded
    /// response is flagged with its `roots_scanned` bound.
    Brownout1,
    /// Additionally sheds low-priority requests at admission.
    Brownout2,
}

impl BrownoutTier {
    fn from_u8(v: u8) -> BrownoutTier {
        match v {
            0 => BrownoutTier::Normal,
            1 => BrownoutTier::Brownout1,
            _ => BrownoutTier::Brownout2,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            BrownoutTier::Normal => 0,
            BrownoutTier::Brownout1 => 1,
            BrownoutTier::Brownout2 => 2,
        }
    }
}

impl std::fmt::Display for BrownoutTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrownoutTier::Normal => write!(f, "normal"),
            BrownoutTier::Brownout1 => write!(f, "brownout1"),
            BrownoutTier::Brownout2 => write!(f, "brownout2"),
        }
    }
}

/// Tuning for the `BrownoutController`. The state machine is disabled
/// (tier pinned to [`BrownoutTier::Normal`]) unless
/// [`p99_target`](BrownoutConfig::p99_target) is set.
#[derive(Debug, Clone)]
pub struct BrownoutConfig {
    /// End-to-end (enqueue → reply) p99 latency target; `None` disables
    /// brownout entirely.
    pub p99_target: Option<Duration>,
    /// Completions per evaluation window.
    pub window: usize,
    /// Consecutive over-threshold windows required to step a tier up.
    pub enter_after: u32,
    /// Consecutive under-threshold windows required to step a tier down.
    pub exit_after: u32,
    /// Brownout1 exits to Normal only once p99 drops below
    /// `exit_ratio × p99_target` — the hysteresis band that prevents
    /// enter/exit flapping right at the target.
    pub exit_ratio: f64,
    /// Fraction of the roots an anytime query scans while browned out,
    /// in `(0, 1]`; the resulting budget is at least 1 root.
    pub brownout_root_fraction: f64,
}

impl Default for BrownoutConfig {
    fn default() -> BrownoutConfig {
        BrownoutConfig {
            p99_target: None,
            window: 32,
            enter_after: 2,
            exit_after: 2,
            exit_ratio: 0.5,
            brownout_root_fraction: 0.25,
        }
    }
}

/// A tier change reported by [`BrownoutController::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BrownoutTransition {
    /// Stepped one tier up (degradation entered/deepened).
    Entered(BrownoutTier),
    /// Stepped one tier down (recovery).
    Exited(BrownoutTier),
}

#[derive(Debug, Default)]
struct BrownoutState {
    window: Vec<Duration>,
    over_streak: u32,
    under_streak: u32,
}

/// p99-driven degradation state machine. See the [module docs](self)
/// for the transition diagram and hysteresis rules.
#[derive(Debug)]
pub(crate) struct BrownoutController {
    config: BrownoutConfig,
    /// Current tier, readable lock-free from the submit path and the
    /// workers' per-request tier check.
    tier: AtomicU8,
    state: Mutex<BrownoutState>,
}

impl BrownoutController {
    pub(crate) fn new(config: BrownoutConfig) -> BrownoutController {
        BrownoutController {
            config,
            tier: AtomicU8::new(BrownoutTier::Normal.as_u8()),
            state: Mutex::new(BrownoutState::default()),
        }
    }

    /// The currently active tier (always `Normal` when disabled).
    pub(crate) fn tier(&self) -> BrownoutTier {
        BrownoutTier::from_u8(self.tier.load(Ordering::Relaxed))
    }

    /// The root-scan budget the current tier imposes on a graph of `n`
    /// nodes; `None` means an unbounded (full-fidelity) scan.
    pub(crate) fn root_budget(&self, n: usize) -> Option<usize> {
        if self.tier() == BrownoutTier::Normal {
            return None;
        }
        let fraction = self.config.brownout_root_fraction.clamp(0.0, 1.0);
        Some(((n as f64 * fraction) as usize).clamp(1, n.max(1)))
    }

    /// Feeds one finished request's end-to-end latency into the window;
    /// evaluates the state machine every
    /// [`window`](BrownoutConfig::window) completions. Returns the
    /// transition, if this observation caused one.
    ///
    /// The `serve.brownout` faultpoint fires inside every observation —
    /// workers call this outside their `catch_unwind`, so an armed panic
    /// kills the worker (exercising supervisor respawn on the stats
    /// path) and an armed delay slows the bookkeeping, never the query.
    pub(crate) fn observe(&self, total_latency: Duration) -> Option<BrownoutTransition> {
        let target = self.config.p99_target?;
        faultpoint::hit("serve.brownout");
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        s.window.push(total_latency);
        if s.window.len() < self.config.window.max(1) {
            return None;
        }
        let mut window = std::mem::take(&mut s.window);
        window.sort_unstable();
        let p99 = window[((window.len() - 1) as f64 * 0.99) as usize];

        let tier = self.tier();
        let enter_after = self.config.enter_after.max(1);
        let exit_after = self.config.exit_after.max(1);
        let exit_target = target.mul_f64(self.config.exit_ratio.clamp(0.0, 1.0));
        let transition = match tier {
            BrownoutTier::Normal => {
                if p99 > target {
                    s.under_streak = 0;
                    s.over_streak += 1;
                    (s.over_streak >= enter_after)
                        .then_some(BrownoutTransition::Entered(BrownoutTier::Brownout1))
                } else {
                    s.over_streak = 0;
                    None
                }
            }
            BrownoutTier::Brownout1 => {
                if p99 > target.saturating_mul(2) {
                    s.under_streak = 0;
                    s.over_streak += 1;
                    (s.over_streak >= enter_after)
                        .then_some(BrownoutTransition::Entered(BrownoutTier::Brownout2))
                } else if p99 < exit_target {
                    s.over_streak = 0;
                    s.under_streak += 1;
                    (s.under_streak >= exit_after)
                        .then_some(BrownoutTransition::Exited(BrownoutTier::Normal))
                } else {
                    // Inside the hysteresis band: neither streak grows.
                    s.over_streak = 0;
                    s.under_streak = 0;
                    None
                }
            }
            BrownoutTier::Brownout2 => {
                if p99 < target {
                    s.over_streak = 0;
                    s.under_streak += 1;
                    (s.under_streak >= exit_after)
                        .then_some(BrownoutTransition::Exited(BrownoutTier::Brownout1))
                } else {
                    s.under_streak = 0;
                    None
                }
            }
        };
        if let Some(t) = transition {
            let next = match t {
                BrownoutTransition::Entered(next) | BrownoutTransition::Exited(next) => next,
            };
            self.tier.store(next.as_u8(), Ordering::Relaxed);
            s.over_streak = 0;
            s.under_streak = 0;
        }
        transition
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn estimates_stay_cold_until_min_samples() {
        let ac = AdmissionController::new(AdmissionConfig {
            min_samples: 3,
            ..AdmissionConfig::default()
        });
        let shape = RequestShape::new(3, 2, None);
        assert_eq!(ac.estimate(shape, 0, 1), None);
        ac.record(shape, ms(10));
        ac.record(shape, ms(10));
        assert_eq!(ac.estimate(shape, 0, 1), None, "2 < min_samples");
        ac.record(shape, ms(10));
        let est = ac.estimate(shape, 0, 1).expect("warmed");
        assert!(est >= ms(9) && est <= ms(11), "≈ observed mean: {est:?}");
    }

    #[test]
    fn estimate_scales_with_queue_depth_and_workers() {
        let ac = AdmissionController::new(AdmissionConfig {
            min_samples: 1,
            ewma_alpha: 1.0,
            ..AdmissionConfig::default()
        });
        let shape = RequestShape::new(3, 2, None);
        ac.record(shape, ms(10));
        let empty = ac.estimate(shape, 0, 2).unwrap();
        let deep = ac.estimate(shape, 8, 2).unwrap();
        let deep_more_workers = ac.estimate(shape, 8, 4).unwrap();
        assert!(deep > empty, "queued work raises the estimate");
        assert!(
            deep > deep_more_workers,
            "more workers drain the queue faster"
        );
        // 8 × 10ms / 2 workers + 10ms service = 50ms.
        assert!(deep >= ms(45) && deep <= ms(55), "{deep:?}");
    }

    #[test]
    fn unseen_shape_falls_back_to_global_mean() {
        let ac = AdmissionController::new(AdmissionConfig {
            min_samples: 1,
            ewma_alpha: 1.0,
            ..AdmissionConfig::default()
        });
        ac.record(RequestShape::new(3, 2, None), ms(20));
        let est = ac
            .estimate(RequestShape::new(5, 4, Some(0.5)), 0, 1)
            .expect("global model warmed");
        assert!(est >= ms(18) && est <= ms(22), "{est:?}");
    }

    fn enabled(target_ms: u64) -> BrownoutController {
        BrownoutController::new(BrownoutConfig {
            p99_target: Some(ms(target_ms)),
            window: 4,
            enter_after: 2,
            exit_after: 2,
            exit_ratio: 0.5,
            brownout_root_fraction: 0.25,
        })
    }

    fn feed_windows(
        b: &BrownoutController,
        latency: Duration,
        windows: usize,
    ) -> Vec<BrownoutTransition> {
        let mut out = Vec::new();
        for _ in 0..windows * 4 {
            if let Some(t) = b.observe(latency) {
                out.push(t);
            }
        }
        out
    }

    #[test]
    fn disabled_brownout_never_leaves_normal() {
        let b = BrownoutController::new(BrownoutConfig::default());
        for _ in 0..200 {
            assert_eq!(b.observe(ms(10_000)), None);
        }
        assert_eq!(b.tier(), BrownoutTier::Normal);
        assert_eq!(b.root_budget(100), None);
    }

    #[test]
    fn hysteresis_requires_consecutive_windows_each_way() {
        let b = enabled(10);
        // One bad window is not enough (enter_after = 2)…
        assert!(feed_windows(&b, ms(50), 1).is_empty());
        assert_eq!(b.tier(), BrownoutTier::Normal);
        // …and a calm window in between resets the streak.
        assert!(feed_windows(&b, ms(1), 1).is_empty());
        assert!(feed_windows(&b, ms(50), 1).is_empty());
        assert_eq!(b.tier(), BrownoutTier::Normal);
        // Two consecutive bad windows enter Brownout1.
        let t = feed_windows(&b, ms(50), 2);
        assert_eq!(
            t,
            vec![BrownoutTransition::Entered(BrownoutTier::Brownout1)]
        );
        assert_eq!(b.tier(), BrownoutTier::Brownout1);
        assert_eq!(b.root_budget(100), Some(25));
        // In the hysteresis band (between exit and target) nothing moves.
        assert!(feed_windows(&b, ms(7), 4).is_empty());
        assert_eq!(b.tier(), BrownoutTier::Brownout1);
        // Two calm windows below exit_ratio × target recover to Normal.
        let t = feed_windows(&b, ms(2), 2);
        assert_eq!(t, vec![BrownoutTransition::Exited(BrownoutTier::Normal)]);
        assert_eq!(b.tier(), BrownoutTier::Normal);
    }

    #[test]
    fn sustained_severe_overload_escalates_to_brownout2_and_back() {
        let b = enabled(10);
        let t = feed_windows(&b, ms(100), 4);
        assert_eq!(
            t,
            vec![
                BrownoutTransition::Entered(BrownoutTier::Brownout1),
                BrownoutTransition::Entered(BrownoutTier::Brownout2),
            ]
        );
        assert_eq!(b.tier(), BrownoutTier::Brownout2);
        // Recovery steps down one tier at a time.
        let t = feed_windows(&b, ms(2), 4);
        assert_eq!(
            t,
            vec![
                BrownoutTransition::Exited(BrownoutTier::Brownout1),
                BrownoutTransition::Exited(BrownoutTier::Normal),
            ]
        );
        assert_eq!(b.tier(), BrownoutTier::Normal);
    }

    #[test]
    fn root_budget_is_clamped_sane() {
        let b = enabled(10);
        feed_windows(&b, ms(100), 2);
        assert_eq!(b.tier(), BrownoutTier::Brownout1);
        assert_eq!(b.root_budget(100), Some(25));
        assert_eq!(b.root_budget(1), Some(1), "never below one root");
        let tiny = BrownoutController::new(BrownoutConfig {
            p99_target: Some(ms(10)),
            brownout_root_fraction: 0.0001,
            window: 1,
            enter_after: 1,
            ..BrownoutConfig::default()
        });
        tiny.observe(ms(100));
        assert_eq!(tiny.root_budget(100), Some(1));
    }

    #[test]
    fn priority_orders_low_below_high() {
        assert!(Priority::Low < Priority::High);
        assert_eq!(Priority::default(), Priority::Low);
    }
}
