//! The worker pool, request lifecycle, and snapshot publication.
//!
//! ```text
//!  clients ──submit()──▶ admission ──▶ BoundedQueue ──pop()──▶ worker 1..N ──reply──▶ client
//!                          │ shed?        │ full?                │ pins Arc<Snapshot>
//!                          ▼              ▼                      │ CancelToken(deadline)
//!               DeadlineInfeasible    Overloaded                 │ catch_unwind
//!               BrownoutShed                                     ▼
//!                                                          SnapshotCell ◀─publish()─ swap thread
//! ```
//!
//! Design rules, each backed by a test:
//!
//! * **One immutable snapshot, many readers.** Workers clone the current
//!   `Arc<Snapshot>` per request; swaps never stall or corrupt a running
//!   query (pinning).
//! * **Failure is an answer, not an outcome.** Every request ends in a
//!   `Result` — panics become [`ServeError::QueryPanicked`], deadlines
//!   become [`ServeError::DeadlineExceeded`], overload becomes
//!   [`ServeError::Overloaded`], predicted-hopeless deadlines become
//!   [`ServeError::DeadlineInfeasible`]. The process never dies.
//! * **Workers are cattle.** A worker thread that dies anyway (a panic
//!   outside the catch, e.g. the `serve.worker` faultpoint) is respawned
//!   by the supervisor; its queue is shared, so no request is stranded.
//! * **Degrade before refusing, refuse before failing.** Under overload
//!   the service first switches to flagged anytime answers
//!   ([`BrownoutTier::Brownout1`]), then sheds low-priority traffic
//!   ([`BrownoutTier::Brownout2`]) — see [`crate::admission`].
//! * **Every submission is accounted exactly once.** At quiescence
//!   `served + shed_at_admission + shed_expired + errors == submitted`
//!   ([`ServeStats::reconciles`](crate::ServeStats::reconciles)); a
//!   reply that can't be delivered is still counted (`responses_lost`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use atd_core::{CancelToken, Discovery, Project, QueryScratch, ScoredTeam, Strategy};

use crate::admission::{
    AdmissionConfig, AdmissionController, BrownoutConfig, BrownoutController, BrownoutTier,
    BrownoutTransition, Priority, RequestShape,
};
use crate::error::ServeError;
use crate::faultpoint;
use crate::queue::{BoundedQueue, PushError};
use crate::snapshot::{Snapshot, SnapshotCell};
use crate::stats::{Counters, ServeStats};

/// Service sizing and defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads answering queries.
    pub workers: usize,
    /// Bounded submission queue capacity; a full queue sheds with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied to requests that don't set their own.
    pub default_deadline: Option<Duration>,
    /// Adaptive admission control (predictive shedding, priority
    /// headroom). The default admits everything the queue can hold.
    pub admission: AdmissionConfig,
    /// Brownout degradation tiers. The default
    /// ([`BrownoutConfig::p99_target`] = `None`) disables brownout.
    pub brownout: BrownoutConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline: None,
            admission: AdmissionConfig::default(),
            brownout: BrownoutConfig::default(),
        }
    }
}

/// One team-discovery request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The skills to cover.
    pub project: Project,
    /// Ranking strategy (CC / CA-CC / SA-CA-CC).
    pub strategy: Strategy,
    /// How many teams to return.
    pub k: usize,
    /// Per-request deadline override; `None` uses the service default.
    pub deadline: Option<Duration>,
    /// Opt into anytime serving: a deadline that expires mid-search
    /// returns the best-so-far answer flagged with a [`PartialBound`]
    /// instead of [`ServeError::DeadlineExceeded`]. The service also
    /// forces this on while browned out.
    pub anytime: bool,
    /// Priority class; see [`Priority`]. Defaults to [`Priority::Low`].
    pub priority: Priority,
}

impl Request {
    /// A low-priority, fail-fast request with the service's default
    /// deadline.
    pub fn new(project: Project, strategy: Strategy, k: usize) -> Request {
        Request {
            project,
            strategy,
            k,
            deadline: None,
            anytime: false,
            priority: Priority::Low,
        }
    }

    /// Sets the priority class.
    pub fn with_priority(mut self, priority: Priority) -> Request {
        self.priority = priority;
        self
    }

    /// Opts into anytime serving (best-so-far partials on deadline
    /// expiry instead of fail-fast).
    pub fn with_anytime(mut self) -> Request {
        self.anytime = true;
        self
    }
}

/// How much of the scan a degraded (anytime) response covered — the
/// response's explicit quality bound.
///
/// Determinism contract: two degraded responses for the same request are
/// bit-identical iff they scanned the same `roots_scanned` prefix (e.g.
/// the same brownout root budget). Partials cut by a *wall-clock*
/// deadline are **not** reproducible — the poll where time runs out
/// varies run to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialBound {
    /// Candidate roots the truncated scan evaluated.
    pub roots_scanned: usize,
    /// Roots a full-fidelity scan would evaluate.
    pub total_roots: usize,
}

/// A successful answer.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The ranked teams. For full-fidelity responses
    /// ([`degraded`](ServeResponse::degraded) = `None`) these are
    /// bit-identical to a direct [`Discovery::top_k`] on the same
    /// snapshot; a degraded response ranks only the teams its truncated
    /// scan found.
    pub teams: Vec<ScoredTeam>,
    /// `Some` iff this answer came from a truncated anytime scan; carries
    /// the scan-coverage bound. `None` means full fidelity.
    pub degraded: Option<PartialBound>,
    /// Version of the snapshot that answered — clients observing a swap
    /// mid-stream can tell old answers from new.
    pub snapshot_version: u64,
    /// Wall-clock time from dequeue to answer.
    pub latency: Duration,
}

/// A pending response (one-shot receive).
#[derive(Debug)]
pub struct ResponseHandle {
    rx: mpsc::Receiver<Result<ServeResponse, ServeError>>,
}

impl ResponseHandle {
    /// Blocks until the worker answers. A worker that died before
    /// replying (and was respawned) surfaces as
    /// [`ServeError::ResponseLost`].
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ResponseLost))
    }

    /// Non-blocking poll; `None` while the query is still running.
    pub fn try_wait(&self) -> Option<Result<ServeResponse, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ResponseLost)),
        }
    }
}

/// Owns a job's reply sender and counts the reply as lost if it is
/// dropped unsent — which happens exactly when the worker thread dies
/// between dequeue and send (the `serve.worker` faultpoint, or a panic
/// outside the catch). Keeps `responses_lost` in the ledger so the
/// reconciliation invariant holds even across worker kills.
struct ReplyGuard {
    tx: Option<mpsc::Sender<Result<ServeResponse, ServeError>>>,
    counters: Arc<Counters>,
}

impl ReplyGuard {
    /// Delivers the answer (best-effort: the caller may have dropped the
    /// receiver) and disarms the guard.
    fn send(mut self, answer: Result<ServeResponse, ServeError>) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(answer);
        }
    }

    /// Disarms without sending — for jobs handed back by the queue
    /// (shed/shutdown), whose outcome is already counted at admission.
    fn disarm(&mut self) {
        self.tx = None;
    }
}

impl Drop for ReplyGuard {
    fn drop(&mut self) {
        if self.tx.is_some() {
            Counters::bump(&self.counters.responses_lost);
        }
    }
}

struct Job {
    request: Request,
    shape: RequestShape,
    enqueued_at: Instant,
    deadline_at: Option<Instant>,
    reply: ReplyGuard,
}

struct Shared {
    queue: BoundedQueue<Job>,
    cell: SnapshotCell,
    counters: Arc<Counters>,
    admission: AdmissionController,
    brownout: BrownoutController,
    workers: usize,
    default_deadline: Option<Duration>,
    shutting_down: AtomicBool,
    next_version: AtomicU64,
}

/// The fault-tolerant concurrent query service. See the crate README for
/// the snapshot lifecycle and failure-mode table.
pub struct QueryService {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("stats", &self.stats())
            .field("snapshot_version", &self.current_version())
            .field("brownout_tier", &self.brownout_tier())
            .finish()
    }
}

impl QueryService {
    /// Starts the pool with `engine` as snapshot version 1.
    pub fn start(engine: Discovery, config: ServeConfig) -> QueryService {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            cell: SnapshotCell::new(Arc::new(Snapshot::new(1, engine))),
            counters: Arc::new(Counters::default()),
            admission: AdmissionController::new(config.admission),
            brownout: BrownoutController::new(config.brownout),
            workers,
            default_deadline: config.default_deadline,
            shutting_down: AtomicBool::new(false),
            next_version: AtomicU64::new(2),
        });

        // The supervisor owns the worker handles: it spawns the initial
        // pool, then respawns any worker whose thread has finished while
        // the service is still up (the only way a worker exits early is
        // a panic outside catch_unwind).
        let sup_shared = Arc::clone(&shared);
        let supervisor = std::thread::Builder::new()
            .name("atd-serve-supervisor".into())
            .spawn(move || {
                let mut pool: Vec<JoinHandle<()>> = (0..workers)
                    .map(|i| spawn_worker(i, Arc::clone(&sup_shared)))
                    .collect();
                while !sup_shared.shutting_down.load(Ordering::Acquire) {
                    for (i, slot) in pool.iter_mut().enumerate() {
                        if slot.is_finished() {
                            let dead =
                                std::mem::replace(slot, spawn_worker(i, Arc::clone(&sup_shared)));
                            let _ = dead.join(); // collect the panic payload
                            Counters::bump(&sup_shared.counters.workers_respawned);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                for h in pool {
                    let _ = h.join();
                }
            })
            .expect("spawn supervisor thread");

        QueryService {
            shared,
            supervisor: Some(supervisor),
        }
    }

    /// Submits a request through admission control. Returns immediately:
    /// `Ok` with a handle to wait on, or a typed refusal —
    /// [`ServeError::Overloaded`] (queue full, or low-priority headroom
    /// exhausted), [`ServeError::DeadlineInfeasible`] (predicted to miss
    /// its deadline), [`ServeError::BrownoutShed`] (low-priority during
    /// Brownout2), or [`ServeError::ShuttingDown`].
    ///
    /// High-priority requests ([`Priority::High`]) skip every predictive
    /// and brownout shed: only a genuinely full queue refuses them.
    pub fn submit(&self, request: Request) -> Result<ResponseHandle, ServeError> {
        faultpoint::hit("serve.admission");
        let shared = &*self.shared;
        let now = Instant::now();
        let deadline_at = request
            .deadline
            .or(shared.default_deadline)
            .map(|d| now + d);
        let shape = RequestShape::new(request.k, request.project.len(), request.strategy.gamma());

        if request.priority < Priority::High {
            if shared.brownout.tier() == BrownoutTier::Brownout2 {
                Counters::bump(&shared.counters.submitted);
                Counters::bump(&shared.counters.shed_priority);
                return Err(ServeError::BrownoutShed);
            }
            if shared.admission.config().predictive {
                if let Some(deadline) = deadline_at {
                    let remaining = deadline.saturating_duration_since(now);
                    if let Some(estimated) =
                        shared
                            .admission
                            .estimate(shape, shared.queue.len(), shared.workers)
                    {
                        if estimated > remaining {
                            Counters::bump(&shared.counters.submitted);
                            Counters::bump(&shared.counters.shed_infeasible);
                            return Err(ServeError::DeadlineInfeasible {
                                estimated,
                                remaining,
                            });
                        }
                    }
                }
            }
            let headroom = shared.admission.config().low_priority_headroom;
            if headroom > 0 && shared.queue.len() + headroom >= shared.queue.capacity() {
                Counters::bump(&shared.counters.submitted);
                Counters::bump(&shared.counters.shed_priority);
                return Err(ServeError::Overloaded {
                    capacity: shared.queue.capacity().saturating_sub(headroom),
                });
            }
        }

        let (tx, rx) = mpsc::channel();
        let job = Job {
            request,
            shape,
            enqueued_at: now,
            deadline_at,
            reply: ReplyGuard {
                tx: Some(tx),
                counters: Arc::clone(&shared.counters),
            },
        };
        match shared.queue.try_push(job) {
            Ok(()) => {
                Counters::bump(&shared.counters.submitted);
                Ok(ResponseHandle { rx })
            }
            Err((mut job, PushError::Full)) => {
                job.reply.disarm();
                Counters::bump(&shared.counters.submitted);
                Counters::bump(&shared.counters.shed);
                Err(ServeError::Overloaded {
                    capacity: shared.queue.capacity(),
                })
            }
            Err((mut job, PushError::Closed)) => {
                // Not counted as submitted: shutdown refusals are outside
                // the reconciliation ledger.
                job.reply.disarm();
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Submit-and-wait convenience.
    pub fn query(&self, request: Request) -> Result<ServeResponse, ServeError> {
        self.submit(request)?.wait()
    }

    /// Publishes `engine` as the next snapshot version; in-flight
    /// requests finish on the snapshot they pinned. Returns the new
    /// snapshot.
    pub fn publish(&self, engine: Discovery) -> Arc<Snapshot> {
        let version = self.shared.next_version.fetch_add(1, Ordering::Relaxed);
        let snap = Arc::new(Snapshot::new(version, engine));
        self.shared.cell.swap(Arc::clone(&snap));
        Counters::bump(&self.shared.counters.swaps);
        snap
    }

    /// Fault-contained publication: `build` (typically a strict
    /// `pll_load_only` snapshot load) runs under `catch_unwind` with the
    /// `serve.snapshot_load` faultpoint planted in front. Any failure —
    /// returned error or panic — increments `swap_failures` and leaves
    /// the current snapshot serving untouched.
    pub fn try_publish_with<F, E>(&self, build: F) -> Result<Arc<Snapshot>, ServeError>
    where
        F: FnOnce() -> Result<Discovery, E>,
        E: std::fmt::Display,
    {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            faultpoint::hit_io("serve.snapshot_load")
                .map_err(|e| e.to_string())
                .and_then(|()| build().map_err(|e| e.to_string()))
        }));
        match outcome {
            Ok(Ok(engine)) => Ok(self.publish(engine)),
            Ok(Err(msg)) => {
                Counters::bump(&self.shared.counters.swap_failures);
                Err(ServeError::QueryPanicked(format!(
                    "snapshot load failed: {msg}"
                )))
            }
            Err(payload) => {
                Counters::bump(&self.shared.counters.swap_failures);
                Err(ServeError::QueryPanicked(format!(
                    "snapshot load panicked: {}",
                    panic_message(&payload)
                )))
            }
        }
    }

    /// The version currently serving.
    pub fn current_version(&self) -> u64 {
        self.shared.cell.load().version()
    }

    /// Pins and returns the currently serving snapshot (for direct
    /// engine access, e.g. bit-identity checks in tests).
    pub fn current_snapshot(&self) -> Arc<Snapshot> {
        self.shared.cell.load()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.counters.snapshot()
    }

    /// The brownout tier currently in force.
    pub fn brownout_tier(&self) -> BrownoutTier {
        self.shared.brownout.tier()
    }

    /// The live counters, for sibling layers (the durable publish path
    /// records incremental-vs-rebuild outcomes here).
    pub(crate) fn counters(&self) -> &Counters {
        &self.shared.counters
    }

    /// Current submission-queue depth (diagnostic).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Stops accepting work, drains the queue, and joins every thread.
    /// Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.queue.close();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn spawn_worker(index: usize, shared: Arc<Shared>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("atd-serve-worker-{index}"))
        .spawn(move || worker_loop(&shared))
        .expect("spawn worker thread")
}

/// Feeds one finished request's end-to-end latency to the brownout state
/// machine and counts any tier transition it causes.
fn observe_brownout(shared: &Shared, total_latency: Duration) {
    match shared.brownout.observe(total_latency) {
        Some(BrownoutTransition::Entered(_)) => {
            Counters::bump(&shared.counters.brownout_entries);
        }
        Some(BrownoutTransition::Exited(_)) => {
            Counters::bump(&shared.counters.brownout_exits);
        }
        None => {}
    }
}

fn worker_loop(shared: &Shared) {
    // Per-worker scratch, reused across requests and revalidated against
    // each pinned snapshot (scatter sizes can change across swaps).
    let mut scratch = QueryScratch::new();
    while let Some(job) = shared.queue.pop() {
        // The `serve.worker` faultpoint sits OUTSIDE catch_unwind: an
        // armed panic here kills the worker thread itself, exercising
        // supervisor respawn. The job is already dequeued; its ReplyGuard
        // drops unsent with the thread → `responses_lost` is bumped and
        // the caller sees ResponseLost.
        faultpoint::hit("serve.worker");

        let started = Instant::now();
        let deadline_at = job.deadline_at;

        // Fast-shed: a request whose deadline passed while queued is
        // answered without touching the engine. Counted as shed_expired,
        // distinct from mid-search deadline_exceeded, so the two shed
        // paths can't double-account.
        if deadline_at.is_some_and(|d| Instant::now() >= d) {
            Counters::bump(&shared.counters.shed_expired);
            let queued_for = job.enqueued_at.elapsed();
            job.reply.send(Err(ServeError::DeadlineExceeded));
            observe_brownout(shared, queued_for);
            continue;
        }

        // Pin the snapshot for the whole request: concurrent swaps
        // cannot pull the engine out from under the query.
        let snap = shared.cell.load();
        let cancel = match deadline_at {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::never(),
        };

        // Brownout: force the anytime path with a reduced root budget so
        // every answer stays bounded even if its deadline is generous.
        let tier = shared.brownout.tier();
        let anytime = job.request.anytime || tier >= BrownoutTier::Brownout1;
        let root_budget = shared
            .brownout
            .root_budget(snap.engine().graph().num_nodes());

        let result = catch_unwind(AssertUnwindSafe(|| {
            faultpoint::hit("serve.request");
            if anytime {
                snap.engine()
                    .top_k_anytime(
                        &job.request.project,
                        job.request.strategy,
                        job.request.k,
                        Some(&mut scratch),
                        &cancel,
                        root_budget,
                    )
                    .map(|partial| {
                        let degraded = (!partial.exhausted).then_some(PartialBound {
                            roots_scanned: partial.roots_scanned,
                            total_roots: partial.total_roots,
                        });
                        (partial.teams, degraded)
                    })
            } else {
                snap.engine()
                    .top_k_with(
                        &job.request.project,
                        job.request.strategy,
                        job.request.k,
                        Some(&mut scratch),
                        &cancel,
                    )
                    .map(|teams| (teams, None))
            }
        }));

        let answer = match result {
            Ok(engine_result) => {
                // Every completed engine call — answer, deadline, or
                // query error — occupied this worker for exactly this
                // long; all of them train the admission model.
                shared.admission.record(job.shape, started.elapsed());
                match engine_result {
                    Ok((teams, degraded)) => {
                        Counters::bump(&shared.counters.served);
                        if degraded.is_some() {
                            Counters::bump(&shared.counters.degraded_served);
                        }
                        Ok(ServeResponse {
                            teams,
                            degraded,
                            snapshot_version: snap.version(),
                            latency: started.elapsed(),
                        })
                    }
                    Err(e) => {
                        let e = ServeError::from(e);
                        Counters::bump(match &e {
                            ServeError::DeadlineExceeded => &shared.counters.deadline_exceeded,
                            _ => &shared.counters.query_errors,
                        });
                        Err(e)
                    }
                }
            }
            Err(payload) => {
                // The panic may have unwound mid-scatter-load: the
                // scratch could hold a half-written plane, so drop it
                // wholesale rather than risk a poisoned distance.
                scratch = QueryScratch::new();
                Counters::bump(&shared.counters.panics_recovered);
                Err(ServeError::QueryPanicked(panic_message(&payload)))
            }
        };
        // Reply first, then feed the brownout window: the serve.brownout
        // faultpoint panics inside observe(), and a killed worker must
        // not take an already-computed answer down with it.
        let total_latency = job.enqueued_at.elapsed();
        job.reply.send(answer);
        observe_brownout(shared, total_latency);
    }
}
