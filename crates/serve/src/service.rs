//! The worker pool, request lifecycle, and snapshot publication.
//!
//! ```text
//!  clients ──submit()──▶ BoundedQueue ──pop()──▶ worker 1..N ──reply──▶ client
//!                          │ full?                 │ pins Arc<Snapshot>
//!                          ▼                       │ CancelToken(deadline)
//!                      Overloaded                  │ catch_unwind
//!                                                  ▼
//!                                            SnapshotCell ◀─publish()─ swap thread
//! ```
//!
//! Design rules, each backed by a test:
//!
//! * **One immutable snapshot, many readers.** Workers clone the current
//!   `Arc<Snapshot>` per request; swaps never stall or corrupt a running
//!   query (pinning).
//! * **Failure is an answer, not an outcome.** Every request ends in a
//!   `Result` — panics become [`ServeError::QueryPanicked`], deadlines
//!   become [`ServeError::DeadlineExceeded`], overload becomes
//!   [`ServeError::Overloaded`]. The process never dies.
//! * **Workers are cattle.** A worker thread that dies anyway (a panic
//!   outside the catch, e.g. the `serve.worker` faultpoint) is respawned
//!   by the supervisor; its queue is shared, so no request is stranded.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use atd_core::{CancelToken, Discovery, Project, QueryScratch, ScoredTeam, Strategy};

use crate::error::ServeError;
use crate::faultpoint;
use crate::queue::{BoundedQueue, PushError};
use crate::snapshot::{Snapshot, SnapshotCell};
use crate::stats::{Counters, ServeStats};

/// Service sizing and defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads answering queries.
    pub workers: usize,
    /// Bounded submission queue capacity; a full queue sheds with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied to requests that don't set their own.
    pub default_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline: None,
        }
    }
}

/// One team-discovery request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The skills to cover.
    pub project: Project,
    /// Ranking strategy (CC / CA-CC / SA-CA-CC).
    pub strategy: Strategy,
    /// How many teams to return.
    pub k: usize,
    /// Per-request deadline override; `None` uses the service default.
    pub deadline: Option<Duration>,
}

impl Request {
    /// A request with the service's default deadline.
    pub fn new(project: Project, strategy: Strategy, k: usize) -> Request {
        Request {
            project,
            strategy,
            k,
            deadline: None,
        }
    }
}

/// A successful answer.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The ranked teams (bit-identical to a direct
    /// [`Discovery::top_k`] on the same snapshot).
    pub teams: Vec<ScoredTeam>,
    /// Version of the snapshot that answered — clients observing a swap
    /// mid-stream can tell old answers from new.
    pub snapshot_version: u64,
    /// Wall-clock time from dequeue to answer.
    pub latency: Duration,
}

/// A pending response (one-shot receive).
#[derive(Debug)]
pub struct ResponseHandle {
    rx: mpsc::Receiver<Result<ServeResponse, ServeError>>,
}

impl ResponseHandle {
    /// Blocks until the worker answers. A worker that died before
    /// replying (and was respawned) surfaces as
    /// [`ServeError::ResponseLost`].
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ResponseLost))
    }

    /// Non-blocking poll; `None` while the query is still running.
    pub fn try_wait(&self) -> Option<Result<ServeResponse, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ResponseLost)),
        }
    }
}

struct Job {
    request: Request,
    enqueued_at: Instant,
    deadline_at: Option<Instant>,
    reply: mpsc::Sender<Result<ServeResponse, ServeError>>,
}

struct Shared {
    queue: BoundedQueue<Job>,
    cell: SnapshotCell,
    counters: Counters,
    shutting_down: AtomicBool,
    next_version: AtomicU64,
}

/// The fault-tolerant concurrent query service. See the crate README for
/// the snapshot lifecycle and failure-mode table.
pub struct QueryService {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("stats", &self.stats())
            .field("snapshot_version", &self.current_version())
            .finish()
    }
}

impl QueryService {
    /// Starts the pool with `engine` as snapshot version 1.
    pub fn start(engine: Discovery, config: ServeConfig) -> QueryService {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            cell: SnapshotCell::new(Arc::new(Snapshot::new(1, engine))),
            counters: Counters::default(),
            shutting_down: AtomicBool::new(false),
            next_version: AtomicU64::new(2),
        });
        let default_deadline = config.default_deadline;

        // The supervisor owns the worker handles: it spawns the initial
        // pool, then respawns any worker whose thread has finished while
        // the service is still up (the only way a worker exits early is
        // a panic outside catch_unwind).
        let sup_shared = Arc::clone(&shared);
        let supervisor = std::thread::Builder::new()
            .name("atd-serve-supervisor".into())
            .spawn(move || {
                let mut pool: Vec<JoinHandle<()>> = (0..workers)
                    .map(|i| spawn_worker(i, Arc::clone(&sup_shared), default_deadline))
                    .collect();
                while !sup_shared.shutting_down.load(Ordering::Acquire) {
                    for (i, slot) in pool.iter_mut().enumerate() {
                        if slot.is_finished() {
                            let dead = std::mem::replace(
                                slot,
                                spawn_worker(i, Arc::clone(&sup_shared), default_deadline),
                            );
                            let _ = dead.join(); // collect the panic payload
                            Counters::bump(&sup_shared.counters.workers_respawned);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                for h in pool {
                    let _ = h.join();
                }
            })
            .expect("spawn supervisor thread");

        QueryService {
            shared,
            supervisor: Some(supervisor),
        }
    }

    /// Submits a request. Returns immediately: `Ok` with a handle to wait
    /// on, or [`ServeError::Overloaded`] / [`ServeError::ShuttingDown`]
    /// if the request was refused at the door.
    pub fn submit(&self, request: Request) -> Result<ResponseHandle, ServeError> {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let deadline_at = request.deadline.map(|d| now + d);
        let job = Job {
            request,
            enqueued_at: now,
            deadline_at,
            reply: tx,
        };
        match self.shared.queue.try_push(job) {
            Ok(()) => Ok(ResponseHandle { rx }),
            Err((_, PushError::Full)) => {
                Counters::bump(&self.shared.counters.shed);
                Err(ServeError::Overloaded {
                    capacity: self.shared.queue.capacity(),
                })
            }
            Err((_, PushError::Closed)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Submit-and-wait convenience.
    pub fn query(&self, request: Request) -> Result<ServeResponse, ServeError> {
        self.submit(request)?.wait()
    }

    /// Publishes `engine` as the next snapshot version; in-flight
    /// requests finish on the snapshot they pinned. Returns the new
    /// snapshot.
    pub fn publish(&self, engine: Discovery) -> Arc<Snapshot> {
        let version = self.shared.next_version.fetch_add(1, Ordering::Relaxed);
        let snap = Arc::new(Snapshot::new(version, engine));
        self.shared.cell.swap(Arc::clone(&snap));
        Counters::bump(&self.shared.counters.swaps);
        snap
    }

    /// Fault-contained publication: `build` (typically a strict
    /// `pll_load_only` snapshot load) runs under `catch_unwind` with the
    /// `serve.snapshot_load` faultpoint planted in front. Any failure —
    /// returned error or panic — increments `swap_failures` and leaves
    /// the current snapshot serving untouched.
    pub fn try_publish_with<F, E>(&self, build: F) -> Result<Arc<Snapshot>, ServeError>
    where
        F: FnOnce() -> Result<Discovery, E>,
        E: std::fmt::Display,
    {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            faultpoint::hit_io("serve.snapshot_load")
                .map_err(|e| e.to_string())
                .and_then(|()| build().map_err(|e| e.to_string()))
        }));
        match outcome {
            Ok(Ok(engine)) => Ok(self.publish(engine)),
            Ok(Err(msg)) => {
                Counters::bump(&self.shared.counters.swap_failures);
                Err(ServeError::QueryPanicked(format!(
                    "snapshot load failed: {msg}"
                )))
            }
            Err(payload) => {
                Counters::bump(&self.shared.counters.swap_failures);
                Err(ServeError::QueryPanicked(format!(
                    "snapshot load panicked: {}",
                    panic_message(&payload)
                )))
            }
        }
    }

    /// The version currently serving.
    pub fn current_version(&self) -> u64 {
        self.shared.cell.load().version()
    }

    /// Pins and returns the currently serving snapshot (for direct
    /// engine access, e.g. bit-identity checks in tests).
    pub fn current_snapshot(&self) -> Arc<Snapshot> {
        self.shared.cell.load()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.counters.snapshot()
    }

    /// The live counters, for sibling layers (the durable publish path
    /// records incremental-vs-rebuild outcomes here).
    pub(crate) fn counters(&self) -> &Counters {
        &self.shared.counters
    }

    /// Current submission-queue depth (diagnostic).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Stops accepting work, drains the queue, and joins every thread.
    /// Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.queue.close();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn spawn_worker(
    index: usize,
    shared: Arc<Shared>,
    default_deadline: Option<Duration>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("atd-serve-worker-{index}"))
        .spawn(move || worker_loop(&shared, default_deadline))
        .expect("spawn worker thread")
}

fn worker_loop(shared: &Shared, default_deadline: Option<Duration>) {
    // Per-worker scratch, reused across requests and revalidated against
    // each pinned snapshot (scatter sizes can change across swaps).
    let mut scratch = QueryScratch::new();
    while let Some(job) = shared.queue.pop() {
        // The `serve.worker` faultpoint sits OUTSIDE catch_unwind: an
        // armed panic here kills the worker thread itself, exercising
        // supervisor respawn. The job is already dequeued and its reply
        // sender drops with the thread → the caller sees ResponseLost.
        faultpoint::hit("serve.worker");

        let started = Instant::now();
        let deadline_at = job
            .deadline_at
            .or_else(|| default_deadline.map(|d| job.enqueued_at + d));

        // Fast-shed: a request whose deadline passed while queued is
        // answered without touching the engine.
        if deadline_at.is_some_and(|d| Instant::now() >= d) {
            Counters::bump(&shared.counters.deadline_exceeded);
            let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
            continue;
        }

        // Pin the snapshot for the whole request: concurrent swaps
        // cannot pull the engine out from under the query.
        let snap = shared.cell.load();
        let cancel = match deadline_at {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::never(),
        };

        let result = catch_unwind(AssertUnwindSafe(|| {
            faultpoint::hit("serve.request");
            snap.engine().top_k_with(
                &job.request.project,
                job.request.strategy,
                job.request.k,
                Some(&mut scratch),
                &cancel,
            )
        }));

        let answer = match result {
            Ok(Ok(teams)) => {
                Counters::bump(&shared.counters.served);
                Ok(ServeResponse {
                    teams,
                    snapshot_version: snap.version(),
                    latency: started.elapsed(),
                })
            }
            Ok(Err(e)) => {
                let e = ServeError::from(e);
                Counters::bump(match &e {
                    ServeError::DeadlineExceeded => &shared.counters.deadline_exceeded,
                    _ => &shared.counters.query_errors,
                });
                Err(e)
            }
            Err(payload) => {
                // The panic may have unwound mid-scatter-load: the
                // scratch could hold a half-written plane, so drop it
                // wholesale rather than risk a poisoned distance.
                scratch = QueryScratch::new();
                Counters::bump(&shared.counters.panics_recovered);
                Err(ServeError::QueryPanicked(panic_message(&payload)))
            }
        };
        let _ = job.reply.send(answer);
    }
}
