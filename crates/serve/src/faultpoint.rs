//! Deterministic fault injection.
//!
//! The service's fault-tolerance claims (panic isolation, worker respawn,
//! swap-failure containment, deadline shedding) are only testable if the
//! faults themselves are *reproducible*. This module plants named
//! **faultpoints** on the service's critical paths; with the
//! `fault-injection` cargo feature a test arms a point with a
//! [`FaultPlan`] — panic, fixed delay, or I/O error — and the next N
//! passages through it fire deterministically. Without the feature every
//! hook is an empty `#[inline]` function and the registry does not exist,
//! so production builds pay nothing.
//!
//! Faultpoints in this crate:
//!
//! | name                  | site                                   | armed effect |
//! |-----------------------|----------------------------------------|--------------|
//! | `serve.request`       | inside the worker's `catch_unwind`     | panic → `QueryPanicked`; delay → slow query |
//! | `serve.worker`        | worker loop, *outside* `catch_unwind`  | panic → worker dies → supervisor respawn |
//! | `serve.snapshot_load` | snapshot publication closure           | I/O error / panic → swap failure, old snapshot keeps serving |
//! | `serve.wal_append`    | durable publish path, before the journal append | I/O error → mutation rejected un-acknowledged; panic → killed publisher |
//! | `serve.incremental_patch` | durable publish path, after the ack, before the incremental label patch | panic → killed publisher mid-patch; recovery must fall back to a full rebuild bit-identically |
//! | `serve.admission`     | entry of `QueryService::submit`, before any shed decision | panic → submitting client dies (service unharmed); delay → slow admission |
//! | `serve.brownout`      | inside every brownout latency observation (worker, after the reply is sent) | panic → worker dies on the stats path → supervisor respawn, answer already delivered; delay → slow bookkeeping, queries unaffected |
//!
//! The durable publish path additionally passes through `atd-store`'s
//! own points (`store.wal_append`, `store.checkpoint`,
//! `store.manifest_publish`); this crate's `fault-injection` feature
//! forwards to the store's so one feature flag arms the whole chain.

use std::time::Duration;

/// What an armed faultpoint does when hit.
#[derive(Debug, Clone)]
pub enum Fault {
    /// `panic!` with this message.
    Panic(&'static str),
    /// Sleep for this long, then continue normally (slow query / slow load).
    Delay(Duration),
    /// Return an `io::Error` from [`hit_io`] (non-I/O sites treat it as a
    /// panic with the error text).
    IoError(&'static str),
}

/// An armed fault: which [`Fault`], after how many clean passages, how
/// many times.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The effect to fire.
    pub fault: Fault,
    /// Passages to let through cleanly before firing.
    pub skip: u32,
    /// How many passages fire (after `skip`); the plan disarms itself
    /// when exhausted.
    pub times: u32,
}

impl FaultPlan {
    /// Fire on the very next passage, `times` times.
    pub fn next(fault: Fault, times: u32) -> FaultPlan {
        FaultPlan {
            fault,
            skip: 0,
            times,
        }
    }

    /// Fire once after `skip` clean passages.
    pub fn after(fault: Fault, skip: u32) -> FaultPlan {
        FaultPlan {
            fault,
            skip,
            times: 1,
        }
    }
}

#[cfg(feature = "fault-injection")]
mod armed {
    use super::{Fault, FaultPlan};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    fn registry() -> &'static Mutex<HashMap<&'static str, FaultPlan>> {
        static REGISTRY: OnceLock<Mutex<HashMap<&'static str, FaultPlan>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock() -> std::sync::MutexGuard<'static, HashMap<&'static str, FaultPlan>> {
        // Faultpoints fire panics by design; recover the registry lock.
        registry().lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Arms `point` with `plan`, replacing any previous plan.
    pub fn arm(point: &'static str, plan: FaultPlan) {
        lock().insert(point, plan);
    }

    /// Disarms `point`; passages become clean again.
    pub fn disarm(point: &'static str) {
        lock().remove(point);
    }

    /// Disarms every faultpoint (test teardown).
    pub fn reset() {
        lock().clear();
    }

    /// Decides what this passage through `point` does. Exhausted plans
    /// self-disarm.
    pub(super) fn consume(point: &'static str) -> Option<Fault> {
        let mut reg = lock();
        let plan = reg.get_mut(point)?;
        if plan.skip > 0 {
            plan.skip -= 1;
            return None;
        }
        if plan.times == 0 {
            reg.remove(point);
            return None;
        }
        plan.times -= 1;
        let fault = plan.fault.clone();
        if plan.times == 0 {
            reg.remove(point);
        }
        Some(fault)
    }
}

#[cfg(feature = "fault-injection")]
pub use armed::{arm, disarm, reset};

/// A passage through faultpoint `point` on a non-I/O path. Armed panics
/// fire here; delays sleep; `IoError` plans also panic (the site has no
/// error channel). Compiles to nothing without `fault-injection`.
#[inline]
pub fn hit(point: &'static str) {
    #[cfg(feature = "fault-injection")]
    {
        match armed::consume(point) {
            Some(Fault::Panic(msg)) => panic!("injected fault at {point}: {msg}"),
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::IoError(msg)) => panic!("injected io fault at {point}: {msg}"),
            None => {}
        }
    }
    #[cfg(not(feature = "fault-injection"))]
    let _ = point;
}

/// A passage through faultpoint `point` on an I/O path: `IoError` plans
/// return `Err`, others behave as in [`hit`]. Compiles to `Ok(())`
/// without `fault-injection`.
#[inline]
pub fn hit_io(point: &'static str) -> std::io::Result<()> {
    #[cfg(feature = "fault-injection")]
    {
        match armed::consume(point) {
            Some(Fault::Panic(msg)) => panic!("injected fault at {point}: {msg}"),
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::IoError(msg)) => {
                return Err(std::io::Error::other(format!(
                    "injected io fault at {point}: {msg}"
                )))
            }
            None => {}
        }
    }
    let _ = point;
    Ok(())
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    // One test exercises all plan mechanics: the registry is process-global,
    // so independent #[test]s would race each other's arm/reset.
    #[test]
    fn plans_skip_fire_and_self_disarm() {
        reset();
        // skip=2, times=1: two clean passages, one error, then clean.
        arm("t.io", FaultPlan::after(Fault::IoError("disk gone"), 2));
        assert!(hit_io("t.io").is_ok());
        assert!(hit_io("t.io").is_ok());
        let err = hit_io("t.io").unwrap_err();
        assert!(err.to_string().contains("disk gone"));
        assert!(hit_io("t.io").is_ok(), "plan self-disarmed");

        // Panic plan fires with the point name in the payload.
        arm("t.panic", FaultPlan::next(Fault::Panic("boom"), 1));
        let caught = std::panic::catch_unwind(|| hit("t.panic")).unwrap_err();
        let msg = caught.downcast_ref::<String>().unwrap();
        assert!(msg.contains("t.panic") && msg.contains("boom"));
        hit("t.panic"); // disarmed again

        // Delay plan sleeps and continues.
        arm(
            "t.delay",
            FaultPlan::next(Fault::Delay(Duration::from_millis(30)), 1),
        );
        let t0 = std::time::Instant::now();
        hit("t.delay");
        assert!(t0.elapsed() >= Duration::from_millis(25));

        // Unarmed points are free; disarm is idempotent.
        hit("t.never");
        disarm("t.never");
        reset();
    }
}
