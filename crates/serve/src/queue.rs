//! Bounded multi-producer multi-consumer submission queue.
//!
//! Built on `std::sync::Mutex` + `Condvar` (the build environment has no
//! crossbeam): producers *never block* — a full queue is an immediate
//! [`PushError::Full`], which the service surfaces as
//! [`ServeError::Overloaded`](crate::ServeError::Overloaded) — while
//! consumers (workers) block on the condvar until a job or shutdown
//! arrives. Bounding the queue is what keeps memory flat under overload:
//! work the service cannot keep up with is refused at the door, not
//! buffered.
//!
//! Lock poisoning (a producer/consumer panicking while holding the lock)
//! is deliberately *recovered from*: the queue holds plain data, every
//! critical section leaves it consistent, and the service's whole point
//! is surviving panics.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a `try_push` was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue is at capacity; shed the work.
    Full,
    /// The queue is closed; the service is shutting down.
    Closed,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: non-blocking push, blocking pop.
#[derive(Debug)]
pub(crate) struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // A poisoned lock means some thread panicked mid-push/pop; the
        // VecDeque itself is still structurally sound, so serving must
        // continue.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues `item` unless the queue is full or closed. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut s = self.lock();
        if s.closed {
            return Err((item, PushError::Closed));
        }
        if s.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        s.items.push_back(item);
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking until one arrives. Returns `None`
    /// once the queue is closed *and* drained — the worker's signal to
    /// exit its loop.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// every blocked worker wakes up.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Current queue depth (diagnostic).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (item, why) = q.try_push(3).unwrap_err();
        assert_eq!(item, 3);
        assert_eq!(why, PushError::Full);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_wakes_poppers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(10).unwrap();
        q.close();
        assert_eq!(q.try_push(11).unwrap_err().1, PushError::Closed);
        assert_eq!(q.pop(), Some(10), "pending items drain after close");
        assert_eq!(q.pop(), None, "then poppers see shutdown");
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        assert_eq!(h.join().unwrap(), Some(7));
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let q = Arc::new(BoundedQueue::new(64));
        let mut producers = Vec::new();
        for p in 0..4 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let v = p * 1000 + i;
                    loop {
                        match q.try_push(v) {
                            Ok(()) => break,
                            Err((_, PushError::Full)) => std::thread::yield_now(),
                            Err((_, PushError::Closed)) => panic!("closed early"),
                        }
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for h in producers {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<i32> = (0..4)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
