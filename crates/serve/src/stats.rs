//! Lock-free service counters.
//!
//! Workers bump relaxed [`AtomicU64`]s on the hot path; [`ServeStats`] is
//! a point-in-time copy for callers (tests assert on it, the bench and
//! example print it). Counters only ever increase.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared mutable counters, owned by the service and bumped by workers.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub served: AtomicU64,
    pub shed: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub panics_recovered: AtomicU64,
    pub workers_respawned: AtomicU64,
    pub swaps: AtomicU64,
    pub swap_failures: AtomicU64,
    pub query_errors: AtomicU64,
    pub incremental_applied: AtomicU64,
    pub full_rebuild_fallbacks: AtomicU64,
}

impl Counters {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ServeStats {
        ServeStats {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            panics_recovered: self.panics_recovered.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            swap_failures: self.swap_failures.load(Ordering::Relaxed),
            query_errors: self.query_errors.load(Ordering::Relaxed),
            incremental_applied: self.incremental_applied.load(Ordering::Relaxed),
            full_rebuild_fallbacks: self.full_rebuild_fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered with a team list.
    pub served: u64,
    /// Requests shed with [`ServeError::Overloaded`](crate::ServeError::Overloaded).
    pub shed: u64,
    /// Requests that hit their deadline (pre-queue fast-shed or mid-search).
    pub deadline_exceeded: u64,
    /// Query panics caught and converted to
    /// [`ServeError::QueryPanicked`](crate::ServeError::QueryPanicked).
    pub panics_recovered: u64,
    /// Worker threads respawned by the supervisor after dying.
    pub workers_respawned: u64,
    /// Successful snapshot swaps.
    pub swaps: u64,
    /// Failed snapshot swaps (load error, publish panic); the previous
    /// snapshot kept serving.
    pub swap_failures: u64,
    /// Requests answered with a (non-deadline) query error.
    pub query_errors: u64,
    /// Published engines derived by incremental label maintenance
    /// (`Discovery::try_incremental`) instead of a full index rebuild —
    /// publish-path and recovery-replay successes both count.
    pub incremental_applied: u64,
    /// Label-touching publishes (or recoveries with a WAL tail) that
    /// fell back to a full index rebuild — structural delta, budget
    /// blown, missing checkpoint index, or any incremental refusal.
    pub full_rebuild_fallbacks: u64,
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served={} shed={} deadline={} panics={} respawned={} swaps={} swap_failures={} query_errors={} incremental={} full_rebuilds={}",
            self.served,
            self.shed,
            self.deadline_exceeded,
            self.panics_recovered,
            self.workers_respawned,
            self.swaps,
            self.swap_failures,
            self.query_errors,
            self.incremental_applied,
            self.full_rebuild_fallbacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let c = Counters::default();
        Counters::bump(&c.served);
        Counters::bump(&c.served);
        Counters::bump(&c.swap_failures);
        let s = c.snapshot();
        assert_eq!(s.served, 2);
        assert_eq!(s.swap_failures, 1);
        assert_eq!(s.shed, 0);
        let line = s.to_string();
        assert!(line.contains("served=2"));
        assert!(line.contains("swap_failures=1"));
    }
}
