//! Lock-free service counters.
//!
//! Workers bump relaxed [`AtomicU64`]s on the hot path; [`ServeStats`] is
//! a point-in-time copy for callers (tests assert on it, the bench and
//! example print it). Counters only ever increase.
//!
//! Every accepted-or-shed submission is counted exactly once, so at
//! quiescence the ledger reconciles:
//!
//! ```text
//! submitted == served + shed_at_admission() + shed_expired + errors()
//! ```
//!
//! where [`shed_at_admission`](ServeStats::shed_at_admission) groups the
//! three door-sheds (queue-full, predicted-infeasible, priority/brownout)
//! and [`errors`](ServeStats::errors) groups every terminal failure
//! (mid-search deadline, recovered panic, query error, lost response).
//! [`reconciles`](ServeStats::reconciles) checks the invariant; the
//! stress and overload tests assert it after every scenario.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared mutable counters, owned by the service and bumped by workers.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub served: AtomicU64,
    pub degraded_served: AtomicU64,
    pub shed: AtomicU64,
    pub shed_infeasible: AtomicU64,
    pub shed_priority: AtomicU64,
    pub shed_expired: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub panics_recovered: AtomicU64,
    pub responses_lost: AtomicU64,
    pub workers_respawned: AtomicU64,
    pub swaps: AtomicU64,
    pub swap_failures: AtomicU64,
    pub query_errors: AtomicU64,
    pub incremental_applied: AtomicU64,
    pub full_rebuild_fallbacks: AtomicU64,
    pub brownout_entries: AtomicU64,
    pub brownout_exits: AtomicU64,
}

impl Counters {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            degraded_served: self.degraded_served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            shed_infeasible: self.shed_infeasible.load(Ordering::Relaxed),
            shed_priority: self.shed_priority.load(Ordering::Relaxed),
            shed_expired: self.shed_expired.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            panics_recovered: self.panics_recovered.load(Ordering::Relaxed),
            responses_lost: self.responses_lost.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            swap_failures: self.swap_failures.load(Ordering::Relaxed),
            query_errors: self.query_errors.load(Ordering::Relaxed),
            incremental_applied: self.incremental_applied.load(Ordering::Relaxed),
            full_rebuild_fallbacks: self.full_rebuild_fallbacks.load(Ordering::Relaxed),
            brownout_entries: self.brownout_entries.load(Ordering::Relaxed),
            brownout_exits: self.brownout_exits.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests that reached admission (accepted or shed there); the
    /// left-hand side of the reconciliation invariant. Submissions
    /// refused because the service was shutting down are *not* counted.
    pub submitted: u64,
    /// Requests answered with a team list (full-fidelity or degraded).
    pub served: u64,
    /// Subset of [`served`](ServeStats::served) answered by a truncated
    /// anytime scan and flagged with a
    /// [`PartialBound`](crate::service::PartialBound).
    pub degraded_served: u64,
    /// Requests shed at admission because the queue was full
    /// ([`ServeError::Overloaded`](crate::ServeError::Overloaded)).
    pub shed: u64,
    /// Requests shed at admission because the EWMA model predicted the
    /// deadline could not be met
    /// ([`ServeError::DeadlineInfeasible`](crate::ServeError::DeadlineInfeasible)).
    pub shed_infeasible: u64,
    /// Low-priority requests shed by the priority headroom reservation
    /// or the Brownout2 tier
    /// ([`ServeError::Overloaded`](crate::ServeError::Overloaded) /
    /// [`ServeError::BrownoutShed`](crate::ServeError::BrownoutShed)).
    pub shed_priority: u64,
    /// Requests fast-shed by a worker after dequeue because their
    /// deadline had already passed while queued — distinct from
    /// [`deadline_exceeded`](ServeStats::deadline_exceeded), which counts
    /// searches abandoned *mid-query*. Both answer
    /// [`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded).
    pub shed_expired: u64,
    /// Fail-fast searches that hit their deadline mid-query.
    pub deadline_exceeded: u64,
    /// Query panics caught and converted to
    /// [`ServeError::QueryPanicked`](crate::ServeError::QueryPanicked).
    pub panics_recovered: u64,
    /// Accepted requests whose reply was never delivered — the worker
    /// died mid-job and the supervisor respawned it
    /// ([`ServeError::ResponseLost`](crate::ServeError::ResponseLost)).
    pub responses_lost: u64,
    /// Worker threads respawned by the supervisor after dying.
    pub workers_respawned: u64,
    /// Successful snapshot swaps.
    pub swaps: u64,
    /// Failed snapshot swaps (load error, publish panic); the previous
    /// snapshot kept serving.
    pub swap_failures: u64,
    /// Requests answered with a (non-deadline) query error.
    pub query_errors: u64,
    /// Published engines derived by incremental label maintenance
    /// (`Discovery::try_incremental`) instead of a full index rebuild —
    /// publish-path and recovery-replay successes both count.
    pub incremental_applied: u64,
    /// Label-touching publishes (or recoveries with a WAL tail) that
    /// fell back to a full index rebuild — structural delta, budget
    /// blown, missing checkpoint index, or any incremental refusal.
    pub full_rebuild_fallbacks: u64,
    /// Brownout tier step-ups (Normal→Brownout1, Brownout1→Brownout2).
    pub brownout_entries: u64,
    /// Brownout tier step-downs (Brownout2→Brownout1, Brownout1→Normal).
    pub brownout_exits: u64,
}

impl ServeStats {
    /// Requests refused at the door, across all three admission sheds.
    pub fn shed_at_admission(&self) -> u64 {
        self.shed + self.shed_infeasible + self.shed_priority
    }

    /// Accepted requests that ended in a terminal failure instead of a
    /// team list.
    pub fn errors(&self) -> u64 {
        self.deadline_exceeded + self.panics_recovered + self.query_errors + self.responses_lost
    }

    /// Whether the submission ledger balances. Only meaningful at
    /// quiescence (no request in flight): every submission must have
    /// been served, shed at admission, fast-shed after expiry, or ended
    /// in a counted error — nothing double-counted, nothing dropped.
    pub fn reconciles(&self) -> bool {
        self.served + self.shed_at_admission() + self.shed_expired + self.errors() == self.submitted
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted={} served={} degraded={} shed={} shed_infeasible={} shed_priority={} shed_expired={} deadline={} panics={} lost={} respawned={} swaps={} swap_failures={} query_errors={} incremental={} full_rebuilds={} brownout_entries={} brownout_exits={}",
            self.submitted,
            self.served,
            self.degraded_served,
            self.shed,
            self.shed_infeasible,
            self.shed_priority,
            self.shed_expired,
            self.deadline_exceeded,
            self.panics_recovered,
            self.responses_lost,
            self.workers_respawned,
            self.swaps,
            self.swap_failures,
            self.query_errors,
            self.incremental_applied,
            self.full_rebuild_fallbacks,
            self.brownout_entries,
            self.brownout_exits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let c = Counters::default();
        Counters::bump(&c.served);
        Counters::bump(&c.served);
        Counters::bump(&c.swap_failures);
        let s = c.snapshot();
        assert_eq!(s.served, 2);
        assert_eq!(s.swap_failures, 1);
        assert_eq!(s.shed, 0);
        let line = s.to_string();
        assert!(line.contains("served=2"));
        assert!(line.contains("swap_failures=1"));
    }

    #[test]
    fn reconciliation_groups_every_outcome_once() {
        let s = ServeStats {
            submitted: 10,
            served: 3,
            degraded_served: 1, // subset of served, not a ledger term
            shed: 2,
            shed_infeasible: 1,
            shed_priority: 1,
            shed_expired: 1,
            deadline_exceeded: 1,
            responses_lost: 1,
            ..ServeStats::default()
        };
        assert_eq!(s.shed_at_admission(), 4);
        assert_eq!(s.errors(), 2);
        assert!(s.reconciles());
        let unbalanced = ServeStats { submitted: 11, ..s };
        assert!(!unbalanced.reconciles());
    }
}
