//! The durable publish path: mutations flow through the journal, and
//! the serving snapshot swaps only after the record is on disk.
//!
//! [`DurableService`] glues three pieces together:
//!
//! * an [`atd_store::Journal`] — the write-ahead log + generation store
//!   that makes every mutation crash-recoverable;
//! * a [`QueryService`] — the worker pool serving queries against the
//!   current immutable [`Snapshot`];
//! * a rebuild step that turns the journal's post-mutation graph into a
//!   fresh [`Discovery`] engine (padding the skill index for any authors
//!   the mutation added).
//!
//! The ordering contract of [`DurableService::publish_mutation`]:
//!
//! ```text
//!   validate + apply in memory        (a rejected delta writes nothing)
//!        │
//!   WAL append + fsync  ◄── the ACK point: the receipt returned to the
//!        │                  caller means "survives any crash from here"
//!   rebuild engine, swap snapshot     (queries now see the mutation)
//! ```
//!
//! A failure *before* the ack is a clean rejection — nothing durable,
//! nothing served. A failure *after* the ack (engine rebuild, snapshot
//! swap) is [`DurableError::SwapLagged`]: the mutation **is** durable
//! and recovery will serve it, but the live snapshot still answers from
//! the previous state until the next successful publish or a restart.
//! Acknowledged means recoverable, not necessarily visible-right-now —
//! the crash-consistency boundary and the freshness boundary are
//! deliberately distinct.
//!
//! After the ack, the post-mutation engine is derived **incrementally**
//! whenever the delta allows it: a [`DeltaClass::Metadata`] or
//! [`DeltaClass::EdgeRelax`] delta (no new nodes or edges, weights only
//! falling) with a current snapshot goes through
//! [`Discovery::try_incremental`], which patches only the affected label
//! planes and is bit-identical to the full rebuild. Anything else — a
//! structural delta, a stale snapshot after a previous `SwapLagged`, a
//! blown [`incremental_hub_budget`](atd_distance::BuildConfig) — falls
//! back to the full rebuild. [`ServeStats`](crate::ServeStats) counts
//! both paths (`incremental_applied` / `full_rebuild_fallbacks`).
//!
//! Restart ([`DurableService::open`]) recovers the newest valid
//! generation via [`Journal::open`], then builds the serving engine: a
//! clean checkpoint state (empty WAL tail) first tries a strict load of
//! the generation's persisted index file; a non-empty tail loads the
//! checkpoint index the same way and replays the WAL tail's deltas
//! incrementally on top of it (the journal has already verified every
//! record's sealed post-fingerprint; the engine re-checks the final
//! graph fingerprint). Any failure along that path — no persisted
//! index, an incremental refusal, a fingerprint mismatch — builds the
//! index in memory instead, leaving the generation's files untouched
//! (they are immutable once published).
//!
//! The `serve.wal_append` faultpoint guards the service-side entry to
//! the append, and `serve.incremental_patch` sits after the ack right
//! before the incremental patch (pairing with the store-side
//! `store.wal_append`, `store.checkpoint` and `store.manifest_publish`
//! points), so chaos tests can kill the publish path at every boundary
//! and assert that no acknowledged mutation is ever lost and the
//! service always restarts serving the exact acknowledged state.

use std::path::Path;
use std::sync::{Arc, Mutex};

use atd_core::{Discovery, DiscoveryError, DiscoveryOptions, SkillIndex};
use atd_distance::persist::graph_fingerprint;
use atd_graph::{DeltaClass, ExpertGraph, GraphDelta};
use atd_store::Journal;

use crate::faultpoint;
use crate::service::{QueryService, Request, ServeConfig, ServeResponse};
use crate::snapshot::Snapshot;
use crate::stats::Counters;
use crate::ServeError;

// Everything a caller needs to configure and observe the durable path,
// so depending on `atd-serve` alone suffices.
pub use atd_store::{AppendReceipt, JournalConfig, RecoveryReport, ReplayedTail, StoreError};

/// Configuration of a [`DurableService`]: journal durability, service
/// sizing, and the engine options used for every rebuild.
#[derive(Clone, Debug, Default)]
pub struct DurableConfig {
    /// Journal durability knobs (fsync policy, generation retention).
    pub journal: JournalConfig,
    /// Worker pool sizing for the query service.
    pub serve: ServeConfig,
    /// Engine options for every rebuild. `pll_index_path` and
    /// `pll_load_only` are managed internally (pointed at the
    /// generation's index file during recovery, cleared for
    /// post-mutation rebuilds) — values set here are ignored.
    pub discovery: DiscoveryOptions,
    /// Auto-checkpoint after this many WAL records (`0` = only on
    /// explicit [`DurableService::checkpoint`] calls). Auto-checkpoints
    /// are best-effort: a failure leaves the WAL tail longer and the
    /// next publish retries.
    pub checkpoint_every: u64,
}

/// Failure modes of the durable publish path. The load-bearing
/// distinction is whether the mutation was acknowledged: `Store` and
/// `Engine` mean *nothing durable happened*; `SwapLagged` means the
/// mutation **is** durable (the receipt proves it) and only the live
/// snapshot is stale.
#[derive(Debug)]
pub enum DurableError {
    /// The journal rejected or failed the operation before the ack —
    /// the mutation is not durable and recovery will not resurrect it.
    Store(StoreError),
    /// Engine construction failed during recovery — the store is valid
    /// but no servable snapshot could be built from it.
    Engine(DiscoveryError),
    /// The mutation was acknowledged (see the receipt) but the snapshot
    /// swap failed; queries keep answering from the previous state
    /// until the next successful publish or a restart.
    SwapLagged {
        /// Proof of durability: the acknowledged record.
        receipt: AppendReceipt,
        /// Why the rebuild/swap failed.
        reason: String,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Store(e) => write!(f, "journal error (not acknowledged): {e}"),
            DurableError::Engine(e) => write!(f, "engine build failed: {e}"),
            DurableError::SwapLagged { receipt, reason } => write!(
                f,
                "mutation durable (gen {} seq {}) but snapshot swap lagged: {reason}",
                receipt.generation, receipt.seq
            ),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Store(e) => Some(e),
            DurableError::Engine(e) => Some(e),
            DurableError::SwapLagged { .. } => None,
        }
    }
}

impl From<StoreError> for DurableError {
    fn from(e: StoreError) -> DurableError {
        DurableError::Store(e)
    }
}

/// A [`QueryService`] whose publish path runs through a durable
/// [`Journal`]. See the module docs for the ordering contract.
pub struct DurableService {
    service: QueryService,
    journal: Mutex<Journal>,
    /// The ingest-time skill index; padded per rebuild for any authors
    /// mutations added ([`SkillIndex::padded_to`]).
    skills: SkillIndex,
    discovery: DiscoveryOptions,
    checkpoint_every: u64,
}

impl std::fmt::Debug for DurableService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableService")
            .field("checkpoint_every", &self.checkpoint_every)
            .finish_non_exhaustive()
    }
}

impl DurableService {
    /// Opens (or initializes) the store at `dir`, recovers the newest
    /// valid generation, builds a serving engine from the recovered
    /// state, and starts the query service on it. `genesis` supplies
    /// the initial graph only for a brand-new directory; `skills` is
    /// the ingest-time skill index (new authors added by mutations hold
    /// no skills until a re-ingest).
    pub fn open(
        dir: &Path,
        skills: SkillIndex,
        config: DurableConfig,
        genesis: impl FnOnce() -> ExpertGraph,
    ) -> Result<(DurableService, RecoveryReport), DurableError> {
        let (mut journal, report) = Journal::open(dir, config.journal, genesis)?;
        let (engine, incremental_records, fell_back) =
            Self::recovery_engine(&mut journal, &skills, &config.discovery)
                .map_err(DurableError::Engine)?;
        let service = QueryService::start(engine, config.serve);
        for _ in 0..incremental_records {
            Counters::bump(&service.counters().incremental_applied);
        }
        if fell_back {
            Counters::bump(&service.counters().full_rebuild_fallbacks);
        }
        Ok((
            DurableService {
                service,
                journal: Mutex::new(journal),
                skills,
                discovery: config.discovery,
                checkpoint_every: config.checkpoint_every,
            },
            report,
        ))
    }

    /// Builds the engine for a freshly recovered journal. A clean
    /// checkpoint (empty WAL tail) first tries a strict load of the
    /// generation's persisted index. A non-empty tail strict-loads the
    /// index for the *checkpoint* graph and replays the tail's deltas
    /// incrementally on top ([`Discovery::try_incremental`] per record),
    /// then cross-checks the final graph fingerprint against the
    /// journal's. Any failure — file missing because the checkpoint
    /// skipped the index, stale, corrupt, an incremental refusal — falls
    /// back to an in-memory build. The generation's files are never
    /// written to: they are immutable once published, so the fallback
    /// build deliberately configures *no* index path.
    ///
    /// Returns `(engine, incrementally_replayed_records, fell_back)`;
    /// `fell_back` is only ever true for a non-empty tail (the clean
    /// checkpoint's load-or-build is cold start, not a fallback).
    fn recovery_engine(
        journal: &mut Journal,
        skills: &SkillIndex,
        options: &DiscoveryOptions,
    ) -> Result<(Discovery, u64, bool), DiscoveryError> {
        let graph = journal.graph().clone();
        let padded = skills.padded_to(graph.num_nodes());
        if journal.tail_records() == 0 {
            let mut opts = options.clone();
            opts.pll_index_path = Some(journal.index_path());
            opts.pll_load_only = true;
            match Discovery::with_options(graph.clone(), padded.clone(), opts) {
                Ok(engine) => return Ok((engine, 0, false)),
                Err(DiscoveryError::IndexLoad(_)) => {}
                Err(other) => return Err(other),
            }
            let mut opts = options.clone();
            opts.pll_index_path = None;
            opts.pll_load_only = false;
            return Ok((Discovery::with_options(graph, padded, opts)?, 0, false));
        }

        if let Some(engine) = Self::incremental_tail_replay(journal, skills, options) {
            let replayed = journal.tail_records();
            return Ok((engine, replayed, false));
        }
        let mut opts = options.clone();
        opts.pll_index_path = None;
        opts.pll_load_only = false;
        Ok((Discovery::with_options(graph, padded, opts)?, 0, true))
    }

    /// The incremental half of recovery: strict-load the checkpoint's
    /// persisted index, fold the replayed WAL tail through
    /// [`Discovery::try_incremental`], and verify the final fingerprint.
    /// `None` means "use the full-rebuild fallback" (with the reason
    /// deliberately swallowed — every refusal is legitimate and the
    /// fallback is always correct).
    fn incremental_tail_replay(
        journal: &mut Journal,
        skills: &SkillIndex,
        options: &DiscoveryOptions,
    ) -> Option<Discovery> {
        let tail = journal.take_replayed_tail()?;
        let mut opts = options.clone();
        opts.pll_index_path = Some(journal.index_path());
        opts.pll_load_only = true;
        let base_skills = skills.padded_to(tail.base_graph.num_nodes());
        let mut engine =
            Discovery::with_options(tail.base_graph.clone(), base_skills, opts).ok()?;
        let mut graph = tail.base_graph;
        for delta in &tail.deltas {
            graph = graph.apply_delta(delta).ok()?;
            let padded = skills.padded_to(graph.num_nodes());
            let (next, _report) = engine.try_incremental(graph.clone(), padded).ok()?;
            engine = next;
        }
        // The journal already verified each record's sealed
        // post-fingerprint; this re-derivation must land on the same tip.
        (graph_fingerprint(engine.graph()) == journal.graph_fingerprint()).then_some(engine)
    }

    /// Applies `delta` through the journal (durable ack), then derives
    /// the post-mutation engine — incrementally when the delta allows it
    /// (see the module docs), by full rebuild otherwise — and swaps the
    /// serving snapshot. `Ok` and [`DurableError::SwapLagged`] both mean
    /// the mutation is durable; every other error means it was rejected
    /// with no trace. The `serve.wal_append` faultpoint guards the
    /// entry; `serve.incremental_patch` sits post-ack before the patch.
    ///
    /// Publishes are serialized on the journal lock — the engine
    /// derivation cost is paid inside the critical section, but queries
    /// keep flowing against the pinned snapshot throughout.
    pub fn publish_mutation(&self, delta: &GraphDelta) -> Result<AppendReceipt, DurableError> {
        let mut journal = self.lock_journal();
        faultpoint::hit_io("serve.wal_append")
            .map_err(|e| DurableError::Store(StoreError::Io(e)))?;
        // Classify against the pre-append graph (append advances it) and
        // remember its fingerprint: the incremental path requires the
        // serving snapshot to *be* that state (a SwapLagged survivor
        // trails the journal and must take the rebuild path).
        let class = delta.classify(journal.graph());
        let pre_fp = journal.graph_fingerprint();
        let receipt = journal.append(delta)?;
        // ---- acknowledged: everything below must not un-ack it ----
        let engine = self
            .incremental_engine(&journal, class, pre_fp)
            .map(|engine| {
                Counters::bump(&self.service.counters().incremental_applied);
                Ok(engine)
            })
            .unwrap_or_else(|| {
                Counters::bump(&self.service.counters().full_rebuild_fallbacks);
                Self::rebuild_engine(&journal, &self.skills, &self.discovery)
            })
            .map_err(|e| DurableError::SwapLagged {
                receipt,
                reason: e.to_string(),
            })?;
        self.service.publish(engine);
        if self.checkpoint_every > 0 && journal.tail_records() >= self.checkpoint_every {
            // Best-effort: a failed auto-checkpoint keeps appending to
            // the current segment and the next publish retries.
            let _ = self.checkpoint_locked(&mut journal);
        }
        Ok(receipt)
    }

    /// The incremental half of the publish path: `None` routes to the
    /// full rebuild (structural delta, stale snapshot, or any
    /// [`Discovery::try_incremental`] refusal — budget, order or scale
    /// change). Bit-identity of the patched index makes the two paths
    /// observably identical except for latency and the stats counters.
    fn incremental_engine(
        &self,
        journal: &Journal,
        class: DeltaClass,
        pre_fp: u64,
    ) -> Option<Discovery> {
        if class == DeltaClass::Structural {
            return None;
        }
        let snapshot = self.service.current_snapshot();
        if graph_fingerprint(snapshot.engine().graph()) != pre_fp {
            return None;
        }
        faultpoint::hit("serve.incremental_patch");
        let graph = journal.graph().clone();
        let padded = self.skills.padded_to(graph.num_nodes());
        let (engine, _report) = snapshot.engine().try_incremental(graph, padded).ok()?;
        Some(engine)
    }

    /// The post-mutation rebuild: always in-memory, never touching the
    /// published generation's files.
    fn rebuild_engine(
        journal: &Journal,
        skills: &SkillIndex,
        options: &DiscoveryOptions,
    ) -> Result<Discovery, DiscoveryError> {
        let graph = journal.graph().clone();
        let skills = skills.padded_to(graph.num_nodes());
        let mut opts = options.clone();
        opts.pll_index_path = None;
        opts.pll_load_only = false;
        Discovery::with_options(graph, skills, opts)
    }

    /// Checkpoints the journal's current state as a new generation,
    /// persisting the serving snapshot's distance index alongside the
    /// graph dump when the snapshot is current (after a
    /// [`DurableError::SwapLagged`] it may trail the journal; the index
    /// is then skipped and recovery rebuilds it). Returns the new
    /// generation number.
    pub fn checkpoint(&self) -> Result<u64, StoreError> {
        let mut journal = self.lock_journal();
        self.checkpoint_locked(&mut journal)
    }

    fn checkpoint_locked(&self, journal: &mut Journal) -> Result<u64, StoreError> {
        let snapshot = self.service.current_snapshot();
        let snapshot_is_current =
            graph_fingerprint(snapshot.engine().graph()) == journal.graph_fingerprint();
        journal.checkpoint_with(|_, path| {
            if snapshot_is_current {
                snapshot
                    .engine()
                    .save_pll_index(path)
                    .map_err(|e| e.to_string())
            } else {
                Ok(())
            }
        })
    }

    /// Submits a query and waits for the answer (delegates to
    /// [`QueryService::query`]).
    pub fn query(&self, request: Request) -> Result<ServeResponse, ServeError> {
        self.service.query(request)
    }

    /// The underlying query service (submit/stats/queue introspection).
    pub fn service(&self) -> &QueryService {
        &self.service
    }

    /// Pins the currently serving snapshot.
    pub fn current_snapshot(&self) -> Arc<Snapshot> {
        self.service.current_snapshot()
    }

    /// The generation currently backing the journal.
    pub fn generation(&self) -> u64 {
        self.lock_journal().generation()
    }

    /// Fingerprint of the journal's current graph (checkpoint +
    /// acknowledged tail) — what a recovery must reproduce.
    pub fn graph_fingerprint(&self) -> u64 {
        self.lock_journal().graph_fingerprint()
    }

    /// Acknowledged records in the current generation's WAL tail.
    pub fn tail_records(&self) -> u64 {
        self.lock_journal().tail_records()
    }

    /// Drains the service and joins its workers. The journal needs no
    /// shutdown: every acknowledged record is already durable.
    pub fn shutdown(&mut self) {
        self.service.shutdown();
    }

    fn lock_journal(&self) -> std::sync::MutexGuard<'_, Journal> {
        // A panic while holding the lock (e.g. an injected fault in a
        // chaos test) poisons it; the journal's own invariants — ack
        // after durable, commit at the rename — hold regardless, so the
        // poison flag carries no extra information here.
        self.journal.lock().unwrap_or_else(|p| p.into_inner())
    }
}
