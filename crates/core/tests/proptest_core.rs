//! Cross-module properties of the team-formation layer on random expert
//! networks: coverage, tree validity, exact-vs-greedy dominance, and
//! objective consistency.

use atd_core::exact::{ExactConfig, ExactTeamFinder};
use atd_core::greedy::{Discovery, DiscoveryOptions};
use atd_core::normalize::Normalization;
use atd_core::objectives::{score_team, DuplicatePolicy, ObjectiveWeights};
use atd_core::random::RandomTeamFinder;
use atd_core::skills::{Project, SkillIndex, SkillIndexBuilder};
use atd_core::strategy::Strategy as Rank;
use atd_graph::{ExpertGraph, GraphBuilder, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A connected-ish random instance: ring backbone + random chords, random
/// authorities, two or three skills granted to random nodes.
#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    chords: Vec<(u32, u32, f64)>,
    authorities: Vec<f64>,
    grants: Vec<(u32, u8)>,
    num_skills: u8,
}

fn instance() -> impl Strategy<Value = Instance> {
    (4usize..14, 2u8..4).prop_flat_map(|(n, num_skills)| {
        let chords = proptest::collection::vec((0..n as u32, 0..n as u32, 0.05f64..2.0), 0..12);
        let authorities = proptest::collection::vec(0.0f64..50.0, n);
        let grants =
            proptest::collection::vec((0..n as u32, 0..num_skills), num_skills as usize..10);
        (Just(n), chords, authorities, grants, Just(num_skills)).prop_map(
            |(n, chords, authorities, grants, num_skills)| Instance {
                n,
                chords,
                authorities,
                grants,
                num_skills,
            },
        )
    })
}

fn build(inst: &Instance) -> (ExpertGraph, SkillIndex, Project) {
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = inst.authorities.iter().map(|&a| b.add_node(a)).collect();
    // Ring backbone guarantees connectivity.
    for i in 0..inst.n {
        b.add_edge(ids[i], ids[(i + 1) % inst.n], 0.3 + (i % 5) as f64 * 0.2)
            .unwrap();
    }
    for &(u, v, w) in &inst.chords {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v), w).unwrap();
        }
    }
    let g = b.build().unwrap();

    let mut sb = SkillIndexBuilder::new();
    let skill_ids: Vec<_> = (0..inst.num_skills)
        .map(|i| sb.intern(&format!("skill{i}")))
        .collect();
    // Guarantee coverage: skill i goes to node i as a floor.
    for (i, &s) in skill_ids.iter().enumerate() {
        sb.grant(ids[i % inst.n], s);
    }
    for &(node, skill) in &inst.grants {
        sb.grant(NodeId(node), skill_ids[(skill % inst.num_skills) as usize]);
    }
    let idx = sb.build(g.num_nodes());
    let project = Project::new(skill_ids);
    (g, idx, project)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strategy returns valid covering trees whose recomputed scores
    /// match an independent re-evaluation.
    #[test]
    fn greedy_teams_are_valid_and_consistent(inst in instance()) {
        let (g, idx, project) = build(&inst);
        let norm = Normalization::compute(&g);
        let engine = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions { threads: Some(1), ..Default::default() },
        ).unwrap();
        for strategy in [
            Rank::Cc,
            Rank::CaCc { gamma: 0.6 },
            Rank::SaCaCc { gamma: 0.6, lambda: 0.6 },
        ] {
            let teams = engine.top_k(&project, strategy, 3).unwrap();
            prop_assert!(!teams.is_empty());
            for st in &teams {
                prop_assert!(st.team.covers(&project));
                st.team.tree.validate().unwrap();
                let rescore = score_team(&norm, &st.team, DuplicatePolicy::PerSkill);
                prop_assert!((rescore.cc - st.score.cc).abs() < 1e-9);
                prop_assert!((rescore.ca - st.score.ca).abs() < 1e-9);
                prop_assert!((rescore.sa - st.score.sa).abs() < 1e-9);
                prop_assert!(
                    (strategy.objective(&st.score) - st.objective).abs() < 1e-9
                );
            }
        }
    }

    /// Exact is never worse than greedy or random under SA-CA-CC — the
    /// defining property of the paper's Figure 3 comparison.
    #[test]
    fn exact_dominates_heuristics(inst in instance()) {
        let (g, idx, project) = build(&inst);
        let (gamma, lambda) = (0.6, 0.6);
        let weights = ObjectiveWeights::new(gamma, lambda).unwrap();

        let exact = ExactTeamFinder::new(&g, &idx, ExactConfig::new(weights))
            .best(&project)
            .unwrap();

        let rnd = RandomTeamFinder::new(&g, &idx)
            .best_of(&project, weights, 60, &mut StdRng::seed_from_u64(11))
            .unwrap();
        prop_assert!(
            exact.objective <= rnd.objective + 1e-9,
            "exact {} > random {}",
            exact.objective,
            rnd.objective
        );

        let engine = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions { threads: Some(1), ..Default::default() },
        ).unwrap();
        let greedy = engine.best(&project, Rank::SaCaCc { gamma, lambda }).unwrap();
        prop_assert!(
            exact.objective <= greedy.objective + 1e-9,
            "exact {} > greedy {}",
            exact.objective,
            greedy.objective
        );
    }

    /// The SA-CA-CC strategy achieves an SA-CA-CC score no worse than
    /// scoring CC's winner under SA-CA-CC would suggest... specifically,
    /// among materialized winners, the SA-CA-CC-driven search should not
    /// lose to the CC-driven search by more than numerical noise *on its
    /// own objective* in the top-k pool.
    #[test]
    fn objective_driven_search_beats_cc_on_its_objective(inst in instance()) {
        let (g, idx, project) = build(&inst);
        let engine = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions { threads: Some(1), ..Default::default() },
        ).unwrap();
        let strategy = Rank::SaCaCc { gamma: 0.6, lambda: 0.6 };
        let ours = engine.top_k(&project, strategy, 5).unwrap();
        let cc = engine.top_k(&project, Rank::Cc, 5).unwrap();
        let best_ours = ours
            .iter()
            .map(|t| strategy.objective(&t.score))
            .fold(f64::INFINITY, f64::min);
        let best_cc_rescored = cc
            .iter()
            .map(|t| strategy.objective(&t.score))
            .fold(f64::INFINITY, f64::min);
        // The greedy is a heuristic: allow slack, but catch gross
        // inversions (ranking by the objective should usually help).
        prop_assert!(
            best_ours <= best_cc_rescored + 0.75,
            "SA-CA-CC search ({best_ours}) grossly lost to CC search \
             ({best_cc_rescored}) on its own objective"
        );
    }

    /// Pareto front of the strategy sweep contains no dominated team and
    /// covers the project.
    #[test]
    fn pareto_front_is_clean(inst in instance()) {
        let (g, idx, project) = build(&inst);
        let engine = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions { threads: Some(1), ..Default::default() },
        ).unwrap();
        let front =
            atd_core::pareto::discover_pareto(&engine, &project, &[0.3, 0.7], 3).unwrap();
        prop_assert!(!front.is_empty());
        for a in &front {
            prop_assert!(a.team.covers(&project));
            for b in &front {
                if a.team.member_key() == b.team.member_key() { continue; }
                let dominates = a.score.cc <= b.score.cc
                    && a.score.ca <= b.score.ca
                    && a.score.sa <= b.score.sa
                    && (a.score.cc < b.score.cc
                        || a.score.ca < b.score.ca
                        || a.score.sa < b.score.sa);
                prop_assert!(!dominates, "front has a dominated member");
            }
        }
    }
}
