//! Second battery of property tests: scale invariance, tradeoff
//! monotonicity, and top-k list algebra.

use atd_core::greedy::{Discovery, DiscoveryOptions};
use atd_core::skills::{Project, SkillIndexBuilder};
use atd_core::strategy::Strategy as Rank;
use atd_core::topk::BoundedTopK;
use atd_graph::{ExpertGraph, GraphBuilder, NodeId};
use proptest::prelude::*;

type RawInstance = (usize, Vec<(u32, u32, f64)>, Vec<f64>, f64);

/// A connected weighted graph with skills, plus a positive scale factor.
fn instance() -> impl Strategy<Value = RawInstance> {
    (5usize..12).prop_flat_map(|n| {
        let chords = proptest::collection::vec((0..n as u32, 0..n as u32, 0.1f64..3.0), 0..10);
        let auth = proptest::collection::vec(1.0f64..40.0, n);
        (Just(n), chords, auth, 0.5f64..20.0)
    })
}

fn build(n: usize, chords: &[(u32, u32, f64)], auth: &[f64], w_scale: f64) -> ExpertGraph {
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = auth.iter().map(|&a| b.add_node(a)).collect();
    for i in 0..n {
        b.add_edge(
            ids[i],
            ids[(i + 1) % n],
            w_scale * (0.2 + (i % 4) as f64 * 0.3),
        )
        .unwrap();
    }
    for &(u, v, w) in chords {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v), w_scale * w).unwrap();
        }
    }
    b.build().unwrap()
}

fn engine(g: ExpertGraph) -> (Discovery, Project) {
    let n = g.num_nodes();
    let mut sb = SkillIndexBuilder::new();
    let s0 = sb.intern("s0");
    let s1 = sb.intern("s1");
    sb.grant(NodeId(0), s0);
    sb.grant(NodeId((n / 2) as u32), s0);
    sb.grant(NodeId(1), s1);
    sb.grant(NodeId((n - 1) as u32), s1);
    let idx = sb.build(n);
    let d = Discovery::with_options(
        g,
        idx,
        DiscoveryOptions {
            threads: Some(1),
            ..Default::default()
        },
    )
    .unwrap();
    let p = Project::new(vec![s0, s1]);
    (d, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Uniformly scaling all edge weights does not change which teams are
    /// found (normalization divides the scale back out).
    #[test]
    fn edge_weight_scale_invariance((n, chords, auth, scale) in instance()) {
        let g1 = build(n, &chords, &auth, 1.0);
        let g2 = build(n, &chords, &auth, scale);
        let (d1, p) = engine(g1);
        let (d2, _) = engine(g2);
        for strategy in [Rank::Cc, Rank::SaCaCc { gamma: 0.6, lambda: 0.6 }] {
            let a = d1.top_k(&p, strategy, 3).unwrap();
            let b = d2.top_k(&p, strategy, 3).unwrap();
            let ka: Vec<_> = a.iter().map(|t| t.team.member_key()).collect();
            let kb: Vec<_> = b.iter().map(|t| t.team.member_key()).collect();
            prop_assert_eq!(ka, kb, "scale {} changed {} results", scale, strategy);
        }
    }

    /// Raising λ never *increases* the SA component of the best team
    /// (higher λ means holder authority matters more, so the chosen
    /// holders' ā' sum must be no larger).
    #[test]
    fn lambda_monotonicity_of_sa((n, chords, auth, _s) in instance()) {
        let g = build(n, &chords, &auth, 1.0);
        let (d, p) = engine(g);
        let lo = d.best(&p, Rank::SaCaCc { gamma: 0.6, lambda: 0.1 }).unwrap();
        let hi = d.best(&p, Rank::SaCaCc { gamma: 0.6, lambda: 0.9 }).unwrap();
        prop_assert!(
            hi.score.sa <= lo.score.sa + 1e-9,
            "λ=0.9 picked worse holders (SA {} vs {})",
            hi.score.sa,
            lo.score.sa
        );
    }

    /// Objectives of returned teams are never negative and never NaN.
    #[test]
    fn scores_are_sane((n, chords, auth, _s) in instance()) {
        let g = build(n, &chords, &auth, 1.0);
        let (d, p) = engine(g);
        for strategy in [
            Rank::Cc,
            Rank::CaCc { gamma: 0.3 },
            Rank::SaCaCc { gamma: 0.7, lambda: 0.2 },
        ] {
            for st in d.top_k(&p, strategy, 4).unwrap() {
                prop_assert!(st.score.cc >= 0.0 && st.score.cc.is_finite());
                prop_assert!(st.score.ca >= 0.0 && st.score.ca.is_finite());
                prop_assert!(st.score.sa >= 0.0 && st.score.sa.is_finite());
                prop_assert!(st.objective.is_finite());
                prop_assert!(st.objective >= -1e-12);
                // +0.0 canonicalization: no negative zeros escape.
                prop_assert!(st.score.cc.is_sign_positive());
                prop_assert!(st.score.ca.is_sign_positive());
            }
        }
    }

    /// BoundedTopK(k) over any insertion order equals sort-then-truncate.
    #[test]
    fn topk_equals_sort_truncate(
        keys in proptest::collection::vec(0.0f64..100.0, 0..60),
        k in 1usize..12,
    ) {
        let mut list = BoundedTopK::new(k);
        for (i, &key) in keys.iter().enumerate() {
            list.offer(key, i);
        }
        let got: Vec<f64> = list.into_sorted().into_iter().map(|(key, _)| key).collect();
        let mut expect = keys.clone();
        expect.sort_by(f64::total_cmp);
        expect.truncate(k);
        prop_assert_eq!(got, expect);
    }

    /// Merging per-thread top-k lists gives the same keys as one global
    /// list — the parallel root scan's correctness argument.
    #[test]
    fn topk_merge_is_lossless(
        keys in proptest::collection::vec(0.0f64..100.0, 0..60),
        k in 1usize..8,
        threads in 2usize..5,
    ) {
        let mut global = BoundedTopK::new(k);
        let mut locals: Vec<BoundedTopK<usize>> =
            (0..threads).map(|_| BoundedTopK::new(k)).collect();
        for (i, &key) in keys.iter().enumerate() {
            global.offer(key, i);
            locals[i % threads].offer(key, i);
        }
        let mut merged = BoundedTopK::new(k);
        for l in locals {
            merged.merge(l);
        }
        let g: Vec<f64> = global.into_sorted().into_iter().map(|(key, _)| key).collect();
        let m: Vec<f64> = merged.into_sorted().into_iter().map(|(key, _)| key).collect();
        prop_assert_eq!(g, m);
    }
}
