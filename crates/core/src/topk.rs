//! A bounded best-k list.
//!
//! Algorithm 1 keeps "a list L of size k … updated after each iteration;
//! the new team is added to L if its cost is smaller than the last team in
//! L". This is exactly that list, generic so the per-thread root scans can
//! keep local lists and merge them.

/// Keeps the `k` items with the smallest keys seen so far.
///
/// Insertion is `O(k)` (a shifted insert into a sorted `Vec`), which for
/// the paper's `k ≤ 10` beats any heap bookkeeping.
#[derive(Clone, Debug)]
pub struct BoundedTopK<T> {
    capacity: usize,
    items: Vec<(f64, T)>,
}

impl<T> BoundedTopK<T> {
    /// A list keeping the best `capacity` items.
    pub fn new(capacity: usize) -> Self {
        BoundedTopK {
            capacity,
            items: Vec::with_capacity(capacity.min(64)),
        }
    }

    /// Offers an item; it is kept only if its key is among the `k`
    /// smallest. NaN keys are rejected outright.
    pub fn offer(&mut self, key: f64, value: T) -> bool {
        if self.capacity == 0 || key.is_nan() {
            return false;
        }
        if self.items.len() == self.capacity
            && key >= self.items.last().expect("non-empty at capacity").0
        {
            return false;
        }
        let pos = self.items.partition_point(|&(k, _)| k <= key);
        self.items.insert(pos, (key, value));
        if self.items.len() > self.capacity {
            self.items.pop();
        }
        true
    }

    /// Current worst (largest) kept key, if the list is full.
    pub fn threshold(&self) -> Option<f64> {
        (self.items.len() == self.capacity)
            .then(|| self.items.last().map(|&(k, _)| k))
            .flatten()
    }

    /// Number of kept items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no items are kept.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Consumes the list, returning `(key, value)` ascending by key.
    pub fn into_sorted(self) -> Vec<(f64, T)> {
        self.items
    }

    /// Merges another list into this one.
    pub fn merge(&mut self, other: BoundedTopK<T>) {
        for (k, v) in other.items {
            self.offer(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut l = BoundedTopK::new(3);
        for (k, v) in [(5.0, 'a'), (1.0, 'b'), (4.0, 'c'), (2.0, 'd'), (9.0, 'e')] {
            l.offer(k, v);
        }
        let got: Vec<char> = l.into_sorted().into_iter().map(|(_, v)| v).collect();
        assert_eq!(got, vec!['b', 'd', 'c']);
    }

    #[test]
    fn rejects_when_full_and_worse() {
        let mut l = BoundedTopK::new(2);
        assert!(l.offer(1.0, ()));
        assert!(l.offer(2.0, ()));
        assert!(!l.offer(3.0, ()), "worse than the kept tail");
        assert!(l.offer(0.5, ()));
        assert_eq!(l.threshold(), Some(1.0));
    }

    #[test]
    fn threshold_only_when_full() {
        let mut l = BoundedTopK::new(3);
        l.offer(1.0, ());
        assert_eq!(l.threshold(), None);
        l.offer(2.0, ());
        l.offer(3.0, ());
        assert_eq!(l.threshold(), Some(3.0));
    }

    #[test]
    fn equal_keys_preserve_insertion_order() {
        let mut l = BoundedTopK::new(3);
        l.offer(1.0, 'x');
        l.offer(1.0, 'y');
        l.offer(1.0, 'z');
        let got: Vec<char> = l.into_sorted().into_iter().map(|(_, v)| v).collect();
        assert_eq!(got, vec!['x', 'y', 'z'], "stable for ties");
    }

    #[test]
    fn zero_capacity_accepts_nothing() {
        let mut l = BoundedTopK::new(0);
        assert!(!l.offer(1.0, ()));
        assert!(l.is_empty());
    }

    #[test]
    fn nan_keys_rejected() {
        let mut l = BoundedTopK::new(2);
        assert!(!l.offer(f64::NAN, ()));
        assert!(l.is_empty());
    }

    #[test]
    fn merge_combines_lists() {
        let mut a = BoundedTopK::new(2);
        a.offer(3.0, 'a');
        a.offer(1.0, 'b');
        let mut b = BoundedTopK::new(2);
        b.offer(2.0, 'c');
        b.offer(0.5, 'd');
        a.merge(b);
        let got: Vec<char> = a.into_sorted().into_iter().map(|(_, v)| v).collect();
        assert_eq!(got, vec!['d', 'b']);
    }
}
