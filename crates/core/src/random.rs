//! The `Random` baseline from the paper's evaluation (§4):
//! "randomly builds 10,000 teams and selects the one with the lowest
//! SA-CA-CC".

use rand::seq::SliceRandom;
use rand::Rng;

use atd_distance::DijkstraOracle;
use atd_graph::{ExpertGraph, NodeId, SubTree};

use crate::error::DiscoveryError;
use crate::normalize::Normalization;
use crate::objectives::{score_team, DuplicatePolicy, ObjectiveWeights};
use crate::skills::{Project, SkillIndex};
use crate::strategy::Strategy;
use crate::team::{ScoredTeam, Team};

/// Builds random covering teams and keeps the best by SA-CA-CC.
///
/// A trial samples one holder per skill uniformly from `C(si)`, anchors the
/// team at the first sampled holder, and routes shortest paths from that
/// root to every other holder. Shortest-path trees per root are memoized
/// ([`DijkstraOracle`]), so trials that reuse an anchor are cheap —
/// the 10,000-trial default from the paper completes quickly even on the
/// 40K-node graph.
pub struct RandomTeamFinder<'g> {
    graph: &'g ExpertGraph,
    skills: &'g SkillIndex,
    norm: Normalization,
    policy: DuplicatePolicy,
    oracle: DijkstraOracle<'g>,
}

impl<'g> RandomTeamFinder<'g> {
    /// The paper's trial count.
    pub const PAPER_TRIALS: usize = 10_000;

    /// Creates a finder over `graph`/`skills` with default normalization.
    pub fn new(graph: &'g ExpertGraph, skills: &'g SkillIndex) -> Self {
        Self::with_policy(graph, skills, DuplicatePolicy::default())
    }

    /// Creates a finder with an explicit SA duplicate policy.
    pub fn with_policy(
        graph: &'g ExpertGraph,
        skills: &'g SkillIndex,
        policy: DuplicatePolicy,
    ) -> Self {
        RandomTeamFinder {
            graph,
            skills,
            norm: Normalization::compute(graph),
            policy,
            oracle: DijkstraOracle::new(graph),
        }
    }

    /// Builds one random covering team, or `None` when the sampled holders
    /// are disconnected.
    fn random_team(&self, project: &Project, rng: &mut impl Rng) -> Option<Team> {
        let mut assignment = Vec::with_capacity(project.len());
        for &s in project.skills() {
            let holders = self.skills.holders(s);
            debug_assert!(!holders.is_empty(), "validated before trials");
            let v = *holders.choose(rng).expect("non-empty holder set");
            assignment.push((s, v));
        }
        let root = assignment[0].1;
        let holders: Vec<NodeId> = assignment.iter().map(|&(_, v)| v).collect();

        let tree = if holders.iter().all(|&h| h == root) {
            SubTree::singleton(root)
        } else {
            let sp = self.oracle.tree(root);
            let mut paths = Vec::with_capacity(holders.len());
            for &h in &holders {
                paths.push(sp.path_to(h)?);
            }
            SubTree::from_paths(self.graph, root, &paths).ok()?
        };
        Some(Team::new(tree, assignment))
    }

    /// Runs `trials` random teams and returns the best under
    /// `SA-CA-CC(γ, λ)` (the paper's selection criterion).
    pub fn best_of(
        &self,
        project: &Project,
        weights: ObjectiveWeights,
        trials: usize,
        rng: &mut impl Rng,
    ) -> Result<ScoredTeam, DiscoveryError> {
        let mut all = self.best_of_each(project, &[weights], trials, rng)?;
        Ok(all.remove(0))
    }

    /// Shares one pool of `trials` random teams across several `(γ, λ)`
    /// settings, returning the per-setting best. This is how the λ-sweep
    /// experiments amortize the paper's 10,000 trials instead of
    /// resampling per λ.
    pub fn best_of_each(
        &self,
        project: &Project,
        weights: &[ObjectiveWeights],
        trials: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<ScoredTeam>, DiscoveryError> {
        if project.is_empty() {
            return Err(DiscoveryError::EmptyProject);
        }
        for &s in project.skills() {
            if self.skills.holders(s).is_empty() {
                return Err(DiscoveryError::UncoverableSkill(s));
            }
        }
        assert!(!weights.is_empty(), "need at least one weight setting");

        let strategies: Vec<Strategy> = weights
            .iter()
            .map(|w| Strategy::SaCaCc {
                gamma: w.gamma(),
                lambda: w.lambda(),
            })
            .collect();
        let mut best: Vec<Option<ScoredTeam>> = vec![None; weights.len()];
        for _ in 0..trials {
            let Some(team) = self.random_team(project, rng) else {
                continue;
            };
            let score = score_team(&self.norm, &team, self.policy);
            for (slot, strategy) in best.iter_mut().zip(&strategies) {
                let objective = strategy.objective(&score);
                if slot.as_ref().is_none_or(|b| objective < b.objective) {
                    *slot = Some(ScoredTeam {
                        team: team.clone(),
                        score,
                        objective,
                        algorithm_cost: objective,
                    });
                }
            }
        }
        best.into_iter()
            .map(|b| b.ok_or(DiscoveryError::NoTeamFound))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skills::SkillIndexBuilder;
    use atd_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (ExpertGraph, SkillIndex) {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..6).map(|i| b.add_node(1.0 + i as f64)).collect();
        for i in 0..5 {
            b.add_edge(n[i], n[i + 1], 0.5).unwrap();
        }
        b.add_edge(n[0], n[3], 1.5).unwrap();
        let g = b.build().unwrap();
        let mut sb = SkillIndexBuilder::new();
        let s0 = sb.intern("a");
        let s1 = sb.intern("b");
        sb.grant(n[0], s0);
        sb.grant(n[2], s0);
        sb.grant(n[4], s1);
        sb.grant(n[5], s1);
        (g, sb.build(6))
    }

    #[test]
    fn finds_a_covering_team() {
        let (g, idx) = fixture();
        let f = RandomTeamFinder::new(&g, &idx);
        let project = Project::new(vec![idx.id_of("a").unwrap(), idx.id_of("b").unwrap()]);
        let mut rng = StdRng::seed_from_u64(7);
        let best = f
            .best_of(
                &project,
                ObjectiveWeights::new(0.6, 0.6).unwrap(),
                100,
                &mut rng,
            )
            .unwrap();
        assert!(best.team.covers(&project));
        best.team.tree.validate().unwrap();
    }

    #[test]
    fn more_trials_never_hurt() {
        let (g, idx) = fixture();
        let f = RandomTeamFinder::new(&g, &idx);
        let project = Project::new(vec![idx.id_of("a").unwrap(), idx.id_of("b").unwrap()]);
        let w = ObjectiveWeights::new(0.6, 0.6).unwrap();
        let few = f
            .best_of(&project, w, 5, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let many = f
            .best_of(&project, w, 500, &mut StdRng::seed_from_u64(1))
            .unwrap();
        assert!(many.objective <= few.objective + 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let (g, idx) = fixture();
        let f = RandomTeamFinder::new(&g, &idx);
        let project = Project::new(vec![idx.id_of("a").unwrap(), idx.id_of("b").unwrap()]);
        let w = ObjectiveWeights::new(0.5, 0.5).unwrap();
        let a = f
            .best_of(&project, w, 50, &mut StdRng::seed_from_u64(42))
            .unwrap();
        let b = f
            .best_of(&project, w, 50, &mut StdRng::seed_from_u64(42))
            .unwrap();
        assert_eq!(a.team.member_key(), b.team.member_key());
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn rejects_empty_and_uncoverable() {
        let (g, idx) = fixture();
        let f = RandomTeamFinder::new(&g, &idx);
        let w = ObjectiveWeights::new(0.5, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            f.best_of(&Project::new(vec![]), w, 10, &mut rng),
            Err(DiscoveryError::EmptyProject)
        );
    }

    #[test]
    fn disconnected_holders_give_no_team() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0);
        let c = b.add_node(1.0);
        let g = b.build().unwrap();
        let mut sb = SkillIndexBuilder::new();
        let s0 = sb.intern("x");
        let s1 = sb.intern("y");
        sb.grant(a, s0);
        sb.grant(c, s1);
        let idx = sb.build(2);
        let f = RandomTeamFinder::new(&g, &idx);
        let project = Project::new(vec![s0, s1]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            f.best_of(
                &project,
                ObjectiveWeights::new(0.5, 0.5).unwrap(),
                20,
                &mut rng
            ),
            Err(DiscoveryError::NoTeamFound)
        );
    }
}
