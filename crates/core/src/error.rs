//! Error types for team discovery.

use crate::skills::SkillId;

/// Errors raised by the team-formation algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscoveryError {
    /// The project requires no skills.
    EmptyProject,
    /// A required skill has no holder anywhere in the network.
    UncoverableSkill(SkillId),
    /// No connected team covering the project exists (holders are spread
    /// across components with no common root).
    NoTeamFound,
    /// A tradeoff parameter was outside `[0, 1]` or NaN.
    InvalidTradeoff {
        /// `"gamma"` or `"lambda"`.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A replacement was requested for an expert who is not on the team.
    NotATeamMember(atd_graph::NodeId),
    /// Explicitly saving the PLL index (`Discovery::save_pll_index`)
    /// failed. Carries the formatted persistence error. The implicit
    /// save inside the `DiscoveryOptions::pll_index_path` load-or-build
    /// cold start does **not** raise this — a failed background save
    /// degrades to a recorded warning (`Discovery::pll_persist_warning`)
    /// since the in-memory index is fine.
    IndexPersist(String),
    /// Loading the PLL index failed while
    /// `DiscoveryOptions::pll_load_only` demanded a load (no rebuild
    /// fallback). Carries the formatted persistence error. Without
    /// `pll_load_only`, a missing/stale/corrupt file silently triggers a
    /// rebuild instead.
    IndexLoad(String),
    /// The search was cancelled before completing — its `CancelToken`
    /// was cancelled explicitly or its deadline passed. The fail-fast
    /// entry points (`Discovery::top_k_with`) return no partial result;
    /// callers that want the best-so-far answer instead opt into
    /// `Discovery::top_k_anytime`, which never returns this error.
    Cancelled,
    /// The exact solver refused an instance exceeding its state budget
    /// (the paper's Exact also fails beyond 6 skills).
    InstanceTooLarge {
        /// What blew up, e.g. `"2^terminals * nodes"`.
        what: &'static str,
        /// The computed size.
        size: u128,
        /// The configured limit.
        limit: u128,
    },
}

impl std::fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscoveryError::EmptyProject => write!(f, "project requires no skills"),
            DiscoveryError::UncoverableSkill(s) => {
                write!(f, "skill {s} has no holder in the network")
            }
            DiscoveryError::NoTeamFound => {
                write!(f, "no connected team covers the project")
            }
            DiscoveryError::NotATeamMember(n) => {
                write!(f, "expert {n} is not a member of the team")
            }
            DiscoveryError::InvalidTradeoff { name, value } => {
                write!(f, "tradeoff parameter {name}={value} must be in [0, 1]")
            }
            DiscoveryError::IndexPersist(msg) => {
                write!(f, "failed to persist PLL index: {msg}")
            }
            DiscoveryError::IndexLoad(msg) => {
                write!(f, "failed to load PLL index (load-only mode): {msg}")
            }
            DiscoveryError::Cancelled => {
                write!(f, "search cancelled before completion")
            }
            DiscoveryError::InstanceTooLarge { what, size, limit } => {
                write!(f, "exact search too large: {what} = {size} > limit {limit}")
            }
        }
    }
}

impl std::error::Error for DiscoveryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DiscoveryError::EmptyProject
            .to_string()
            .contains("no skills"));
        assert!(DiscoveryError::UncoverableSkill(SkillId(4))
            .to_string()
            .contains('4'));
        assert!(DiscoveryError::InvalidTradeoff {
            name: "gamma",
            value: 1.5
        }
        .to_string()
        .contains("gamma"));
        assert!(DiscoveryError::InstanceTooLarge {
            what: "states",
            size: 10,
            limit: 5
        }
        .to_string()
        .contains("limit"));
        assert!(DiscoveryError::Cancelled.to_string().contains("cancelled"));
        assert!(DiscoveryError::IndexLoad("nope".into())
            .to_string()
            .contains("load-only"));
    }
}
