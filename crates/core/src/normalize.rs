//! Weight normalization.
//!
//! The paper combines edge weights and inverse authorities into one
//! objective "after normalizing edge and node weights since they may have
//! different scales" (Definition 4's preamble). This module fixes the
//! convention used everywhere in this reproduction:
//!
//! * authorities are inverted with a zero-guard:
//!   `a'(c) = 1 / max(a(c), min_authority)` — h-index 0 would otherwise
//!   produce an infinite penalty; the paper's own Figure 6 shows h-index 1
//!   as the observed minimum, so `min_authority` defaults to 1;
//! * inverse authorities are scaled to `(0, 1]`:
//!   `ā'(c) = a'(c) / max_c a'(c)`;
//! * edge weights are scaled to `[0, 1]`: `w̄ = w / max_e w` (Jaccard
//!   weights are already in `[0, 1]`, so on the DBLP graph this is nearly
//!   the identity).

use atd_graph::{ExpertGraph, NodeId};

/// Precomputed normalization of a specific graph.
#[derive(Clone, Debug)]
pub struct Normalization {
    w_scale: f64,
    a_bar: Vec<f64>,
    min_authority: f64,
}

impl Normalization {
    /// Default zero-guard for authority inversion.
    pub const DEFAULT_MIN_AUTHORITY: f64 = 1.0;

    /// Computes the normalization for `g` with the default zero-guard.
    pub fn compute(g: &ExpertGraph) -> Self {
        Self::compute_with_min_authority(g, Self::DEFAULT_MIN_AUTHORITY)
    }

    /// Computes the normalization with an explicit authority zero-guard.
    ///
    /// # Panics
    /// Panics if `min_authority` is not strictly positive.
    pub fn compute_with_min_authority(g: &ExpertGraph, min_authority: f64) -> Self {
        assert!(
            min_authority > 0.0 && min_authority.is_finite(),
            "min_authority must be positive and finite, got {min_authority}"
        );
        let w_max = g.max_edge_weight().unwrap_or(0.0);
        let w_scale = if w_max > 0.0 { w_max } else { 1.0 };

        let inv: Vec<f64> = g
            .authorities()
            .iter()
            .map(|&a| 1.0 / a.max(min_authority))
            .collect();
        let inv_max = inv.iter().copied().fold(0.0f64, f64::max);
        let inv_scale = if inv_max > 0.0 { inv_max } else { 1.0 };
        let a_bar = inv.into_iter().map(|x| x / inv_scale).collect();

        Normalization {
            w_scale,
            a_bar,
            min_authority,
        }
    }

    /// Normalized edge weight `w̄ ∈ [0, 1]`.
    #[inline]
    pub fn w_bar(&self, w: f64) -> f64 {
        w / self.w_scale
    }

    /// Normalized inverse authority `ā'(c) ∈ (0, 1]`.
    #[inline]
    pub fn a_bar(&self, c: NodeId) -> f64 {
        self.a_bar[c.index()]
    }

    /// The zero-guard in effect.
    #[inline]
    pub fn min_authority(&self) -> f64 {
        self.min_authority
    }

    /// The edge-weight scale divisor.
    #[inline]
    pub fn w_scale(&self) -> f64 {
        self.w_scale
    }

    /// Number of nodes covered.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.a_bar.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atd_graph::GraphBuilder;

    fn graph() -> ExpertGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(10.0); // strongest expert
        let c = b.add_node(2.0);
        let d = b.add_node(0.0); // zero authority — needs the guard
        b.add_edge(a, c, 2.0).unwrap();
        b.add_edge(c, d, 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn edge_weights_scale_to_unit_interval() {
        let n = Normalization::compute(&graph());
        assert_eq!(n.w_bar(4.0), 1.0);
        assert_eq!(n.w_bar(2.0), 0.5);
        assert_eq!(n.w_scale(), 4.0);
    }

    #[test]
    fn zero_authority_is_guarded() {
        let n = Normalization::compute(&graph());
        // a' = [0.1, 0.5, 1.0] -> max 1.0 -> ā' unchanged here.
        assert!((n.a_bar(NodeId(2)) - 1.0).abs() < 1e-12);
        assert!((n.a_bar(NodeId(0)) - 0.1).abs() < 1e-12);
        assert!((n.a_bar(NodeId(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn higher_authority_means_lower_a_bar() {
        let n = Normalization::compute(&graph());
        assert!(n.a_bar(NodeId(0)) < n.a_bar(NodeId(1)));
        assert!(n.a_bar(NodeId(1)) < n.a_bar(NodeId(2)));
    }

    #[test]
    fn custom_min_authority() {
        let n = Normalization::compute_with_min_authority(&graph(), 2.0);
        // a' = [0.1, 0.5, 0.5]; scale 0.5 -> ā' = [0.2, 1.0, 1.0].
        assert!((n.a_bar(NodeId(0)) - 0.2).abs() < 1e-12);
        assert!((n.a_bar(NodeId(1)) - 1.0).abs() < 1e-12);
        assert_eq!(n.min_authority(), 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_guard() {
        Normalization::compute_with_min_authority(&graph(), 0.0);
    }

    #[test]
    fn edgeless_graph_uses_unit_scale() {
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        let g = b.build().unwrap();
        let n = Normalization::compute(&g);
        assert_eq!(n.w_bar(3.0), 3.0, "no edges: scale divisor is 1");
        assert_eq!(n.num_nodes(), 1);
    }

    #[test]
    fn a_bar_is_in_unit_interval() {
        let n = Normalization::compute(&graph());
        for i in 0..n.num_nodes() {
            let v = n.a_bar(NodeId(i as u32));
            assert!(v > 0.0 && v <= 1.0, "ā'({i}) = {v}");
        }
    }
}
