//! Ranking strategies: which of the paper's objectives drives the search.

use crate::error::DiscoveryError;
use crate::objectives::TeamScore;

/// The three ranking strategies evaluated in the paper (§4): `CC` is the
/// prior state of the art; `CA-CC` and `SA-CA-CC` are the paper's
/// contributions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Strategy {
    /// Problem 1 — minimize communication cost only.
    Cc,
    /// Problem 3 — minimize `γ·CA + (1−γ)·CC`; `γ = 1` degenerates to
    /// Problem 2 (pure connector authority).
    CaCc {
        /// Connector-authority tradeoff, `0 ≤ γ ≤ 1`.
        gamma: f64,
    },
    /// Problem 5 — minimize `λ·SA + (1−λ)·(γ·CA + (1−γ)·CC)`.
    SaCaCc {
        /// Connector-authority tradeoff, `0 ≤ γ ≤ 1`.
        gamma: f64,
        /// Skill-holder tradeoff, `0 ≤ λ ≤ 1`.
        lambda: f64,
    },
}

impl Strategy {
    /// Validates tradeoff parameters.
    pub fn validate(&self) -> Result<(), DiscoveryError> {
        let check = |name: &'static str, value: f64| {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                Err(DiscoveryError::InvalidTradeoff { name, value })
            } else {
                Ok(())
            }
        };
        match *self {
            Strategy::Cc => Ok(()),
            Strategy::CaCc { gamma } => check("gamma", gamma),
            Strategy::SaCaCc { gamma, lambda } => {
                check("gamma", gamma)?;
                check("lambda", lambda)
            }
        }
    }

    /// The `γ` this strategy transforms the graph with (`None` for CC,
    /// which runs on the untransformed graph).
    pub fn gamma(&self) -> Option<f64> {
        match *self {
            Strategy::Cc => None,
            Strategy::CaCc { gamma } | Strategy::SaCaCc { gamma, .. } => Some(gamma),
        }
    }

    /// The `λ` blending skill-holder authority (`None` unless SA-CA-CC).
    pub fn lambda(&self) -> Option<f64> {
        match *self {
            Strategy::SaCaCc { lambda, .. } => Some(lambda),
            _ => None,
        }
    }

    /// Evaluates this strategy's objective on exact team scores.
    pub fn objective(&self, score: &TeamScore) -> f64 {
        match *self {
            Strategy::Cc => score.cc,
            Strategy::CaCc { gamma } => score.ca_cc(gamma),
            Strategy::SaCaCc { gamma, lambda } => score.sa_ca_cc(gamma, lambda),
        }
    }

    /// Short display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Cc => "CC",
            Strategy::CaCc { .. } => "CA-CC",
            Strategy::SaCaCc { .. } => "SA-CA-CC",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Strategy::Cc => write!(f, "CC"),
            Strategy::CaCc { gamma } => write!(f, "CA-CC(γ={gamma})"),
            Strategy::SaCaCc { gamma, lambda } => {
                write!(f, "SA-CA-CC(γ={gamma}, λ={lambda})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Strategy::Cc.validate().is_ok());
        assert!(Strategy::CaCc { gamma: 0.6 }.validate().is_ok());
        assert!(Strategy::CaCc { gamma: 1.5 }.validate().is_err());
        assert!(Strategy::SaCaCc {
            gamma: 0.6,
            lambda: -0.1
        }
        .validate()
        .is_err());
        assert!(Strategy::SaCaCc {
            gamma: f64::NAN,
            lambda: 0.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn gamma_lambda_accessors() {
        assert_eq!(Strategy::Cc.gamma(), None);
        assert_eq!(Strategy::CaCc { gamma: 0.3 }.gamma(), Some(0.3));
        assert_eq!(
            Strategy::SaCaCc {
                gamma: 0.3,
                lambda: 0.7
            }
            .lambda(),
            Some(0.7)
        );
        assert_eq!(Strategy::CaCc { gamma: 0.3 }.lambda(), None);
    }

    #[test]
    fn objective_dispatch() {
        let s = TeamScore {
            cc: 2.0,
            ca: 1.0,
            sa: 0.5,
        };
        assert_eq!(Strategy::Cc.objective(&s), 2.0);
        assert!((Strategy::CaCc { gamma: 0.5 }.objective(&s) - 1.5).abs() < 1e-12);
        let v = Strategy::SaCaCc {
            gamma: 0.5,
            lambda: 0.5,
        }
        .objective(&s);
        assert!((v - (0.25 + 0.75)).abs() < 1e-12);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Strategy::Cc.label(), "CC");
        assert_eq!(Strategy::CaCc { gamma: 0.1 }.label(), "CA-CC");
        assert_eq!(
            Strategy::SaCaCc {
                gamma: 0.1,
                lambda: 0.1
            }
            .label(),
            "SA-CA-CC"
        );
        assert!(format!("{}", Strategy::CaCc { gamma: 0.6 }).contains("0.6"));
    }
}
