//! Teams: the objects every algorithm returns (Definition 1).

use std::collections::HashMap;

use atd_graph::{NodeId, SubTree};

use crate::objectives::TeamScore;
use crate::skills::{Project, SkillId};

/// A team of experts (Definition 1): a connected subtree of the expert
/// network plus the skill → expert assignment.
///
/// The same expert may cover several skills; members on the tree that cover
/// no required skill are **connectors** (e.g. the senior professors in the
/// paper's Figure 1 who link the skill holders).
#[derive(Clone, Debug, PartialEq)]
pub struct Team {
    /// The team's tree (root = the node Algorithm 1 grew the team from).
    pub tree: SubTree,
    /// One `(skill, expert)` pair per required skill, in project order.
    pub assignment: Vec<(SkillId, NodeId)>,
    /// Distinct skill holders, ascending.
    holders: Vec<NodeId>,
    /// Distinct connectors (members that hold no assigned skill), ascending.
    connectors: Vec<NodeId>,
}

impl Team {
    /// Assembles a team from its tree and assignment, deriving the
    /// holder/connector partition.
    ///
    /// # Panics
    /// Panics (debug) if an assigned expert is not a tree member — that
    /// would mean the materialization lost a path.
    pub fn new(tree: SubTree, assignment: Vec<(SkillId, NodeId)>) -> Team {
        let mut holders: Vec<NodeId> = assignment.iter().map(|&(_, c)| c).collect();
        holders.sort();
        holders.dedup();
        debug_assert!(
            holders.iter().all(|&h| tree.contains(h)),
            "every skill holder must be a tree member"
        );
        let connectors: Vec<NodeId> = tree
            .nodes
            .iter()
            .copied()
            .filter(|n| holders.binary_search(n).is_err())
            .collect();
        Team {
            tree,
            assignment,
            holders,
            connectors,
        }
    }

    /// Distinct skill holders, ascending.
    #[inline]
    pub fn holders(&self) -> &[NodeId] {
        &self.holders
    }

    /// Distinct connectors, ascending.
    #[inline]
    pub fn connectors(&self) -> &[NodeId] {
        &self.connectors
    }

    /// All members (holders + connectors), ascending.
    #[inline]
    pub fn members(&self) -> &[NodeId] {
        &self.tree.nodes
    }

    /// Team size = number of members (paper's Figure 5c metric).
    #[inline]
    pub fn size(&self) -> usize {
        self.tree.size()
    }

    /// True if the assignment covers every skill of `project`.
    pub fn covers(&self, project: &Project) -> bool {
        project
            .skills()
            .iter()
            .all(|s| self.assignment.iter().any(|(t, _)| t == s))
    }

    /// The expert assigned to `skill`, if any.
    pub fn holder_of(&self, skill: SkillId) -> Option<NodeId> {
        self.assignment
            .iter()
            .find(|&&(s, _)| s == skill)
            .map(|&(_, c)| c)
    }

    /// A canonical key identifying the member set — used to deduplicate
    /// teams that differ only in which root generated them.
    pub fn member_key(&self) -> Vec<NodeId> {
        self.tree.nodes.clone()
    }

    /// Removes **dangling connectors**: leaves of the tree that hold no
    /// assigned skill, repeatedly. Algorithm 1 grows trees from a root
    /// that may itself end up a degree-one connector; pruning it (and any
    /// chain behind it) strictly improves every objective, since each
    /// removed node deletes one edge (CC↓) and one connector (CA↓) while
    /// coverage is untouched. This is an extension over the paper's
    /// verbatim algorithm — see the `prune_dangling_connectors` engine
    /// option and the ablation bench.
    pub fn pruned(self) -> Team {
        let mut nodes = self.tree.nodes;
        let mut edges = self.tree.edges;
        let holders = self.holders;

        loop {
            // Degree count over current edges.
            let mut degree: std::collections::HashMap<NodeId, usize> = HashMap::new();
            for &(u, v, _) in &edges {
                *degree.entry(u).or_insert(0) += 1;
                *degree.entry(v).or_insert(0) += 1;
            }
            let removable: Vec<NodeId> = nodes
                .iter()
                .copied()
                .filter(|n| {
                    degree.get(n).copied().unwrap_or(0) <= 1
                        && holders.binary_search(n).is_err()
                        && nodes.len() > 1
                })
                .collect();
            if removable.is_empty() {
                break;
            }
            nodes.retain(|n| !removable.contains(n));
            edges.retain(|&(u, v, _)| !removable.contains(&u) && !removable.contains(&v));
        }

        // Re-root at the original root if it survived, else at the first
        // holder (the root is only pruned when it was a dangling
        // connector).
        let root = if nodes.binary_search(&self.tree.root).is_ok() {
            self.tree.root
        } else {
            holders[0]
        };
        let tree = SubTree { root, nodes, edges };
        debug_assert!(
            tree.validate().is_ok(),
            "pruning preserves the tree invariant"
        );
        Team {
            tree,
            assignment: self.assignment,
            holders,
            connectors: Vec::new(),
        }
        .recompute_connectors()
    }

    fn recompute_connectors(mut self) -> Team {
        self.connectors = self
            .tree
            .nodes
            .iter()
            .copied()
            .filter(|n| self.holders.binary_search(n).is_err())
            .collect();
        self
    }
}

/// A team together with its evaluated objective scores.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoredTeam {
    /// The team.
    pub team: Team,
    /// Exact normalized objective components (Definitions 2–5) recomputed
    /// on the materialized tree.
    pub score: TeamScore,
    /// The value of the strategy's objective for this team (what the team
    /// was ranked by when comparing materialized candidates).
    pub objective: f64,
    /// Algorithm 1's internal cost (sum of adjusted root→holder distances)
    /// — an upper bound on the realized objective, kept for diagnostics.
    pub algorithm_cost: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use atd_graph::{dijkstra, GraphBuilder};

    /// 0 - 1 - 2, assignment: skill 0 -> node 0, skill 1 -> node 2.
    fn team_on_path() -> Team {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..3).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[2], 1.0).unwrap();
        let g = b.build().unwrap();
        let sp = dijkstra(&g, n[0]);
        let tree = SubTree::from_paths(&g, n[0], &[sp.path_to(n[2]).unwrap()]).unwrap();
        Team::new(tree, vec![(SkillId(0), n[0]), (SkillId(1), n[2])])
    }

    #[test]
    fn partitions_holders_and_connectors() {
        let t = team_on_path();
        assert_eq!(t.holders(), &[NodeId(0), NodeId(2)]);
        assert_eq!(t.connectors(), &[NodeId(1)]);
        assert_eq!(t.size(), 3);
    }

    #[test]
    fn covers_checks_every_skill() {
        let t = team_on_path();
        assert!(t.covers(&Project::new(vec![SkillId(0), SkillId(1)])));
        assert!(t.covers(&Project::new(vec![SkillId(0)])));
        assert!(!t.covers(&Project::new(vec![SkillId(0), SkillId(9)])));
    }

    #[test]
    fn holder_of_finds_assignment() {
        let t = team_on_path();
        assert_eq!(t.holder_of(SkillId(1)), Some(NodeId(2)));
        assert_eq!(t.holder_of(SkillId(7)), None);
    }

    #[test]
    fn one_expert_covering_two_skills_is_a_single_holder() {
        let tree = SubTree::singleton(NodeId(5));
        let t = Team::new(tree, vec![(SkillId(0), NodeId(5)), (SkillId(1), NodeId(5))]);
        assert_eq!(t.holders(), &[NodeId(5)]);
        assert!(t.connectors().is_empty());
        assert_eq!(t.size(), 1);
    }

    #[test]
    fn member_key_identifies_member_set() {
        let t = team_on_path();
        assert_eq!(t.member_key(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    /// Path 0 - 1 - 2 - 3 rooted at 0, but only 2 and 3 hold skills:
    /// 0 and 1 are a dangling connector chain.
    fn team_with_dangling_root() -> Team {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|_| b.add_node(1.0)).collect();
        for i in 0..3 {
            b.add_edge(n[i], n[i + 1], 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let sp = dijkstra(&g, n[0]);
        let tree = SubTree::from_paths(&g, n[0], &[sp.path_to(n[3]).unwrap()]).unwrap();
        Team::new(tree, vec![(SkillId(0), n[2]), (SkillId(1), n[3])])
    }

    #[test]
    fn pruning_removes_dangling_connector_chain() {
        let t = team_with_dangling_root().pruned();
        assert_eq!(t.members(), &[NodeId(2), NodeId(3)]);
        assert!(t.connectors().is_empty());
        assert_eq!(t.tree.root, NodeId(2), "re-rooted at a surviving holder");
        t.tree.validate().unwrap();
        assert_eq!(t.tree.total_edge_weight(), 1.0, "only the 2-3 edge remains");
    }

    #[test]
    fn pruning_keeps_internal_connectors() {
        // 0 (holder) - 1 (connector) - 2 (holder): nothing to prune.
        let t = team_on_path().pruned();
        assert_eq!(t.members(), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(t.connectors(), &[NodeId(1)]);
    }

    #[test]
    fn pruning_is_idempotent() {
        let once = team_with_dangling_root().pruned();
        let twice = once.clone().pruned();
        assert_eq!(once, twice);
    }

    #[test]
    fn pruning_singleton_is_noop() {
        let tree = SubTree::singleton(NodeId(5));
        let t = Team::new(tree, vec![(SkillId(0), NodeId(5))]).pruned();
        assert_eq!(t.size(), 1);
    }
}
