//! Cooperative cancellation for long-running searches.
//!
//! Algorithm 1's root scan visits every node of the network; on a large
//! graph a single query can run for a long time, and a serving layer
//! cannot afford a worker pinned to a query whose caller has given up.
//! A [`CancelToken`] threads a *stop request* — an explicit
//! [`cancel`](CancelToken::cancel) or an absolute deadline — into the
//! scan and materialization loops of [`Discovery`](crate::Discovery),
//! which poll it between roots and between candidates and bail out with
//! [`DiscoveryError::Cancelled`](crate::DiscoveryError::Cancelled)
//! instead of finishing the work.
//!
//! Cancellation is **cooperative and best-effort**: the search observes
//! the token at loop granularity (one root, one candidate), so a cancel
//! becomes visible within a few microseconds of work, never mid-update.
//! A cancelled search leaves no partial state behind — `top_k` either
//! returns a complete, correct answer or the `Cancelled` error. The
//! **anytime** entry point
//! ([`Discovery::top_k_anytime`](crate::Discovery::top_k_anytime))
//! opts out of fail-fast: the same token instead stops the search with
//! the best answer found so far, explicitly flagged with how much of the
//! scan ran.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable stop request for a search: an explicit flag, an absolute
/// deadline, or both. Cloning is cheap and every clone observes the same
/// flag, so a controller thread can hold one clone and cancel a search
/// running on another.
///
/// [`CancelToken::never`] is the zero-cost default (no allocation, every
/// check is a constant `false`), used by the plain
/// [`Discovery::top_k`](crate::Discovery::top_k) entry point.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    /// Explicit cancellation flag; `None` for never-cancellable tokens.
    flag: Option<Arc<AtomicBool>>,
    /// Absolute deadline after which the token reads as cancelled.
    deadline: Option<Instant>,
    /// Poll-countdown budget: the first `n` [`is_cancelled`] polls read
    /// clean, every later poll reads cancelled. Test-oriented — it makes
    /// "the deadline expired at exactly this poll point" reproducible
    /// without wall-clock races.
    ///
    /// [`is_cancelled`]: CancelToken::is_cancelled
    countdown: Option<Arc<AtomicU64>>,
}

impl CancelToken {
    /// A token that never cancels — no allocation, checks are free.
    pub fn never() -> CancelToken {
        CancelToken {
            flag: None,
            deadline: None,
            countdown: None,
        }
    }

    /// A token with no deadline that cancels only when
    /// [`cancel`](CancelToken::cancel) is called on it (or a clone).
    pub fn new() -> CancelToken {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: None,
            countdown: None,
        }
    }

    /// A token that reads as cancelled once `deadline` passes (and can
    /// still be cancelled explicitly before then).
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: Some(deadline),
            countdown: None,
        }
    }

    /// A token whose first `polls` [`is_cancelled`](CancelToken::is_cancelled)
    /// calls read clean and every later call reads cancelled.
    ///
    /// The search loops poll at fixed, documented points (once on entry,
    /// once per scanned root, once per materialized candidate), so this
    /// token turns "the deadline expired mid-root-scan" or "…during
    /// candidate materialization" into a deterministic test instead of a
    /// sleep-and-hope race. Clones share the countdown.
    pub fn after_polls(polls: u64) -> CancelToken {
        CancelToken {
            flag: None,
            deadline: None,
            countdown: Some(Arc::new(AtomicU64::new(polls))),
        }
    }

    /// A token whose deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Requests cancellation; every clone of this token observes it.
    /// No-op on [`CancelToken::never`] tokens.
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the search should stop: explicitly cancelled, or past the
    /// deadline. This is the poll the inner loops call once per root /
    /// per candidate.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(countdown) = &self.countdown {
            // Each poll consumes one unit of the budget; a poll that
            // finds the budget empty reads cancelled (and every poll
            // after it keeps reading cancelled).
            if countdown
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_err()
            {
                return true;
            }
        }
        self.deadline_elapsed()
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the deadline (if any) has passed — distinguishes a
    /// deadline-driven cancellation from an explicit one, which is how a
    /// serving layer maps [`DiscoveryError::Cancelled`] to a typed
    /// deadline error.
    ///
    /// [`DiscoveryError::Cancelled`]: crate::DiscoveryError::Cancelled
    #[inline]
    pub fn deadline_elapsed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_cancels() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        t.cancel(); // no-op, must not panic
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn explicit_cancel_is_visible_to_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        assert!(!clone.deadline_elapsed(), "no deadline involved");
    }

    #[test]
    fn past_deadline_reads_cancelled() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert!(t.deadline_elapsed());
    }

    #[test]
    fn future_deadline_not_yet_cancelled() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_some());
        t.cancel();
        assert!(t.is_cancelled(), "explicit cancel beats the deadline");
        assert!(!t.deadline_elapsed());
    }

    #[test]
    fn default_is_never() {
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn countdown_token_trips_after_exact_poll_budget() {
        let t = CancelToken::after_polls(3);
        let clone = t.clone();
        assert!(!t.is_cancelled());
        assert!(!clone.is_cancelled(), "clones share the budget");
        assert!(!t.is_cancelled());
        assert!(t.is_cancelled(), "fourth poll exhausts a budget of 3");
        assert!(t.is_cancelled(), "stays cancelled once tripped");
        assert!(!t.deadline_elapsed(), "no wall-clock deadline involved");

        let zero = CancelToken::after_polls(0);
        assert!(zero.is_cancelled(), "zero budget cancels immediately");
    }
}
