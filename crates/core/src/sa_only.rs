//! Problem 4 — pure skill-holder authority — which the paper observes is
//! solvable in polynomial time: "for each skill in P, we find an expert
//! with the highest a (lowest a'), and then produce a connected subgraph
//! containing the selected experts".

use atd_distance::DijkstraOracle;
use atd_graph::{ExpertGraph, NodeId, SubTree};

use crate::error::DiscoveryError;
use crate::normalize::Normalization;
use crate::objectives::{score_team, DuplicatePolicy};
use crate::skills::{Project, SkillIndex};
use crate::team::{ScoredTeam, Team};

/// Solves Problem 4 exactly: the per-skill authority optimum, connected via
/// shortest paths from the most authoritative selected holder.
///
/// Note the caveat the paper itself raises — this ignores communication
/// cost and connector authority entirely, which is why Problem 5 exists.
pub fn best_sa_team(
    graph: &ExpertGraph,
    skills: &SkillIndex,
    project: &Project,
    policy: DuplicatePolicy,
) -> Result<ScoredTeam, DiscoveryError> {
    if project.is_empty() {
        return Err(DiscoveryError::EmptyProject);
    }
    let norm = Normalization::compute(graph);

    // Per-skill argmin of ā' (ties to smaller node id — deterministic).
    let mut assignment = Vec::with_capacity(project.len());
    for &s in project.skills() {
        let holders = skills.holders(s);
        if holders.is_empty() {
            return Err(DiscoveryError::UncoverableSkill(s));
        }
        let best = holders
            .iter()
            .copied()
            .min_by(|&a, &b| norm.a_bar(a).total_cmp(&norm.a_bar(b)).then(a.cmp(&b)))
            .expect("non-empty");
        assignment.push((s, best));
    }

    // Anchor at the most authoritative holder and connect the rest.
    let root = assignment
        .iter()
        .map(|&(_, v)| v)
        .min_by(|&a, &b| norm.a_bar(a).total_cmp(&norm.a_bar(b)).then(a.cmp(&b)))
        .expect("non-empty project");
    let holders: Vec<NodeId> = assignment.iter().map(|&(_, v)| v).collect();

    let tree = if holders.iter().all(|&h| h == root) {
        SubTree::singleton(root)
    } else {
        let oracle = DijkstraOracle::with_cache_bound(graph, 1);
        let sp = oracle.tree(root);
        let mut paths = Vec::with_capacity(holders.len());
        for &h in &holders {
            paths.push(sp.path_to(h).ok_or(DiscoveryError::NoTeamFound)?);
        }
        SubTree::from_paths(graph, root, &paths).map_err(|_| DiscoveryError::NoTeamFound)?
    };

    let team = Team::new(tree, assignment);
    let score = score_team(&norm, &team, policy);
    Ok(ScoredTeam {
        objective: score.sa,
        algorithm_cost: score.sa,
        team,
        score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skills::SkillIndexBuilder;
    use atd_graph::GraphBuilder;

    fn fixture() -> (ExpertGraph, SkillIndex) {
        // Node authorities: 0:1, 1:50, 2:2, 3:40.
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = [1.0, 50.0, 2.0, 40.0]
            .iter()
            .map(|&a| b.add_node(a))
            .collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[2], 1.0).unwrap();
        b.add_edge(n[2], n[3], 1.0).unwrap();
        let g = b.build().unwrap();
        let mut sb = SkillIndexBuilder::new();
        let s0 = sb.intern("a");
        let s1 = sb.intern("b");
        sb.grant(n[0], s0);
        sb.grant(n[1], s0); // authority 50 — must win skill a
        sb.grant(n[2], s1);
        sb.grant(n[3], s1); // authority 40 — must win skill b
        (g, sb.build(4))
    }

    #[test]
    fn picks_highest_authority_holder_per_skill() {
        let (g, idx) = fixture();
        let p = Project::new(vec![idx.id_of("a").unwrap(), idx.id_of("b").unwrap()]);
        let best = best_sa_team(&g, &idx, &p, DuplicatePolicy::PerSkill).unwrap();
        assert_eq!(
            best.team.holder_of(idx.id_of("a").unwrap()),
            Some(NodeId(1))
        );
        assert_eq!(
            best.team.holder_of(idx.id_of("b").unwrap()),
            Some(NodeId(3))
        );
        assert!(best.team.covers(&p));
        best.team.tree.validate().unwrap();
    }

    #[test]
    fn sa_is_minimal_among_assignments() {
        let (g, idx) = fixture();
        let p = Project::new(vec![idx.id_of("a").unwrap(), idx.id_of("b").unwrap()]);
        let norm = Normalization::compute(&g);
        let best = best_sa_team(&g, &idx, &p, DuplicatePolicy::PerSkill).unwrap();
        // Exhaustive check over the 2x2 assignments.
        for &ha in idx.holders(idx.id_of("a").unwrap()) {
            for &hb in idx.holders(idx.id_of("b").unwrap()) {
                let sa = norm.a_bar(ha) + norm.a_bar(hb);
                assert!(best.score.sa <= sa + 1e-12);
            }
        }
    }

    #[test]
    fn empty_project_rejected() {
        let (g, idx) = fixture();
        assert_eq!(
            best_sa_team(&g, &idx, &Project::new(vec![]), DuplicatePolicy::PerSkill),
            Err(DiscoveryError::EmptyProject)
        );
    }

    #[test]
    fn disconnected_best_holders_fail() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(10.0);
        let c = b.add_node(10.0);
        let g = b.build().unwrap();
        let mut sb = SkillIndexBuilder::new();
        let s0 = sb.intern("x");
        let s1 = sb.intern("y");
        sb.grant(a, s0);
        sb.grant(c, s1);
        let idx = sb.build(2);
        let p = Project::new(vec![s0, s1]);
        assert_eq!(
            best_sa_team(&g, &idx, &p, DuplicatePolicy::PerSkill),
            Err(DiscoveryError::NoTeamFound)
        );
    }
}
