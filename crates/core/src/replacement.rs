//! Team-member replacement — the extension the paper's introduction cites
//! as prior work worth unifying with authority ("recommending replacements
//! when a team member becomes unavailable", Li et al., WWW 2015, the
//! paper's reference \[4\]), here solved under the paper's own objectives.
//!
//! Given a discovered team and a member who leaves, the finder runs
//! Algorithm 1's inner loop *restricted to the surviving team members as
//! candidate roots*, on the network with the leaver's edges removed: for
//! each surviving root, each required skill is re-assigned to its nearest
//! remaining holder under the strategy's adjusted DIST, the tree is
//! re-materialized, and candidates are ranked by the strategy's objective.
//! This uniformly handles both cases:
//!
//! * a departing **connector** usually leads to a pure re-route (the
//!   assignment still wins for every skill), and
//! * a departing **skill holder** is replaced by whoever now minimizes the
//!   objective — possibly several experts splitting the lost skills.
//!
//! The leaver is modeled by [`atd_graph::ExpertGraph::isolate_node`], so
//! replacement paths can never route through them.

use atd_graph::{ExpertGraph, NodeId, SubTree};

use crate::error::DiscoveryError;
use crate::normalize::Normalization;
use crate::objectives::{score_team, DuplicatePolicy};
use crate::skills::SkillIndex;
use crate::strategy::Strategy;
use crate::team::{ScoredTeam, Team};
use crate::transform::authority_transform;

/// Finds replacements for departing team members.
pub struct ReplacementFinder<'g> {
    graph: &'g ExpertGraph,
    skills: &'g SkillIndex,
    norm: Normalization,
    policy: DuplicatePolicy,
}

impl<'g> ReplacementFinder<'g> {
    /// Creates a finder over the network.
    pub fn new(graph: &'g ExpertGraph, skills: &'g SkillIndex) -> Self {
        Self::with_policy(graph, skills, DuplicatePolicy::default())
    }

    /// Creates a finder with an explicit SA duplicate policy.
    pub fn with_policy(
        graph: &'g ExpertGraph,
        skills: &'g SkillIndex,
        policy: DuplicatePolicy,
    ) -> Self {
        ReplacementFinder {
            graph,
            skills,
            norm: Normalization::compute(graph),
            policy,
        }
    }

    /// Recommends up to `k` repaired teams after `leaving` departs,
    /// ranked by `strategy`'s objective (best first).
    ///
    /// Errors: [`DiscoveryError::NotATeamMember`] if `leaving` is not on
    /// the team; [`DiscoveryError::NoTeamFound`] when no candidate can
    /// take over the lost skills or the remaining holders cannot be
    /// reconnected.
    pub fn recommend(
        &self,
        team: &Team,
        leaving: NodeId,
        strategy: Strategy,
        k: usize,
    ) -> Result<Vec<ScoredTeam>, DiscoveryError> {
        strategy.validate()?;
        if !team.members().contains(&leaving) {
            return Err(DiscoveryError::NotATeamMember(leaving));
        }
        if k == 0 {
            return Ok(Vec::new());
        }

        // Any skill that only the leaver can cover is irreplaceable.
        for &(s, _) in &team.assignment {
            let replaceable = self.skills.holders(s).iter().any(|&h| h != leaving);
            if !replaceable {
                return Err(DiscoveryError::NoTeamFound);
            }
        }

        // The network without the leaver, with the strategy's ranking
        // weights.
        let reduced = self.graph.isolate_node(leaving);
        let ranking = match strategy.gamma() {
            None => reduced.map_weights(|_, _, w| self.norm.w_bar(w)),
            Some(gamma) => authority_transform(&reduced, &self.norm, gamma),
        };

        // Candidate roots: the surviving team members (the team should
        // change minimally), plus — when the leaver was the root — the
        // remaining holders of the lost skills.
        let mut roots: Vec<NodeId> = team
            .members()
            .iter()
            .copied()
            .filter(|&m| m != leaving)
            .collect();
        for &(s, c) in &team.assignment {
            if c == leaving {
                roots.extend(
                    self.skills
                        .holders(s)
                        .iter()
                        .copied()
                        .filter(|&h| h != leaving),
                );
            }
        }
        roots.sort();
        roots.dedup();

        let mut repaired: Vec<ScoredTeam> = Vec::new();
        let mut seen: std::collections::HashSet<Vec<NodeId>> = std::collections::HashSet::new();
        for root in roots {
            let sp_full = atd_graph::dijkstra(&ranking, root);

            // Algorithm 1's inner loop on the reduced graph.
            let mut assignment = Vec::with_capacity(team.assignment.len());
            let mut feasible = true;
            for &(s, _) in &team.assignment {
                if self.skills.has_skill(root, s) {
                    assignment.push((s, root));
                    continue;
                }
                let mut best: Option<(f64, NodeId)> = None;
                for &v in self.skills.holders(s) {
                    if v == leaving {
                        continue;
                    }
                    let Some(d) = sp_full.distance(v) else {
                        continue;
                    };
                    let adj = match strategy {
                        Strategy::Cc => d,
                        Strategy::CaCc { gamma } => d - gamma * self.norm.a_bar(v),
                        Strategy::SaCaCc { gamma, lambda } => {
                            (1.0 - lambda) * (d - gamma * self.norm.a_bar(v))
                                + lambda * self.norm.a_bar(v)
                        }
                    };
                    let better = match best {
                        None => true,
                        Some((bc, bv)) => adj < bc || (adj == bc && v < bv),
                    };
                    if better {
                        best = Some((adj, v));
                    }
                }
                match best {
                    Some((_, v)) => assignment.push((s, v)),
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible {
                continue;
            }

            let holders: Vec<NodeId> = assignment.iter().map(|&(_, c)| c).collect();
            let tree = if holders.iter().all(|&h| h == root) {
                SubTree::singleton(root)
            } else {
                let paths: Option<Vec<_>> = holders.iter().map(|&h| sp_full.path_to(h)).collect();
                let Some(paths) = paths else { continue };
                let Ok(tree) = SubTree::from_paths(self.graph, root, &paths) else {
                    continue;
                };
                tree
            };
            debug_assert!(!tree.contains(leaving), "reduced graph excludes the leaver");

            let candidate = Team::new(tree, assignment);
            if !seen.insert(candidate.member_key()) {
                continue;
            }
            let score = score_team(&self.norm, &candidate, self.policy);
            let objective = strategy.objective(&score);
            repaired.push(ScoredTeam {
                team: candidate,
                score,
                objective,
                algorithm_cost: objective,
            });
        }

        if repaired.is_empty() {
            return Err(DiscoveryError::NoTeamFound);
        }
        repaired.sort_by(|a, b| a.objective.total_cmp(&b.objective));
        repaired.truncate(k);
        Ok(repaired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{Discovery, DiscoveryOptions};
    use crate::skills::{Project, SkillIndexBuilder};
    use atd_graph::GraphBuilder;

    /// Two holders of skill "a" (nodes 0, 4), one holder of "b" (node 2),
    /// connected through connector 1 (and alternative connector 3).
    ///
    /// ```text
    ///   0 ── 1 ── 2 ── 3 ── 4
    ///        └────────┘ (1-3 shortcut)
    /// ```
    fn fixture() -> (ExpertGraph, SkillIndex) {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = [4.0, 20.0, 6.0, 9.0, 12.0]
            .iter()
            .map(|&a| b.add_node(a))
            .collect();
        for i in 0..4 {
            b.add_edge(n[i], n[i + 1], 0.5).unwrap();
        }
        b.add_edge(n[1], n[3], 0.7).unwrap();
        let g = b.build().unwrap();
        let mut sb = SkillIndexBuilder::new();
        let sa = sb.intern("a");
        let sc = sb.intern("b");
        sb.grant(n[0], sa);
        sb.grant(n[4], sa);
        sb.grant(n[2], sc);
        (g, sb.build(5))
    }

    fn discovered_team(g: &ExpertGraph, idx: &SkillIndex) -> Team {
        let engine = Discovery::with_options(
            g.clone(),
            idx.clone(),
            DiscoveryOptions {
                threads: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        let project = Project::new(vec![idx.id_of("a").unwrap(), idx.id_of("b").unwrap()]);
        engine.best(&project, Strategy::Cc).unwrap().team
    }

    #[test]
    fn holder_replacement_swaps_in_another_holder() {
        let (g, idx) = fixture();
        let team = discovered_team(&g, &idx);
        let sa = idx.id_of("a").unwrap();
        let old = team.holder_of(sa).unwrap();
        let finder = ReplacementFinder::new(&g, &idx);
        let fixed = finder
            .recommend(
                &team,
                old,
                Strategy::SaCaCc {
                    gamma: 0.6,
                    lambda: 0.6,
                },
                3,
            )
            .unwrap();
        assert!(!fixed.is_empty());
        for st in &fixed {
            assert!(!st.team.members().contains(&old), "leaver must be gone");
            assert!(st.team.holder_of(sa).is_some(), "skill a still covered");
            st.team.tree.validate().unwrap();
        }
        // Results are ranked.
        for w in fixed.windows(2) {
            assert!(w[0].objective <= w[1].objective + 1e-12);
        }
    }

    #[test]
    fn connector_departure_repairs_the_team() {
        let (g, idx) = fixture();
        let team = discovered_team(&g, &idx);
        let Some(&connector) = team.connectors().first() else {
            panic!("fixture team should have a connector, got {team:?}");
        };
        let finder = ReplacementFinder::new(&g, &idx);
        let fixed = finder.recommend(&team, connector, Strategy::Cc, 2).unwrap();
        assert!(!fixed.is_empty());
        let project = Project::new(team.assignment.iter().map(|&(s, _)| s).collect());
        for st in &fixed {
            assert!(
                !st.team.members().contains(&connector),
                "leaver must be gone"
            );
            assert!(st.team.covers(&project), "coverage restored");
            st.team.tree.validate().unwrap();
        }
    }

    #[test]
    fn non_member_is_rejected() {
        let (g, idx) = fixture();
        let team = discovered_team(&g, &idx);
        let outsider = (0..5u32)
            .map(NodeId)
            .find(|n| !team.members().contains(n))
            .expect("someone is off the team");
        let finder = ReplacementFinder::new(&g, &idx);
        assert_eq!(
            finder.recommend(&team, outsider, Strategy::Cc, 1),
            Err(DiscoveryError::NotATeamMember(outsider))
        );
    }

    #[test]
    fn irreplaceable_holder_fails() {
        let (g, idx) = fixture();
        let team = discovered_team(&g, &idx);
        let sb = idx.id_of("b").unwrap();
        let only_holder = team.holder_of(sb).unwrap();
        let finder = ReplacementFinder::new(&g, &idx);
        assert_eq!(
            finder.recommend(&team, only_holder, Strategy::Cc, 1),
            Err(DiscoveryError::NoTeamFound),
            "nobody else holds skill b"
        );
    }

    #[test]
    fn k_zero_returns_empty() {
        let (g, idx) = fixture();
        let team = discovered_team(&g, &idx);
        let finder = ReplacementFinder::new(&g, &idx);
        let member = team.members()[0];
        assert!(finder
            .recommend(&team, member, Strategy::Cc, 0)
            .unwrap()
            .is_empty());
    }
}
