//! Pareto-optimal team sets — the extension sketched in the paper's
//! conclusion ("Another way to jointly optimize the communication cost and
//! expert authority objectives is to find a set of Pareto-optimal teams").
//!
//! A team dominates another if it is no worse on all three normalized
//! objectives `(CC, CA, SA)` and strictly better on at least one. The
//! generator sweeps the greedy engine over a `(γ, λ)` grid to collect a
//! diverse candidate pool, then filters to the non-dominated front —
//! following the two-phase structure of the authors' follow-up work
//! (Zihayat, Kargar, An; WI 2014, the paper's reference \[6\]).

use crate::error::DiscoveryError;
use crate::greedy::Discovery;
use crate::skills::Project;
use crate::strategy::Strategy;
use crate::team::ScoredTeam;

/// True if `a`'s objective vector dominates `b`'s.
fn dominates(a: &ScoredTeam, b: &ScoredTeam) -> bool {
    let better_eq =
        a.score.cc <= b.score.cc && a.score.ca <= b.score.ca && a.score.sa <= b.score.sa;
    let strictly = a.score.cc < b.score.cc || a.score.ca < b.score.ca || a.score.sa < b.score.sa;
    better_eq && strictly
}

/// Filters `candidates` to the Pareto front over `(CC, CA, SA)`,
/// deduplicating identical member sets. Order follows ascending `CC`.
pub fn pareto_front(candidates: Vec<ScoredTeam>) -> Vec<ScoredTeam> {
    // Dedup by member set first (keeping the first occurrence).
    let mut seen = std::collections::HashSet::new();
    let pool: Vec<ScoredTeam> = candidates
        .into_iter()
        .filter(|c| seen.insert(c.team.member_key()))
        .collect();

    let mut front: Vec<ScoredTeam> = Vec::new();
    for cand in pool {
        if front.iter().any(|f| dominates(f, &cand)) {
            continue;
        }
        front.retain(|f| !dominates(&cand, f));
        front.push(cand);
    }
    front.sort_by(|a, b| a.score.cc.total_cmp(&b.score.cc));
    front
}

/// Sweeps the greedy engine over a `(γ, λ)` grid (plus pure CC) and
/// returns the Pareto front of everything found.
///
/// `grid` lists the tradeoff values to visit (e.g. `[0.2, 0.5, 0.8]`);
/// `k_per_point` teams are collected per grid point.
pub fn discover_pareto(
    engine: &Discovery,
    project: &Project,
    grid: &[f64],
    k_per_point: usize,
) -> Result<Vec<ScoredTeam>, DiscoveryError> {
    let mut pool: Vec<ScoredTeam> = Vec::new();
    let mut last_err = None;

    let mut strategies = vec![Strategy::Cc];
    for &gamma in grid {
        strategies.push(Strategy::CaCc { gamma });
        for &lambda in grid {
            strategies.push(Strategy::SaCaCc { gamma, lambda });
        }
    }

    for strategy in strategies {
        match engine.top_k(project, strategy, k_per_point) {
            Ok(mut teams) => pool.append(&mut teams),
            Err(e @ (DiscoveryError::EmptyProject | DiscoveryError::UncoverableSkill(_))) => {
                return Err(e)
            }
            Err(e) => last_err = Some(e),
        }
    }

    if pool.is_empty() {
        return Err(last_err.unwrap_or(DiscoveryError::NoTeamFound));
    }
    Ok(pareto_front(pool))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectives::TeamScore;
    use crate::skills::{SkillId, SkillIndexBuilder};
    use crate::team::Team;
    use atd_graph::{GraphBuilder, NodeId, SubTree};

    fn scored(cc: f64, ca: f64, sa: f64, node: u32) -> ScoredTeam {
        let team = Team::new(
            SubTree::singleton(NodeId(node)),
            vec![(SkillId(0), NodeId(node))],
        );
        ScoredTeam {
            team,
            score: TeamScore { cc, ca, sa },
            objective: cc,
            algorithm_cost: cc,
        }
    }

    #[test]
    fn dominated_points_are_removed() {
        let front = pareto_front(vec![
            scored(1.0, 1.0, 1.0, 0),
            scored(2.0, 2.0, 2.0, 1), // dominated by the first
            scored(0.5, 3.0, 1.0, 2), // tradeoff point — kept
        ]);
        let members: Vec<u32> = front.iter().map(|t| t.team.members()[0].0).collect();
        assert_eq!(members, vec![2, 0]);
    }

    #[test]
    fn equal_points_keep_one() {
        // Identical scores on different nodes: neither strictly dominates.
        let front = pareto_front(vec![scored(1.0, 1.0, 1.0, 0), scored(1.0, 1.0, 1.0, 1)]);
        assert_eq!(front.len(), 2, "non-dominated ties are both kept");
    }

    #[test]
    fn duplicate_member_sets_collapse() {
        let front = pareto_front(vec![scored(1.0, 1.0, 1.0, 0), scored(0.1, 0.1, 0.1, 0)]);
        assert_eq!(front.len(), 1, "same member set deduplicates");
        assert_eq!(front[0].score.cc, 1.0, "first occurrence wins");
    }

    #[test]
    fn front_is_mutually_non_dominated() {
        let cands: Vec<ScoredTeam> = (0..20)
            .map(|i| {
                let f = i as f64;
                scored((f * 7.0) % 5.0, (f * 3.0) % 4.0, (f * 11.0) % 3.0, i)
            })
            .collect();
        let front = pareto_front(cands);
        for a in &front {
            for b in &front {
                if a.team.member_key() != b.team.member_key() {
                    assert!(!dominates(a, b), "front contains a dominated pair");
                }
            }
        }
    }

    #[test]
    fn discover_pareto_runs_on_a_small_network() {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = [2.0, 30.0, 3.0, 8.0]
            .iter()
            .map(|&a| b.add_node(a))
            .collect();
        b.add_edge(n[0], n[1], 0.2).unwrap();
        b.add_edge(n[1], n[2], 0.2).unwrap();
        b.add_edge(n[0], n[3], 0.1).unwrap();
        b.add_edge(n[3], n[2], 0.1).unwrap();
        let g = b.build().unwrap();
        let mut sb = SkillIndexBuilder::new();
        let s0 = sb.intern("a");
        let s1 = sb.intern("b");
        sb.grant(n[0], s0);
        sb.grant(n[2], s1);
        let idx = sb.build(4);
        let engine = Discovery::new(g, idx).unwrap();
        let project = Project::new(vec![s0, s1]);

        let front = discover_pareto(&engine, &project, &[0.2, 0.8], 3).unwrap();
        assert!(!front.is_empty());
        for t in &front {
            assert!(t.team.covers(&project));
        }
        // Ascending CC ordering.
        for w in front.windows(2) {
            assert!(w[0].score.cc <= w[1].score.cc);
        }
    }
}
