//! Algorithm 1 — the greedy team finder — and the [`Discovery`] engine
//! wrapping it.
//!
//! ## Algorithm 1 (paper, §3.2)
//!
//! For every node `r` of the network as a candidate **root**: for each
//! required skill `si`, pick the holder `v ∈ C(si)` minimizing the
//! (strategy-adjusted) `DIST(r, v)`; the root's team cost is the sum of the
//! chosen distances; keep the best `k` roots in a bounded list. `DIST` is
//! answered by a 2-hop-cover (pruned landmark labeling) oracle, making each
//! query near-constant and the whole scan `O(N · t · |Cmax|)`.
//!
//! The scan is batched per root: each worker owns a reusable
//! [`SourceScatter`] scratch, scatters the root's label once, and answers
//! all `t · |C(si)|` holder lookups as one-to-many scans over the flat CSR
//! label store — the root-side label walk is paid once per root instead of
//! once per holder query.
//!
//! ## One algorithm, three objectives
//!
//! * **CC** runs on the (normalized) original graph; `DIST` is the plain
//!   shortest-path distance.
//! * **CA-CC(γ)** runs on the transformed graph `G'`
//!   ([`crate::transform`]), replacing `DIST(r, v)` by
//!   `DIST(r, v) − γ·ā'(v)` (the holder `v` must not pay connector
//!   authority).
//! * **SA-CA-CC(γ, λ)** runs on the same `G'`, replacing `DIST(r, v)` by
//!   `(1−λ)·(DIST(r, v) − γ·ā'(v)) + λ·ā'(v)`.
//!
//! In every case, if the root itself holds `si`, `DIST` is zero and the
//! skill is assigned to the root.
//!
//! ## From root scan to teams
//!
//! The scan ranks `(root, assignment)` candidates by the algorithm cost
//! (sum of adjusted distances). The best candidates are then
//! **materialized**: one Dijkstra on the ranking graph from the root,
//! paths to all assigned holders, union = the team tree (shortest paths in
//! `G'` deliberately route through high-authority connectors). Exact
//! objective scores (Definitions 2–6) are recomputed on the materialized
//! tree against the *original* graph weights. Duplicated member sets
//! (different roots growing the same team) are deduplicated, which is why
//! the scan oversamples `k`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::RwLock;

use atd_distance::{
    BuildConfig as PllBuildConfig, BuildProfile, IncrementalError, IncrementalReport,
    IndexLoadMode, LabelStats, PrunedLandmarkLabeling, RetryPolicy, SourceScatter, VertexOrder,
};
use atd_graph::{dijkstra_with_targets, ExpertGraph, NodeId, SubTree};

use crate::cancel::CancelToken;
use crate::error::DiscoveryError;
use crate::normalize::Normalization;
use crate::objectives::{score_team, DuplicatePolicy};
use crate::skills::{Project, SkillIndex};
use crate::strategy::Strategy;
use crate::team::{ScoredTeam, Team};
use crate::topk::BoundedTopK;
use crate::transform::authority_transform;

/// Tuning knobs for the [`Discovery`] engine.
#[derive(Clone, Debug)]
pub struct DiscoveryOptions {
    /// Zero-guard for authority inversion (see [`Normalization`]).
    pub min_authority: f64,
    /// How `SA` counts an expert covering several skills.
    pub duplicate_policy: DuplicatePolicy,
    /// Worker threads for the root scan (`None` = available parallelism).
    pub threads: Option<usize>,
    /// How many extra candidates (multiples of `k`) to materialize before
    /// deduplication; ≥ 1.
    pub oversample: usize,
    /// Post-process materialized teams with
    /// [`Team::pruned`](crate::team::Team::pruned), removing dangling
    /// connector chains (a strict improvement over the paper's verbatim
    /// Algorithm 1; off by default for faithfulness — see the ablation
    /// bench).
    pub prune_dangling_connectors: bool,
    /// PLL index construction settings: worker threads + rank-batch size
    /// for the batch-synchronous parallel builder, plus the label storage
    /// backend (flat CSR or delta+varint hub ranks × flat `f64` or
    /// dictionary-coded distances — `LabelStorage::{Csr, Compressed,
    /// CsrDict, CompressedDict}`). The produced labels are bit-identical
    /// regardless, so threads/batch only tune cold-start time and storage
    /// only trades index memory against per-entry decode work on the
    /// scan.
    pub pll_build: PllBuildConfig,
    /// Load-or-build persistence for the base (CC) PLL index. When set,
    /// engine construction first tries to load the index from this path;
    /// a file whose snapshot fingerprint matches the normalized graph
    /// (and whose backend matches `pll_build.storage`) skips the build
    /// entirely — restart cost becomes `O(index bytes)`. A missing,
    /// stale, corrupt, or differently-encoded file triggers the normal
    /// build, whose result is then saved to this path for the next start.
    /// Loaded and built indexes are bit-identical, so discovery results
    /// never depend on which path ran. Transformed (γ) indexes get the
    /// same treatment via per-γ sidecar files next to this path (see
    /// [`Discovery::gamma_index_path`]), so CA-CC / SA-CA-CC engines
    /// also stop rebuilding on cold start. Opening an engine with a path
    /// also sweeps orphaned `.tmp.<pid>.<seq>` files that a crashed save
    /// left next to it ([`atd_distance::persist::sweep_orphaned_tmp`]).
    pub pll_index_path: Option<PathBuf>,
    /// With `pll_index_path` set, require the index to **load** — never
    /// fall back to a rebuild. A missing, stale, corrupt, or
    /// wrong-backend file surfaces as [`DiscoveryError::IndexLoad`]
    /// instead of silently paying a build. This is the snapshot-swap
    /// contract of a serving layer: a background reload must *fail*
    /// (keeping the old snapshot) rather than block a swap thread on an
    /// unplanned multi-second rebuild.
    pub pll_load_only: bool,
    /// How `pll_index_path` loads materialize the index:
    /// [`IndexLoadMode::Owned`] (default) decodes the file into owned
    /// storage with full structural validation, while
    /// [`IndexLoadMode::Mmap`] memory-maps it and borrows the label
    /// planes straight from the page cache — zero decode, zero copy for
    /// format-v2 files (v1 files transparently fall back to the owned
    /// decode). Queries are bit-identical either way; mmap trades load
    /// time and private RSS for checksum-level (rather than per-entry)
    /// validation and query-time page-ins. Applies to the base index and
    /// the per-γ sidecars alike; saves are unaffected (a save from an
    /// mmap-loaded engine copies on write, never touching the mapping).
    pub pll_load_mode: IndexLoadMode,
    /// Retry policy for the persistence I/O of the cold start (the
    /// index load, and the save-after-build). Only transient I/O errors
    /// are retried; structural failures (stale/corrupt files) keep
    /// their load-or-build semantics. Default: 3 attempts, 10 ms → 20 ms
    /// capped backoff.
    pub pll_retry: RetryPolicy,
}

impl Default for DiscoveryOptions {
    fn default() -> Self {
        DiscoveryOptions {
            min_authority: Normalization::DEFAULT_MIN_AUTHORITY,
            duplicate_policy: DuplicatePolicy::default(),
            threads: None,
            oversample: 4,
            prune_dangling_connectors: false,
            pll_build: PllBuildConfig::default(),
            pll_index_path: None,
            pll_load_only: false,
            pll_load_mode: IndexLoadMode::default(),
            pll_retry: RetryPolicy::default(),
        }
    }
}

/// A ranking graph (original-normalized or transformed) plus its distance
/// index.
struct RankingContext {
    graph: ExpertGraph,
    pll: PrunedLandmarkLabeling,
    /// Whether the index came off disk instead of being built (the
    /// load-or-build cold start of `DiscoveryOptions::pll_index_path`).
    loaded_from_disk: bool,
}

impl RankingContext {
    fn build(graph: ExpertGraph, config: &PllBuildConfig) -> Self {
        let pll = PrunedLandmarkLabeling::build_with_config(&graph, VertexOrder::default(), config);
        RankingContext {
            graph,
            pll,
            loaded_from_disk: false,
        }
    }

    /// The load-or-build cold start: load the index from `path` when its
    /// snapshot fingerprint matches `graph` and its storage backend
    /// matches `options.pll_build.storage`; otherwise build normally and
    /// save the result to `path`. Both the load and the save run under
    /// `options.pll_retry` (transient I/O retried with capped backoff).
    ///
    /// Failure handling is graceful in both directions: a load failure
    /// silently falls back to the build (unless `options.pll_load_only`,
    /// which turns it into [`DiscoveryError::IndexLoad`] — the strict
    /// mode a snapshot-swap thread wants), and a **save** failure after
    /// a successful build degrades to a recorded warning (the second
    /// tuple element) — the in-memory index is fine, so a read-only
    /// index directory must not kill the run.
    /// [`DiscoveryOptions::pll_load_mode`] dispatch: decode into owned
    /// storage or memory-map and borrow, under the same retry policy.
    fn load_index(
        path: &Path,
        graph: &ExpertGraph,
        options: &DiscoveryOptions,
    ) -> Result<PrunedLandmarkLabeling, atd_distance::PersistError> {
        match options.pll_load_mode {
            IndexLoadMode::Owned => {
                PrunedLandmarkLabeling::load_from_with_retry(path, graph, &options.pll_retry)
            }
            IndexLoadMode::Mmap => {
                PrunedLandmarkLabeling::load_mmap_with_retry(path, graph, &options.pll_retry)
            }
        }
    }

    fn load_or_build(
        graph: ExpertGraph,
        options: &DiscoveryOptions,
        path: &Path,
    ) -> Result<(Self, Option<String>), DiscoveryError> {
        // Startup hygiene: reclaim temp files a crashed save orphaned
        // next to the index (dead-writer-only, so a concurrent saver in
        // another process is never raced).
        atd_distance::persist::sweep_orphaned_tmp(path);
        let config = &options.pll_build;
        match Self::load_index(path, &graph, options) {
            Ok(pll) if pll.storage() == config.storage => {
                return Ok((
                    RankingContext {
                        graph,
                        pll,
                        loaded_from_disk: true,
                    },
                    None,
                ));
            }
            Ok(pll) if options.pll_load_only => {
                return Err(DiscoveryError::IndexLoad(format!(
                    "{}: storage backend mismatch (file has {:?}, engine wants {:?})",
                    path.display(),
                    pll.storage(),
                    config.storage
                )));
            }
            Err(e) if options.pll_load_only => {
                return Err(DiscoveryError::IndexLoad(format!(
                    "{} ({e})",
                    path.display()
                )));
            }
            Ok(_) | Err(_) => {}
        }
        let ctx = RankingContext::build(graph, config);
        let warning = ctx
            .pll
            .save_to_with_retry(path, &ctx.graph, &options.pll_retry)
            .err()
            .map(|e| {
                format!(
                    "index save to {} failed: {e}; serving from the in-memory \
                     index (the next cold start will rebuild)",
                    path.display()
                )
            });
        Ok((ctx, warning))
    }

    /// Sidecar variant of the cold start used for transformed (γ)
    /// indexes — infallible by design. γ contexts are derived data, so
    /// `pll_load_only` strictness stays a base-index contract: any load
    /// failure (missing, stale, corrupt, wrong backend) falls back to
    /// the build, and the save-after-build is best-effort (a read-only
    /// index directory must not poison an otherwise healthy query path).
    fn load_or_build_sidecar(graph: ExpertGraph, options: &DiscoveryOptions, path: &Path) -> Self {
        atd_distance::persist::sweep_orphaned_tmp(path);
        if let Ok(pll) = Self::load_index(path, &graph, options) {
            if pll.storage() == options.pll_build.storage {
                return RankingContext {
                    graph,
                    pll,
                    loaded_from_disk: true,
                };
            }
        }
        let ctx = RankingContext::build(graph, &options.pll_build);
        let _ = ctx
            .pll
            .save_to_with_retry(path, &ctx.graph, &options.pll_retry);
        ctx
    }
}

/// One root-scan candidate: where to grow the team from and who covers
/// what.
#[derive(Clone, Debug)]
struct Candidate {
    root: NodeId,
    assignment: Vec<(crate::skills::SkillId, NodeId)>,
}

/// Best-so-far outcome of an **anytime** search
/// ([`Discovery::top_k_anytime`]).
///
/// Algorithm 1 improves monotonically as more rank-ordered roots are
/// scanned, so work done before a deadline expires is a bounded-quality
/// answer, not waste. The bound is explicit: `roots_scanned` of
/// `total_roots` candidate roots were evaluated before the search
/// stopped, and `exhausted` says whether anything was left undone.
///
/// **Determinism contract:** a result with `exhausted == true` is
/// bit-identical to [`Discovery::top_k`] on the same engine (the anytime
/// scan is the sequential scan). Two runs with the same explicit root
/// budget produce bit-identical partials. Two runs stopped by a
/// *wall-clock* deadline are **not** reproducible — the poll that trips
/// depends on timing — which is why degraded serving responses carry
/// their `roots_scanned` bound instead of pretending to be canonical.
#[derive(Debug, Clone)]
pub struct PartialResult {
    /// The best teams found so far, sorted by exact objective exactly as
    /// [`Discovery::top_k`] sorts a complete answer. May be empty when
    /// the search stopped before materializing anything.
    pub teams: Vec<ScoredTeam>,
    /// Candidate roots evaluated before the search stopped.
    pub roots_scanned: usize,
    /// Total candidate roots in the network (the scan's full extent).
    pub total_roots: usize,
    /// `true` iff the search ran to completion — every root scanned and
    /// every surviving candidate materialized. Such a result is the
    /// complete, canonical answer.
    pub exhausted: bool,
}

impl PartialResult {
    /// Whether this answer is degraded (stopped early) rather than the
    /// complete canonical one.
    pub fn is_degraded(&self) -> bool {
        !self.exhausted
    }
}

/// Reusable per-caller query scratch for
/// [`Discovery::top_k_with`] — the per-worker-scratch pattern of the
/// parallel root scan, promoted to an API so a long-lived serving
/// worker pays the scatter allocation once instead of once per request.
///
/// Holds one [`SourceScatter`] per ranking context (the base CC index,
/// plus one per `γ` a query has touched). A scratch is bound to nothing:
/// every use revalidates that the cached scatter's size matches the
/// engine's index and transparently reallocates when it doesn't, so one
/// scratch object can serve across hot-swapped index snapshots. After a
/// caught panic mid-query, drop the scratch (or call
/// [`QueryScratch::clear`]) — a half-loaded scatter must not be reused.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Scatter per ranking context, keyed by `γ.to_bits()` (`u64::MAX`
    /// for the untransformed base index — `γ ∈ [0, 1]` never has those
    /// bits).
    scatters: HashMap<u64, SourceScatter>,
}

impl QueryScratch {
    /// An empty scratch; scatters are allocated lazily per context.
    pub fn new() -> QueryScratch {
        QueryScratch::default()
    }

    /// Drops all cached scatters (they re-allocate on next use).
    pub fn clear(&mut self) {
        self.scatters.clear();
    }

    /// The scatter for the context keyed by `key`, (re)allocated when
    /// missing or sized for a different index.
    fn scatter_for(&mut self, key: u64, pll: &PrunedLandmarkLabeling) -> &mut SourceScatter {
        let wanted = pll.labels().num_nodes();
        self.scatters
            .entry(key)
            .and_modify(|s| {
                if s.num_ranks() != wanted {
                    *s = pll.scatter();
                }
            })
            .or_insert_with(|| pll.scatter())
    }
}

/// The team-discovery engine: owns the expert network, its skill index,
/// normalization, and the distance indices (built lazily per `γ`).
pub struct Discovery {
    graph: Arc<ExpertGraph>,
    skills: Arc<SkillIndex>,
    norm: Normalization,
    options: DiscoveryOptions,
    /// Index for CC (normalized original weights).
    base: Arc<RankingContext>,
    /// Indices for CA-CC / SA-CA-CC, keyed by `γ.to_bits()`.
    transformed: RwLock<HashMap<u64, Arc<RankingContext>>>,
    /// Warning recorded when the load-or-build cold start built an index
    /// but could not save it to `pll_index_path` (the run continues on
    /// the in-memory index).
    persist_warning: Option<String>,
}

impl Discovery {
    /// Builds the engine with default options. This constructs the PLL
    /// index for the CC objective eagerly (the paper's indexing step).
    pub fn new(graph: ExpertGraph, skills: SkillIndex) -> Result<Self, DiscoveryError> {
        Self::with_options(graph, skills, DiscoveryOptions::default())
    }

    /// Builds the engine with explicit options.
    pub fn with_options(
        graph: ExpertGraph,
        skills: SkillIndex,
        options: DiscoveryOptions,
    ) -> Result<Self, DiscoveryError> {
        let norm = Normalization::compute_with_min_authority(&graph, options.min_authority);
        let base_graph = graph.map_weights(|_, _, w| norm.w_bar(w));
        let (base, persist_warning) = match options.pll_index_path.as_deref() {
            Some(path) => RankingContext::load_or_build(base_graph, &options, path)?,
            None => (RankingContext::build(base_graph, &options.pll_build), None),
        };
        Ok(Discovery {
            graph: Arc::new(graph),
            skills: Arc::new(skills),
            norm,
            options,
            base: Arc::new(base),
            transformed: RwLock::new(HashMap::new()),
            persist_warning,
        })
    }

    /// Derives an engine for `new_graph` by incrementally patching this
    /// engine's base PLL index instead of rebuilding it — valid only for
    /// deltas that keep the node set, the normalization scale, and the
    /// vertex order, and that only lower normalized distances (the
    /// typical reinforce-collaboration mutation). The resulting engine is
    /// **bit-identical** to `Discovery::with_options(new_graph, skills,
    /// options)` in its base index, so downstream `top_k` results carry
    /// the exact same float bits.
    ///
    /// On any [`IncrementalError`] the caller should fall back to a full
    /// rebuild; `self` is untouched either way. The returned engine holds
    /// no `pll_index_path` (it was never persisted) and an empty γ cache
    /// (transformed indexes depend on authorities, which the delta may
    /// have changed).
    pub fn try_incremental(
        &self,
        new_graph: ExpertGraph,
        skills: SkillIndex,
    ) -> Result<(Discovery, IncrementalReport), IncrementalError> {
        if new_graph.num_nodes() != self.graph.num_nodes() {
            return Err(IncrementalError::NodeCountChanged);
        }
        let norm =
            Normalization::compute_with_min_authority(&new_graph, self.options.min_authority);
        // w̄ = w / w_scale: a scale change rescales every normalized
        // weight at once, which no per-edge patch can express.
        if norm.w_scale().to_bits() != self.norm.w_scale().to_bits() {
            return Err(IncrementalError::ScaleChanged);
        }
        let new_base = new_graph.map_weights(|_, _, w| norm.w_bar(w));
        let (pll, report) = atd_distance::incremental::refresh(
            &self.base.pll,
            &self.base.graph,
            &new_base,
            VertexOrder::default(),
            &self.options.pll_build,
        )?;
        let mut options = self.options.clone();
        options.pll_index_path = None;
        options.pll_load_only = false;
        Ok((
            Discovery {
                graph: Arc::new(new_graph),
                skills: Arc::new(skills),
                norm,
                options,
                base: Arc::new(RankingContext {
                    graph: new_base,
                    pll,
                    loaded_from_disk: false,
                }),
                transformed: RwLock::new(HashMap::new()),
                persist_warning: None,
            },
            report,
        ))
    }

    /// The original expert network.
    pub fn graph(&self) -> &ExpertGraph {
        &self.graph
    }

    /// The skill index.
    pub fn skills(&self) -> &SkillIndex {
        &self.skills
    }

    /// The normalization in effect.
    pub fn normalization(&self) -> &Normalization {
        &self.norm
    }

    /// The duplicate policy used when scoring `SA`.
    pub fn duplicate_policy(&self) -> DuplicatePolicy {
        self.options.duplicate_policy
    }

    /// Construction profile of the base (CC) distance index — how the
    /// cold-start cost split across batch searches, merges and repairs.
    pub fn pll_profile(&self) -> &BuildProfile {
        self.base.pll.build_profile()
    }

    /// Label statistics of the base (CC) distance index, including the
    /// physical byte footprint of the configured storage backend
    /// (`DiscoveryOptions::pll_build.storage`).
    pub fn pll_stats(&self) -> LabelStats {
        self.base.pll.stats()
    }

    /// Whether the base (CC) index was loaded from
    /// `DiscoveryOptions::pll_index_path` instead of being built —
    /// `false` when no path was configured or the file was
    /// missing/stale/corrupt (all of which trigger a build-and-save).
    pub fn pll_index_loaded(&self) -> bool {
        self.base.loaded_from_disk
    }

    /// Whether the base (CC) index's label planes are borrowed from a
    /// memory-mapped index file instead of owned — `true` only when the
    /// engine loaded a format-v2 file under
    /// [`IndexLoadMode::Mmap`](DiscoveryOptions::pll_load_mode). Every
    /// mutation path (incremental refresh, checkpoint saves) copies on
    /// write, so a `true` here never means the file itself is at risk.
    pub fn pll_index_zero_copy(&self) -> bool {
        self.base.pll.labels().is_zero_copy()
    }

    /// The warning recorded when the cold start built the index but
    /// could not **save** it to `DiscoveryOptions::pll_index_path`
    /// (e.g. a read-only index directory). The engine is fully
    /// functional on its in-memory index; surfacing this lets an
    /// operator learn the next start will rebuild. `None` when no path
    /// was configured, the index loaded, or the save succeeded.
    pub fn pll_persist_warning(&self) -> Option<&str> {
        self.persist_warning.as_deref()
    }

    /// Saves the base (CC) index to `path` in the versioned on-disk
    /// format (`atd_distance::persist`), fingerprinted with the
    /// normalized ranking graph so a later
    /// `DiscoveryOptions::pll_index_path` start can load it.
    pub fn save_pll_index(&self, path: &Path) -> Result<(), DiscoveryError> {
        self.base
            .pll
            .save_to(path, &self.base.graph)
            .map_err(|e| DiscoveryError::IndexPersist(format!("{} ({e})", path.display())))
    }

    /// Eagerly builds (and caches) the transformed index for `γ`. Useful
    /// for benchmarks that must separate index construction from query
    /// time.
    pub fn prepare_gamma(&self, gamma: f64) -> Result<(), DiscoveryError> {
        Strategy::CaCc { gamma }.validate()?;
        let _ = self.context_for(Some(gamma));
        Ok(())
    }

    /// The sidecar path where the transformed index for `gamma` is
    /// persisted: `<pll_index_path>.g<γ bits as 16 hex digits>`, derived
    /// from the exact `f64` bit pattern so distinct γ values can never
    /// collide. `None` when no `pll_index_path` is configured (γ indexes
    /// then stay in-memory only, as before).
    pub fn gamma_index_path(&self, gamma: f64) -> Option<PathBuf> {
        let base = self.options.pll_index_path.as_ref()?;
        let mut p = base.as_os_str().to_os_string();
        p.push(format!(".g{:016x}", gamma.to_bits()));
        Some(PathBuf::from(p))
    }

    /// Whether the cached transformed index for `gamma` came off its
    /// sidecar file instead of being built. `false` when the context has
    /// not been touched yet, no index path is configured, or the sidecar
    /// was missing/stale (which triggered a build-and-save).
    pub fn gamma_index_loaded(&self, gamma: f64) -> bool {
        self.transformed
            .read()
            .get(&gamma.to_bits())
            .is_some_and(|ctx| ctx.loaded_from_disk)
    }

    fn context_for(&self, gamma: Option<f64>) -> Arc<RankingContext> {
        match gamma {
            None => Arc::clone(&self.base),
            Some(g) => {
                let key = g.to_bits();
                if let Some(ctx) = self.transformed.read().get(&key) {
                    return Arc::clone(ctx);
                }
                let gp = authority_transform(&self.graph, &self.norm, g);
                let ctx = match self.gamma_index_path(g) {
                    Some(path) => RankingContext::load_or_build_sidecar(gp, &self.options, &path),
                    None => RankingContext::build(gp, &self.options.pll_build),
                };
                let ctx = Arc::new(ctx);
                self.transformed.write().insert(key, Arc::clone(&ctx));
                ctx
            }
        }
    }

    /// Applies the strategy's authority adjustment to a raw distance.
    #[inline]
    fn adjust(&self, strategy: Strategy, d: f64, v: NodeId) -> f64 {
        match strategy {
            Strategy::Cc => d,
            Strategy::CaCc { gamma } => d - gamma * self.norm.a_bar(v),
            Strategy::SaCaCc { gamma, lambda } => {
                (1.0 - lambda) * (d - gamma * self.norm.a_bar(v)) + lambda * self.norm.a_bar(v)
            }
        }
    }

    /// Runs Algorithm 1's inner loop for one root, returning the candidate
    /// and its algorithm cost (or `None` when some skill is unreachable
    /// from this root).
    ///
    /// The root's label is scattered into `scatter` **once**; all
    /// `t · |C(s)|` holder lookups are then one-to-many scans
    /// ([`PrunedLandmarkLabeling::query_one_to_many`]) instead of
    /// independent merge-joins, eliminating the repeated root-side label
    /// walk. Skill-holder lists are in ascending node-id order
    /// ([`SkillIndex`] builds them that way), so the `<` tie-break makes
    /// the scan deterministic regardless of thread count.
    fn evaluate_root(
        &self,
        strategy: Strategy,
        pll: &PrunedLandmarkLabeling,
        scatter: &mut SourceScatter,
        project: &Project,
        root: NodeId,
    ) -> Option<(f64, Candidate)> {
        pll.load_source(scatter, root);
        let mut cost = 0.0;
        let mut assignment = Vec::with_capacity(project.len());
        for &s in project.skills() {
            // "If root contains skill si, DIST is set to zero and si is
            // assigned to root."
            if self.skills.has_skill(root, s) {
                assignment.push((s, root));
                continue;
            }
            let mut best: Option<(f64, NodeId)> = None;
            for &v in self.skills.holders(s) {
                if let Some(d) = pll.query_one_to_many(scatter, v) {
                    let adj = self.adjust(strategy, d, v);
                    let better = match best {
                        None => true,
                        // Deterministic tie-break on node id.
                        Some((bc, bv)) => adj < bc || (adj == bc && v < bv),
                    };
                    if better {
                        best = Some((adj, v));
                    }
                }
            }
            let (c, v) = best?;
            cost += c;
            assignment.push((s, v));
        }
        Some((cost, Candidate { root, assignment }))
    }

    /// Scans every root in parallel, returning the best `limit` candidates
    /// by algorithm cost.
    ///
    /// `cancel` is polled once per root (cooperative cancellation — the
    /// greedy search loop's deadline hook); a cancelled scan returns
    /// [`DiscoveryError::Cancelled`] promptly instead of finishing the
    /// remaining roots. `scatter`, when given, is the caller's reusable
    /// scratch (see [`QueryScratch`]); otherwise a fresh one is
    /// allocated (sequential path) or one per worker (parallel path).
    fn scan_roots(
        &self,
        strategy: Strategy,
        pll: &PrunedLandmarkLabeling,
        project: &Project,
        limit: usize,
        cancel: &CancelToken,
        scatter: Option<&mut SourceScatter>,
    ) -> Result<Vec<(f64, Candidate)>, DiscoveryError> {
        let n = self.graph.num_nodes();
        let threads = self
            .options
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
            .clamp(1, n.max(1));

        if threads <= 1 || n < 256 {
            let mut owned;
            let scatter = match scatter {
                Some(s) => s,
                None => {
                    owned = pll.scatter();
                    &mut owned
                }
            };
            let mut local = BoundedTopK::new(limit);
            for i in 0..n {
                if cancel.is_cancelled() {
                    return Err(DiscoveryError::Cancelled);
                }
                let root = NodeId::from_index(i);
                if let Some((cost, cand)) =
                    self.evaluate_root(strategy, pll, scatter, project, root)
                {
                    local.offer(cost, cand);
                }
            }
            return Ok(local.into_sorted());
        }

        let mut merged = BoundedTopK::new(limit);
        let lists = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let pll_ref = &*pll;
                let project_ref = project;
                let this = &*self;
                handles.push(scope.spawn(move || {
                    // One scatter scratch per worker, reused across all of
                    // its roots.
                    let mut scatter = pll_ref.scatter();
                    let mut local = BoundedTopK::new(limit);
                    // Strided partition keeps per-thread work balanced even
                    // when expensive roots cluster by id.
                    let mut i = t;
                    while i < n {
                        // Every worker polls; one cancelled worker's
                        // early exit makes the whole scan abort below.
                        if cancel.is_cancelled() {
                            break;
                        }
                        let root = NodeId::from_index(i);
                        if let Some((cost, cand)) =
                            this.evaluate_root(strategy, pll_ref, &mut scatter, project_ref, root)
                        {
                            local.offer(cost, cand);
                        }
                        i += threads;
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("root-scan worker panicked"))
                .collect::<Vec<_>>()
        });
        if cancel.is_cancelled() {
            return Err(DiscoveryError::Cancelled);
        }
        for l in lists {
            merged.merge(l);
        }
        Ok(merged.into_sorted())
    }

    /// Materializes a candidate into a concrete team: one Dijkstra on the
    /// ranking graph, paths to all assigned holders, tree weights taken
    /// from the original graph.
    fn materialize(&self, ranking_graph: &ExpertGraph, cand: &Candidate) -> Option<Team> {
        let holders: Vec<NodeId> = cand.assignment.iter().map(|&(_, v)| v).collect();
        let tree = if holders.iter().all(|&h| h == cand.root) {
            SubTree::singleton(cand.root)
        } else {
            let sp = dijkstra_with_targets(ranking_graph, cand.root, Some(&holders));
            let mut paths = Vec::with_capacity(holders.len());
            for &h in &holders {
                paths.push(sp.path_to(h)?);
            }
            SubTree::from_paths(&self.graph, cand.root, &paths).ok()?
        };
        let team = Team::new(tree, cand.assignment.clone());
        Some(if self.options.prune_dangling_connectors {
            team.pruned()
        } else {
            team
        })
    }

    /// Finds the top-`k` teams for `project` under `strategy`.
    ///
    /// The root scan ranks candidates by Algorithm 1's internal cost (the
    /// paper's list `L`); the oversampled survivors are materialized,
    /// deduplicated by member set, and the final top-`k` is ordered by the
    /// **exact recomputed objective** (ties broken by algorithm cost), so
    /// the first team is always the best one actually found.
    pub fn top_k(
        &self,
        project: &Project,
        strategy: Strategy,
        k: usize,
    ) -> Result<Vec<ScoredTeam>, DiscoveryError> {
        self.top_k_with(project, strategy, k, None, &CancelToken::never())
    }

    /// [`top_k`](Discovery::top_k) with the hooks a serving layer needs:
    /// a reusable per-caller [`QueryScratch`] (avoids the `O(n)` scatter
    /// allocation per query on the sequential path) and a [`CancelToken`]
    /// polled once per scanned root and per materialized candidate.
    ///
    /// Results are bit-identical to the plain entry point — scratch reuse
    /// and cancellation change *when* the search stops, never what a
    /// completed search returns. A cancelled call returns
    /// [`DiscoveryError::Cancelled`] and no partial teams.
    pub fn top_k_with(
        &self,
        project: &Project,
        strategy: Strategy,
        k: usize,
        scratch: Option<&mut QueryScratch>,
        cancel: &CancelToken,
    ) -> Result<Vec<ScoredTeam>, DiscoveryError> {
        strategy.validate()?;
        if project.is_empty() {
            return Err(DiscoveryError::EmptyProject);
        }
        for &s in project.skills() {
            if self.skills.holders(s).is_empty() {
                return Err(DiscoveryError::UncoverableSkill(s));
            }
        }
        if k == 0 {
            return Ok(Vec::new());
        }
        if cancel.is_cancelled() {
            return Err(DiscoveryError::Cancelled);
        }

        let ctx = self.context_for(strategy.gamma());
        let limit = k.saturating_mul(self.options.oversample.max(1)).max(k);
        let key = strategy.gamma().map(f64::to_bits).unwrap_or(u64::MAX);
        let scatter = scratch.map(|s| s.scatter_for(key, &ctx.pll));
        let ranked = self.scan_roots(strategy, &ctx.pll, project, limit, cancel, scatter)?;
        if ranked.is_empty() {
            return Err(DiscoveryError::NoTeamFound);
        }

        let mut out: Vec<ScoredTeam> = Vec::with_capacity(ranked.len());
        let mut seen: std::collections::HashSet<Vec<NodeId>> = std::collections::HashSet::new();
        for (cost, cand) in ranked {
            if cancel.is_cancelled() {
                return Err(DiscoveryError::Cancelled);
            }
            let Some(team) = self.materialize(&ctx.graph, &cand) else {
                continue;
            };
            if !seen.insert(team.member_key()) {
                continue;
            }
            let score = score_team(&self.norm, &team, self.options.duplicate_policy);
            let objective = strategy.objective(&score);
            out.push(ScoredTeam {
                team,
                score,
                objective,
                algorithm_cost: cost,
            });
        }
        if out.is_empty() {
            return Err(DiscoveryError::NoTeamFound);
        }
        out.sort_by(|a, b| {
            a.objective
                .total_cmp(&b.objective)
                .then(a.algorithm_cost.total_cmp(&b.algorithm_cost))
        });
        out.truncate(k);
        Ok(out)
    }

    /// Anytime variant of [`top_k_with`](Discovery::top_k_with): deadline
    /// expiry (or an explicit cancel) returns the **best answer found so
    /// far** instead of [`DiscoveryError::Cancelled`].
    ///
    /// The scan always runs sequentially in ascending root order —
    /// regardless of `DiscoveryOptions::threads` — so `roots_scanned` is
    /// exact and a fixed `root_budget` yields bit-identical partials
    /// across runs. `root_budget` caps the scan to the first `n` roots
    /// (a serving layer's brownout knob); `None` scans everything the
    /// token allows.
    ///
    /// Outcomes:
    ///
    /// * ran to completion → `exhausted == true`, bit-identical to
    ///   [`top_k`](Discovery::top_k) on a sequential-scan engine;
    /// * stopped early with teams in hand → `Ok` partial,
    ///   `exhausted == false`;
    /// * stopped early with nothing materialized yet → `Ok` partial with
    ///   empty `teams` (still flagged unexhausted — the caller knows the
    ///   search barely started);
    /// * ran to completion finding nothing →
    ///   [`DiscoveryError::NoTeamFound`], exactly like `top_k`;
    /// * invalid input (empty project, uncoverable skill, bad γ/λ) →
    ///   the same validation errors as `top_k`, *never* a partial.
    pub fn top_k_anytime(
        &self,
        project: &Project,
        strategy: Strategy,
        k: usize,
        scratch: Option<&mut QueryScratch>,
        cancel: &CancelToken,
        root_budget: Option<usize>,
    ) -> Result<PartialResult, DiscoveryError> {
        strategy.validate()?;
        if project.is_empty() {
            return Err(DiscoveryError::EmptyProject);
        }
        for &s in project.skills() {
            if self.skills.holders(s).is_empty() {
                return Err(DiscoveryError::UncoverableSkill(s));
            }
        }
        let total_roots = self.graph.num_nodes();
        if k == 0 {
            return Ok(PartialResult {
                teams: Vec::new(),
                roots_scanned: 0,
                total_roots,
                exhausted: true,
            });
        }
        if cancel.is_cancelled() {
            return Ok(PartialResult {
                teams: Vec::new(),
                roots_scanned: 0,
                total_roots,
                exhausted: false,
            });
        }

        let ctx = self.context_for(strategy.gamma());
        let limit = k.saturating_mul(self.options.oversample.max(1)).max(k);
        let key = strategy.gamma().map(f64::to_bits).unwrap_or(u64::MAX);
        let mut owned;
        let scatter = match scratch {
            Some(s) => s.scatter_for(key, &ctx.pll),
            None => {
                owned = ctx.pll.scatter();
                &mut owned
            }
        };

        // Sequential scan over the first `budget` roots, polling the
        // token once per root — on cancel we KEEP the candidates gathered
        // so far instead of erroring out.
        let budget = root_budget.unwrap_or(total_roots).min(total_roots);
        let mut ranked_heap = BoundedTopK::new(limit);
        let mut roots_scanned = 0usize;
        for i in 0..budget {
            if cancel.is_cancelled() {
                break;
            }
            let root = NodeId::from_index(i);
            if let Some((cost, cand)) =
                self.evaluate_root(strategy, &ctx.pll, scatter, project, root)
            {
                ranked_heap.offer(cost, cand);
            }
            roots_scanned += 1;
        }
        let mut exhausted = roots_scanned == total_roots;
        let ranked = ranked_heap.into_sorted();

        // Materialization polls once per candidate; on cancel the teams
        // already materialized are the answer.
        let mut out: Vec<ScoredTeam> = Vec::with_capacity(ranked.len());
        let mut seen: std::collections::HashSet<Vec<NodeId>> = std::collections::HashSet::new();
        for (cost, cand) in ranked {
            if cancel.is_cancelled() {
                exhausted = false;
                break;
            }
            let Some(team) = self.materialize(&ctx.graph, &cand) else {
                continue;
            };
            if !seen.insert(team.member_key()) {
                continue;
            }
            let score = score_team(&self.norm, &team, self.options.duplicate_policy);
            let objective = strategy.objective(&score);
            out.push(ScoredTeam {
                team,
                score,
                objective,
                algorithm_cost: cost,
            });
        }
        if out.is_empty() && exhausted {
            // A *complete* search that found nothing is the same
            // NoTeamFound as top_k; an early-stopped empty answer stays
            // Ok so the caller sees how little was scanned.
            return Err(DiscoveryError::NoTeamFound);
        }
        out.sort_by(|a, b| {
            a.objective
                .total_cmp(&b.objective)
                .then(a.algorithm_cost.total_cmp(&b.algorithm_cost))
        });
        out.truncate(k);
        Ok(PartialResult {
            teams: out,
            roots_scanned,
            total_roots,
            exhausted,
        })
    }

    /// Convenience: the single best team.
    pub fn best(
        &self,
        project: &Project,
        strategy: Strategy,
    ) -> Result<ScoredTeam, DiscoveryError> {
        Ok(self
            .top_k(project, strategy, 1)?
            .into_iter()
            .next()
            .expect("top_k(1) returns one team on success"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skills::SkillIndexBuilder;
    use atd_graph::GraphBuilder;

    /// The paper's Figure-1-style fixture: two holder pairs joined through
    /// connectors of very different authority, equal raw edge weights.
    ///
    /// ```text
    ///   h_sn_a (SN, auth 9)  - senior (auth 139) - h_tm_a (TM, auth 11)
    ///   h_sn_b (SN, auth 5)  - junior (auth 12)  - h_tm_b (TM, auth 3)
    /// ```
    fn figure1() -> (
        ExpertGraph,
        SkillIndex,
        crate::skills::SkillId,
        crate::skills::SkillId,
    ) {
        let mut b = GraphBuilder::new();
        let h_sn_a = b.add_node(9.0);
        let senior = b.add_node(139.0);
        let h_tm_a = b.add_node(11.0);
        let h_sn_b = b.add_node(5.0);
        let junior = b.add_node(12.0);
        let h_tm_b = b.add_node(3.0);
        b.add_edge(h_sn_a, senior, 1.0).unwrap();
        b.add_edge(senior, h_tm_a, 1.0).unwrap();
        b.add_edge(h_sn_b, junior, 1.0).unwrap();
        b.add_edge(junior, h_tm_b, 1.0).unwrap();
        // A bridge so everything is one component (expensive to cross).
        b.add_edge(senior, junior, 1.0).unwrap();
        let g = b.build().unwrap();

        let mut sb = SkillIndexBuilder::new();
        let sn = sb.intern("social-networks");
        let tm = sb.intern("text-mining");
        sb.grant(h_sn_a, sn);
        sb.grant(h_sn_b, sn);
        sb.grant(h_tm_a, tm);
        sb.grant(h_tm_b, tm);
        let idx = sb.build(g.num_nodes());
        (g, idx, sn, tm)
    }

    fn engine() -> (Discovery, Project) {
        let (g, idx, sn, tm) = figure1();
        let project = Project::new(vec![sn, tm]);
        let d = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions {
                threads: Some(1),
                ..DiscoveryOptions::default()
            },
        )
        .unwrap();
        (d, project)
    }

    #[test]
    fn cc_cannot_distinguish_equal_cost_teams_but_authority_can() {
        let (d, project) = engine();
        // Under CC both teams cost the same; under SA-CA-CC the senior team
        // must win (this is exactly the paper's Figure 1 argument).
        let best = d
            .best(
                &project,
                Strategy::SaCaCc {
                    gamma: 0.6,
                    lambda: 0.6,
                },
            )
            .unwrap();
        assert!(
            best.team.members().contains(&NodeId(1)),
            "the 139-h-index connector should be on the winning team, got {:?}",
            best.team.members()
        );
        assert!(best.team.covers(&project));
    }

    #[test]
    fn every_strategy_returns_covering_trees() {
        let (d, project) = engine();
        for strategy in [
            Strategy::Cc,
            Strategy::CaCc { gamma: 0.6 },
            Strategy::SaCaCc {
                gamma: 0.6,
                lambda: 0.6,
            },
        ] {
            let teams = d.top_k(&project, strategy, 3).unwrap();
            assert!(!teams.is_empty(), "{strategy} found nothing");
            for st in &teams {
                assert!(st.team.covers(&project), "{strategy} returned non-cover");
                st.team.tree.validate().expect("valid tree");
            }
        }
    }

    #[test]
    fn try_incremental_matches_full_rebuild_bitwise() {
        let (g, idx, sn, tm) = figure1();
        let project = Project::new(vec![sn, tm]);
        let options = DiscoveryOptions {
            threads: Some(1),
            ..DiscoveryOptions::default()
        };
        let engine = Discovery::with_options(g.clone(), idx, options.clone()).unwrap();

        // A reinforce delta lowering one edge: degrees and w_max (other
        // unit edges remain) are untouched, so the incremental path must
        // accept it.
        let mut delta = atd_graph::GraphDelta::new();
        delta.reinforce_edge(NodeId(1), NodeId(2), 0.5);
        let new_graph = g.apply_delta(&delta).unwrap();

        let (_, idx2, _, _) = figure1();
        let (inc, report) = engine.try_incremental(new_graph.clone(), idx2).unwrap();
        assert!(report.affected_hubs > 0);

        let (_, idx3, _, _) = figure1();
        let scratch = Discovery::with_options(new_graph, idx3, options).unwrap();
        for strategy in [
            Strategy::Cc,
            Strategy::CaCc { gamma: 0.6 },
            Strategy::SaCaCc {
                gamma: 0.6,
                lambda: 0.6,
            },
        ] {
            let a = inc.top_k(&project, strategy, 3).unwrap();
            let b = scratch.top_k(&project, strategy, 3).unwrap();
            assert_eq!(a.len(), b.len(), "{strategy}: team counts");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.team.member_key(), y.team.member_key(), "{strategy}");
                assert_eq!(
                    x.objective.to_bits(),
                    y.objective.to_bits(),
                    "{strategy}: objective bits"
                );
            }
        }

        // A raised weight must be refused: from the derived engine
        // (edge now 0.5), upserting 0.9 is a genuine increase while the
        // untouched unit edges keep w_scale stable.
        let mut up = atd_graph::GraphDelta::new();
        up.upsert_edge(NodeId(1), NodeId(2), 0.9);
        let raised = inc.graph().apply_delta(&up).unwrap();
        let (_, idx4, _, _) = figure1();
        match inc.try_incremental(raised, idx4) {
            Err(e) => assert_eq!(e, IncrementalError::WeightIncreased),
            Ok(_) => panic!("raised weight must not be accepted incrementally"),
        }
    }

    #[test]
    fn top_k_is_sorted_and_deduplicated() {
        let (d, project) = engine();
        let teams = d.top_k(&project, Strategy::Cc, 5).unwrap();
        for w in teams.windows(2) {
            assert!(w[0].objective <= w[1].objective);
        }
        let mut keys: Vec<_> = teams.iter().map(|t| t.team.member_key()).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "member sets must be unique");
    }

    #[test]
    fn root_holding_skill_assigns_itself() {
        let (d, _) = engine();
        let sn = d.skills().id_of("social-networks").unwrap();
        let project = Project::new(vec![sn]);
        let best = d.best(&project, Strategy::Cc).unwrap();
        // A single-skill project must be solved by a single holder, no
        // connectors and zero cost.
        assert_eq!(best.team.size(), 1);
        assert_eq!(best.score.cc, 0.0);
        assert_eq!(best.algorithm_cost, 0.0);
    }

    #[test]
    fn empty_project_is_rejected() {
        let (d, _) = engine();
        assert_eq!(
            d.top_k(&Project::new(vec![]), Strategy::Cc, 1),
            Err(DiscoveryError::EmptyProject)
        );
    }

    #[test]
    fn uncoverable_skill_is_rejected() {
        let (g, idx, sn, _) = figure1();
        let mut sb = SkillIndexBuilder::new();
        let s0 = sb.intern("social-networks");
        let ghost = sb.intern("quantum-basket-weaving");
        for &h in idx.holders(sn) {
            sb.grant(h, s0);
        }
        let idx2 = sb.build(g.num_nodes());
        let d = Discovery::new(g, idx2).unwrap();
        assert_eq!(
            d.top_k(&Project::new(vec![s0, ghost]), Strategy::Cc, 1),
            Err(DiscoveryError::UncoverableSkill(ghost))
        );
    }

    #[test]
    fn invalid_gamma_is_rejected() {
        let (d, project) = engine();
        assert!(matches!(
            d.top_k(&project, Strategy::CaCc { gamma: 2.0 }, 1),
            Err(DiscoveryError::InvalidTradeoff { .. })
        ));
    }

    #[test]
    fn k_zero_returns_empty() {
        let (d, project) = engine();
        assert!(d.top_k(&project, Strategy::Cc, 0).unwrap().is_empty());
    }

    #[test]
    fn parallel_and_sequential_scans_agree() {
        let (g, idx, sn, tm) = figure1();
        let project = Project::new(vec![sn, tm]);
        let seq = Discovery::with_options(
            g.clone(),
            idx.clone(),
            DiscoveryOptions {
                threads: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        let par = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions {
                threads: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        for strategy in [
            Strategy::Cc,
            Strategy::SaCaCc {
                gamma: 0.6,
                lambda: 0.4,
            },
        ] {
            let a = seq.top_k(&project, strategy, 3).unwrap();
            let b = par.top_k(&project, strategy, 3).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.team.member_key(), y.team.member_key());
                assert!((x.objective - y.objective).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn parallel_index_build_yields_identical_teams() {
        // The batch-parallel PLL build is bit-identical to the sequential
        // one, so every downstream result must match exactly — not just
        // approximately.
        let (g, idx, sn, tm) = figure1();
        let project = Project::new(vec![sn, tm]);
        let seq = Discovery::with_options(
            g.clone(),
            idx.clone(),
            DiscoveryOptions {
                threads: Some(1),
                pll_build: PllBuildConfig::sequential(),
                ..Default::default()
            },
        )
        .unwrap();
        let par = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions {
                threads: Some(1),
                pll_build: PllBuildConfig {
                    threads: Some(4),
                    batch_size: 2,
                    ..PllBuildConfig::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(par.pll_profile().threads, 4);
        assert_eq!(seq.pll_profile().threads, 1);
        for strategy in [
            Strategy::Cc,
            Strategy::SaCaCc {
                gamma: 0.6,
                lambda: 0.6,
            },
        ] {
            let a = seq.top_k(&project, strategy, 3).unwrap();
            let b = par.top_k(&project, strategy, 3).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.team.member_key(), y.team.member_key());
                assert_eq!(x.objective.to_bits(), y.objective.to_bits());
                assert_eq!(x.algorithm_cost.to_bits(), y.algorithm_cost.to_bits());
            }
        }
    }

    #[test]
    fn compressed_label_storage_yields_identical_teams() {
        // The compressed backend answers every DIST query bit-identically
        // to the CSR backend, so top-k discovery must match exactly —
        // same member sets, same objective bits, same algorithm-cost bits.
        use atd_distance::LabelStorage;
        let (g, idx, sn, tm) = figure1();
        let project = Project::new(vec![sn, tm]);
        let csr = Discovery::with_options(
            g.clone(),
            idx.clone(),
            DiscoveryOptions {
                threads: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        let comp = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions {
                threads: Some(1),
                pll_build: PllBuildConfig {
                    storage: LabelStorage::Compressed,
                    ..PllBuildConfig::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let (sa, sb) = (csr.pll_stats(), comp.pll_stats());
        assert_eq!(sa.total_entries, sb.total_entries);
        for strategy in [
            Strategy::Cc,
            Strategy::CaCc { gamma: 0.6 },
            Strategy::SaCaCc {
                gamma: 0.6,
                lambda: 0.6,
            },
        ] {
            let a = csr.top_k(&project, strategy, 3).unwrap();
            let b = comp.top_k(&project, strategy, 3).unwrap();
            assert_eq!(a.len(), b.len(), "{strategy}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.team.member_key(), y.team.member_key());
                assert_eq!(x.objective.to_bits(), y.objective.to_bits());
                assert_eq!(x.algorithm_cost.to_bits(), y.algorithm_cost.to_bits());
            }
        }
    }

    #[test]
    fn dict_label_storage_yields_identical_teams() {
        // The dictionary distance plane decodes every distance to the
        // identical f64 bit pattern, so top-k discovery through either
        // dict backend must match the CSR engine exactly — same member
        // sets, same objective bits, same algorithm-cost bits.
        use atd_distance::LabelStorage;
        let (g, idx, sn, tm) = figure1();
        let project = Project::new(vec![sn, tm]);
        let csr = Discovery::with_options(
            g.clone(),
            idx.clone(),
            DiscoveryOptions {
                threads: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        for storage in [LabelStorage::CsrDict, LabelStorage::CompressedDict] {
            let dict = Discovery::with_options(
                g.clone(),
                idx.clone(),
                DiscoveryOptions {
                    threads: Some(1),
                    pll_build: PllBuildConfig {
                        storage,
                        ..PllBuildConfig::default()
                    },
                    ..Default::default()
                },
            )
            .unwrap();
            let (sa, sb) = (csr.pll_stats(), dict.pll_stats());
            assert_eq!(sa.total_entries, sb.total_entries);
            assert!(sb.dict_values > 0, "{storage:?} must carry a table");
            assert_eq!(sb.dict_bytes, 8 * sb.dict_values);
            for strategy in [
                Strategy::Cc,
                Strategy::CaCc { gamma: 0.6 },
                Strategy::SaCaCc {
                    gamma: 0.6,
                    lambda: 0.6,
                },
            ] {
                let a = csr.top_k(&project, strategy, 3).unwrap();
                let b = dict.top_k(&project, strategy, 3).unwrap();
                assert_eq!(a.len(), b.len(), "{storage:?} {strategy}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.team.member_key(), y.team.member_key());
                    assert_eq!(x.objective.to_bits(), y.objective.to_bits());
                    assert_eq!(x.algorithm_cost.to_bits(), y.algorithm_cost.to_bits());
                }
            }
        }
    }

    #[test]
    fn persisted_index_round_trip_yields_identical_teams() {
        // Build-and-save, then load-or-build again from the same path:
        // the second engine must load (not rebuild) and answer every
        // top-k query bit-identically; a *different* graph against the
        // same path must be detected as stale and rebuild.
        use atd_distance::LabelStorage;
        let dir = std::env::temp_dir().join(format!(
            "atd_persist_greedy_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let (g, idx, sn, tm) = figure1();
        let project = Project::new(vec![sn, tm]);
        for storage in LabelStorage::ALL {
            let path = dir.join(format!("index-{}.atdl", storage.name()));
            let opts = || DiscoveryOptions {
                threads: Some(1),
                pll_build: PllBuildConfig {
                    storage,
                    ..PllBuildConfig::default()
                },
                pll_index_path: Some(path.clone()),
                ..Default::default()
            };
            let first = Discovery::with_options(g.clone(), idx.clone(), opts()).unwrap();
            assert!(!first.pll_index_loaded(), "{storage:?}: no file yet");
            assert!(path.exists(), "{storage:?}: build must have saved");
            let second = Discovery::with_options(g.clone(), idx.clone(), opts()).unwrap();
            assert!(second.pll_index_loaded(), "{storage:?}: must load");
            assert_eq!(second.pll_stats(), first.pll_stats(), "{storage:?}");
            for strategy in [
                Strategy::Cc,
                Strategy::SaCaCc {
                    gamma: 0.6,
                    lambda: 0.6,
                },
            ] {
                let a = first.top_k(&project, strategy, 3).unwrap();
                let b = second.top_k(&project, strategy, 3).unwrap();
                assert_eq!(a.len(), b.len(), "{storage:?} {strategy}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.team.member_key(), y.team.member_key());
                    assert_eq!(x.objective.to_bits(), y.objective.to_bits());
                    assert_eq!(x.algorithm_cost.to_bits(), y.algorithm_cost.to_bits());
                }
            }
        }
        // Same path, different snapshot: the saved csr index must be
        // rejected as stale and transparently rebuilt (and re-saved).
        let path = dir.join("index-csr.atdl");
        let mut b2 = GraphBuilder::new();
        let x = b2.add_node(1.0);
        let y = b2.add_node(2.0);
        b2.add_edge(x, y, 1.0).unwrap();
        let g2 = b2.build().unwrap();
        let mut sb = SkillIndexBuilder::new();
        let s = sb.intern("s");
        sb.grant(x, s);
        let idx2 = sb.build(g2.num_nodes());
        let stale = Discovery::with_options(
            g2,
            idx2,
            DiscoveryOptions {
                threads: Some(1),
                pll_index_path: Some(path.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!stale.pll_index_loaded(), "stale file must trigger rebuild");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn storage_mismatch_on_disk_triggers_rebuild_in_requested_backend() {
        // A file saved in one backend must not satisfy an engine asking
        // for another: the index is rebuilt (and re-saved) in the
        // requested storage.
        use atd_distance::LabelStorage;
        let dir = std::env::temp_dir().join(format!(
            "atd_persist_storage_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.atdl");
        let (g, idx, _, _) = figure1();
        let mk = |storage| DiscoveryOptions {
            threads: Some(1),
            pll_build: PllBuildConfig {
                storage,
                ..PllBuildConfig::default()
            },
            pll_index_path: Some(path.clone()),
            ..Default::default()
        };
        let _csr = Discovery::with_options(g.clone(), idx.clone(), mk(LabelStorage::Csr)).unwrap();
        let dict =
            Discovery::with_options(g.clone(), idx.clone(), mk(LabelStorage::CompressedDict))
                .unwrap();
        assert!(!dict.pll_index_loaded(), "backend mismatch must rebuild");
        let again = Discovery::with_options(g, idx, mk(LabelStorage::CompressedDict)).unwrap();
        assert!(again.pll_index_loaded(), "re-saved backend must load");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gamma_sidecar_index_persists_and_reloads() {
        let dir = std::env::temp_dir().join(format!(
            "atd_gamma_sidecar_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.atdl");
        let (g, idx, sn, tm) = figure1();
        let project = Project::new(vec![sn, tm]);
        let opts = || DiscoveryOptions {
            threads: Some(1),
            pll_index_path: Some(path.clone()),
            ..Default::default()
        };
        let gamma = 0.6;
        let first = Discovery::with_options(g.clone(), idx.clone(), opts()).unwrap();
        let sidecar = first.gamma_index_path(gamma).unwrap();
        assert!(!sidecar.exists(), "sidecar appears only once γ is touched");
        let a = first.top_k(&project, Strategy::CaCc { gamma }, 3).unwrap();
        assert!(!first.gamma_index_loaded(gamma), "first touch builds");
        assert!(sidecar.exists(), "γ build must save its sidecar");
        let second = Discovery::with_options(g.clone(), idx.clone(), opts()).unwrap();
        let b = second.top_k(&project, Strategy::CaCc { gamma }, 3).unwrap();
        assert!(second.gamma_index_loaded(gamma), "sidecar must load");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.team.member_key(), y.team.member_key());
            assert_eq!(x.objective.to_bits(), y.objective.to_bits());
            assert_eq!(x.algorithm_cost.to_bits(), y.algorithm_cost.to_bits());
        }
        // Distinct γ values map to distinct sidecar files, and an engine
        // without an index path has no sidecar at all.
        assert_ne!(second.gamma_index_path(0.25), second.gamma_index_path(0.6));
        let (g3, idx3, _, _) = figure1();
        let unpersisted = Discovery::with_options(
            g3,
            idx3,
            DiscoveryOptions {
                threads: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(unpersisted.gamma_index_path(gamma).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cold_start_sweeps_orphaned_tmp_files() {
        let dir = std::env::temp_dir().join(format!(
            "atd_tmp_sweep_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.atdl");
        // u32::MAX is beyond Linux's pid_max, so this writer is provably
        // dead; our own pid could be a live saver thread and must survive.
        let dead = dir.join("index.atdl.tmp.4294967295.7");
        let live = dir.join(format!("index.atdl.tmp.{}.3", std::process::id()));
        let unrelated = dir.join("other.atdl.tmp.4294967295.1");
        for f in [&dead, &live, &unrelated] {
            std::fs::write(f, b"half-written junk").unwrap();
        }
        let (g, idx, _, _) = figure1();
        let _ = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions {
                threads: Some(1),
                pll_index_path: Some(path.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!dead.exists(), "dead-writer orphan must be swept");
        assert!(live.exists(), "own-pid temp may be a live save; keep it");
        assert!(unrelated.exists(), "other files' temps are left alone");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_pll_index_writes_a_loadable_file() {
        let dir = std::env::temp_dir().join(format!(
            "atd_persist_save_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("explicit.atdl");
        let (d, project) = engine();
        assert!(!d.pll_index_loaded());
        d.save_pll_index(&path).unwrap();
        let (g, idx, _, _) = figure1();
        let loaded = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions {
                threads: Some(1),
                pll_index_path: Some(path.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(loaded.pll_index_loaded());
        let a = d.best(&project, Strategy::Cc).unwrap();
        let b = loaded.best(&project, Strategy::Cc).unwrap();
        assert_eq!(a.team.member_key(), b.team.member_key());
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unwritable_index_path_degrades_to_recorded_warning() {
        // A failed background save after a successful build must not
        // take the engine down: construction succeeds on the in-memory
        // index and the failure is surfaced via `pll_persist_warning`.
        let (g, idx, sn, tm) = figure1();
        let d = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions {
                threads: Some(1),
                pll_retry: RetryPolicy::none(),
                pll_index_path: Some(PathBuf::from("/nonexistent-dir-for-atd-test/index.atdl")),
                ..Default::default()
            },
        )
        .expect("build succeeds even when the save fails");
        assert!(!d.pll_index_loaded());
        let warning = d.pll_persist_warning().expect("warning recorded");
        assert!(warning.contains("index.atdl"), "names the path: {warning}");
        assert!(warning.contains("rebuild"), "explains the consequence");
        // The in-memory index still answers queries.
        d.best(&Project::new(vec![sn, tm]), Strategy::Cc).unwrap();
    }

    #[test]
    fn load_only_mode_refuses_to_rebuild() {
        let dir = std::env::temp_dir().join(format!(
            "atd_load_only_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.atdl");
        let (g, idx, sn, tm) = figure1();
        let project = Project::new(vec![sn, tm]);
        let mk = |load_only: bool| DiscoveryOptions {
            threads: Some(1),
            pll_index_path: Some(path.clone()),
            pll_load_only: load_only,
            pll_retry: RetryPolicy::none(),
            ..Default::default()
        };
        // No file yet: load-only must fail rather than rebuild.
        match Discovery::with_options(g.clone(), idx.clone(), mk(true)) {
            Err(DiscoveryError::IndexLoad(_)) => {}
            other => panic!("expected IndexLoad, got {:?}", other.err()),
        }
        // Build-and-save normally, then load-only succeeds and answers
        // bit-identically.
        let built = Discovery::with_options(g.clone(), idx.clone(), mk(false)).unwrap();
        assert!(built.pll_persist_warning().is_none());
        let loaded = Discovery::with_options(g.clone(), idx.clone(), mk(true)).unwrap();
        assert!(loaded.pll_index_loaded());
        let a = built.best(&project, Strategy::Cc).unwrap();
        let b = loaded.best(&project, Strategy::Cc).unwrap();
        assert_eq!(a.team.member_key(), b.team.member_key());
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        // Corrupt the file: load-only fails, never rebuilds.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        match Discovery::with_options(g, idx, mk(true)) {
            Err(DiscoveryError::IndexLoad(_)) => {}
            other => panic!("corrupt file in load-only mode: {:?}", other.err()),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancelled_token_aborts_before_and_during_search() {
        let (g, idx, sn, tm) = figure1();
        let project = Project::new(vec![sn, tm]);
        let d = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions {
                threads: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            d.top_k_with(&project, Strategy::Cc, 1, None, &token),
            Err(DiscoveryError::Cancelled)
        );
        // An already-expired deadline behaves the same.
        let expired = CancelToken::with_timeout(std::time::Duration::ZERO);
        assert_eq!(
            d.top_k_with(&project, Strategy::Cc, 1, None, &expired),
            Err(DiscoveryError::Cancelled)
        );
        assert!(expired.deadline_elapsed());
        // A generous deadline completes normally and matches top_k.
        let relaxed = CancelToken::with_timeout(std::time::Duration::from_secs(3600));
        let a = d
            .top_k_with(&project, Strategy::Cc, 2, None, &relaxed)
            .unwrap();
        let b = d.top_k(&project, Strategy::Cc, 2).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.team.member_key(), y.team.member_key());
            assert_eq!(x.objective.to_bits(), y.objective.to_bits());
        }
    }

    #[test]
    fn query_scratch_reuse_is_bit_identical() {
        // The serving layer's per-worker scratch: repeated queries across
        // strategies (distinct gamma planes) through one QueryScratch
        // must match the scratch-free path exactly.
        let (g, idx, sn, tm) = figure1();
        let project = Project::new(vec![sn, tm]);
        let d = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions {
                threads: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        let mut scratch = QueryScratch::new();
        let never = CancelToken::never();
        for _round in 0..3 {
            for strategy in [
                Strategy::Cc,
                Strategy::CaCc { gamma: 0.6 },
                Strategy::SaCaCc {
                    gamma: 0.6,
                    lambda: 0.6,
                },
            ] {
                let a = d
                    .top_k_with(&project, strategy, 3, Some(&mut scratch), &never)
                    .unwrap();
                let b = d.top_k(&project, strategy, 3).unwrap();
                assert_eq!(a.len(), b.len(), "{strategy}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.team.member_key(), y.team.member_key());
                    assert_eq!(x.objective.to_bits(), y.objective.to_bits());
                    assert_eq!(x.algorithm_cost.to_bits(), y.algorithm_cost.to_bits());
                }
            }
        }
        scratch.clear();
        let again = d
            .top_k_with(&project, Strategy::Cc, 1, Some(&mut scratch), &never)
            .unwrap();
        let direct = d.top_k(&project, Strategy::Cc, 1).unwrap();
        assert_eq!(
            again[0].team.member_key(),
            direct[0].team.member_key(),
            "cleared scratch repopulates correctly"
        );
    }

    #[test]
    fn disconnected_skills_yield_no_team() {
        // Two components, one skill in each: no root reaches both.
        let mut b = GraphBuilder::new();
        let a0 = b.add_node(1.0);
        let a1 = b.add_node(1.0);
        let c0 = b.add_node(1.0);
        let c1 = b.add_node(1.0);
        b.add_edge(a0, a1, 1.0).unwrap();
        b.add_edge(c0, c1, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut sb = SkillIndexBuilder::new();
        let sa = sb.intern("a");
        let sc = sb.intern("c");
        sb.grant(a0, sa);
        sb.grant(c0, sc);
        let idx = sb.build(g.num_nodes());
        let d = Discovery::new(g, idx).unwrap();
        assert_eq!(
            d.top_k(&Project::new(vec![sa, sc]), Strategy::Cc, 1),
            Err(DiscoveryError::NoTeamFound)
        );
    }

    #[test]
    fn pruning_option_never_worsens_the_objective() {
        let (g, idx, sn, tm) = figure1();
        let project = Project::new(vec![sn, tm]);
        let strategy = Strategy::SaCaCc {
            gamma: 0.6,
            lambda: 0.6,
        };
        let faithful = Discovery::with_options(
            g.clone(),
            idx.clone(),
            DiscoveryOptions {
                threads: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        let pruned = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions {
                threads: Some(1),
                prune_dangling_connectors: true,
                ..Default::default()
            },
        )
        .unwrap();
        let a = faithful.top_k(&project, strategy, 5).unwrap();
        let b = pruned.top_k(&project, strategy, 5).unwrap();
        let best = |ts: &[crate::team::ScoredTeam]| {
            ts.iter().map(|t| t.objective).fold(f64::INFINITY, f64::min)
        };
        assert!(best(&b) <= best(&a) + 1e-9, "pruning can only help");
        for st in &b {
            assert!(st.team.covers(&project));
            st.team.tree.validate().unwrap();
        }
    }

    #[test]
    fn anytime_returns_flagged_partial_at_every_poll_point() {
        // The search polls its token at fixed points: once on entry, once
        // per scanned root, once per materialized candidate. Sweep the
        // poll budget from zero upward so the countdown trips at EVERY
        // one of them — before the scan, mid-root-scan, and during
        // candidate materialization — and assert the anytime path hands
        // back a well-formed flagged partial each time while the
        // fail-fast path errors with Cancelled each time.
        let (d, project) = engine();
        let full = d.top_k(&project, Strategy::Cc, 3).unwrap();
        let n = d.graph().num_nodes();
        let mut completed_at = None;
        for polls in 0u64..1000 {
            let partial = d
                .top_k_anytime(
                    &project,
                    Strategy::Cc,
                    3,
                    None,
                    &CancelToken::after_polls(polls),
                    None,
                )
                .unwrap();
            assert_eq!(partial.total_roots, n);
            assert!(partial.roots_scanned <= n);
            if polls == 0 {
                assert_eq!(partial.roots_scanned, 0, "tripped before the scan");
            } else if (polls as usize) <= n {
                assert_eq!(
                    partial.roots_scanned,
                    polls as usize - 1,
                    "tripped mid-root-scan after the entry poll"
                );
            }
            for w in partial.teams.windows(2) {
                assert!(w[0].objective <= w[1].objective, "partials stay sorted");
            }
            for st in &partial.teams {
                assert!(st.team.covers(&project), "partial teams are real teams");
                st.team.tree.validate().unwrap();
            }
            let fail_fast = d.top_k_with(
                &project,
                Strategy::Cc,
                3,
                None,
                &CancelToken::after_polls(polls),
            );
            if partial.exhausted {
                // Ran to completion: bit-identical to the plain entry
                // point, and the fail-fast path completes too (both
                // consume polls at the same points).
                assert_eq!(partial.teams.len(), full.len());
                for (x, y) in partial.teams.iter().zip(&full) {
                    assert_eq!(x.team.member_key(), y.team.member_key());
                    assert_eq!(x.objective.to_bits(), y.objective.to_bits());
                    assert_eq!(x.algorithm_cost.to_bits(), y.algorithm_cost.to_bits());
                }
                assert!(fail_fast.is_ok(), "fail-fast completes at poll {polls}");
                completed_at = Some(polls);
                break;
            }
            assert!(partial.is_degraded());
            assert_eq!(
                fail_fast,
                Err(DiscoveryError::Cancelled),
                "fail-fast must error at poll budget {polls}"
            );
        }
        let done = completed_at.expect("anytime search completes within the sweep");
        assert!(
            done as usize > n + 1,
            "completion takes the entry poll, {n} scan polls, and at least \
             one materialization poll — got {done}"
        );
    }

    #[test]
    fn anytime_root_budget_is_deterministic_and_flagged() {
        let (d, project) = engine();
        let n = d.graph().num_nodes();
        let mut scratch = QueryScratch::new();
        // A capped scan is flagged degraded with an exact roots_scanned
        // bound, and repeated runs at the same budget are bit-identical.
        for budget in 1..=n {
            let a = d
                .top_k_anytime(
                    &project,
                    Strategy::Cc,
                    3,
                    Some(&mut scratch),
                    &CancelToken::never(),
                    Some(budget),
                )
                .ok();
            let b = d
                .top_k_anytime(
                    &project,
                    Strategy::Cc,
                    3,
                    None,
                    &CancelToken::never(),
                    Some(budget),
                )
                .ok();
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.roots_scanned, budget.min(n));
                    assert_eq!(x.exhausted, budget == n);
                    assert_eq!(x.roots_scanned, y.roots_scanned);
                    assert_eq!(x.teams.len(), y.teams.len());
                    for (s, t) in x.teams.iter().zip(&y.teams) {
                        assert_eq!(s.team.member_key(), t.team.member_key());
                        assert_eq!(s.objective.to_bits(), t.objective.to_bits());
                        assert_eq!(s.algorithm_cost.to_bits(), t.algorithm_cost.to_bits());
                    }
                }
                (None, None) => {}
                other => panic!("same budget must give the same outcome: {other:?}"),
            }
        }
        // Full budget runs to exhaustion and equals top_k bitwise.
        let full = d
            .top_k_anytime(
                &project,
                Strategy::Cc,
                3,
                None,
                &CancelToken::never(),
                Some(n),
            )
            .unwrap();
        assert!(full.exhausted);
        let want = d.top_k(&project, Strategy::Cc, 3).unwrap();
        assert_eq!(full.teams.len(), want.len());
        for (x, y) in full.teams.iter().zip(&want) {
            assert_eq!(x.team.member_key(), y.team.member_key());
            assert_eq!(x.objective.to_bits(), y.objective.to_bits());
        }
    }

    #[test]
    fn anytime_validation_errors_are_never_partials() {
        let (d, project) = engine();
        let never = CancelToken::never();
        assert_eq!(
            d.top_k_anytime(&Project::new(vec![]), Strategy::Cc, 1, None, &never, None)
                .unwrap_err(),
            DiscoveryError::EmptyProject
        );
        assert!(matches!(
            d.top_k_anytime(
                &project,
                Strategy::CaCc { gamma: 2.0 },
                1,
                None,
                &never,
                None
            ),
            Err(DiscoveryError::InvalidTradeoff { .. })
        ));
        // k = 0 is a complete empty answer, not a degraded one.
        let empty = d
            .top_k_anytime(&project, Strategy::Cc, 0, None, &never, None)
            .unwrap();
        assert!(empty.exhausted && empty.teams.is_empty());
        // A complete search over a project nothing covers errors exactly
        // like top_k, while the same search stopped at zero polls stays a
        // well-formed empty partial.
        let cancelled = d
            .top_k_anytime(
                &project,
                Strategy::Cc,
                1,
                None,
                &CancelToken::after_polls(0),
                None,
            )
            .unwrap();
        assert!(cancelled.teams.is_empty() && !cancelled.exhausted);
    }

    #[test]
    fn prepare_gamma_caches_the_transform() {
        let (d, project) = engine();
        d.prepare_gamma(0.6).unwrap();
        assert!(d.prepare_gamma(2.0).is_err());
        // Query after prepare must agree with query that builds lazily.
        let a = d.best(&project, Strategy::CaCc { gamma: 0.6 }).unwrap();
        let b = d.best(&project, Strategy::CaCc { gamma: 0.6 }).unwrap();
        assert_eq!(a.team.member_key(), b.team.member_key());
    }
}
