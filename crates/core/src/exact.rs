//! The `Exact` baseline from the paper's evaluation (§4): exhaustive search
//! for an SA-CA-CC-optimal team. The paper could only run it for 4–6 skills
//! ("did not terminate in reasonable time for 8 and 10 skills") — this
//! implementation hits the same wall, by design, and guards against it with
//! explicit budgets.
//!
//! ## How it is exact
//!
//! `SA-CA-CC(T) = λ·SA + (1−λ)γ·CA + (1−λ)(1−γ)·CC` decomposes into
//!
//! * an **assignment** term `λ·SA` that depends only on which holder covers
//!   which skill, and
//! * a **connection** term that, for a fixed terminal set (the distinct
//!   chosen holders), is a *node-weighted Steiner tree* problem: every tree
//!   edge pays `(1−λ)(1−γ)·w̄` and every non-terminal tree node (a
//!   connector) pays `(1−λ)γ·ā'`.
//!
//! The solver enumerates every skill→holder assignment (with branch-and-
//! bound pruning on the `λ·SA` partial sums) and solves the connection term
//! exactly with a **Dreyfus–Wagner** dynamic program extended to node
//! weights: node costs are charged on the arc *entering* a node, turning
//! the node-weighted undirected problem into a rooted arborescence problem
//! (`dp[S][v]` = min cost of a tree rooted at `v` spanning terminal set
//! `S`, excluding `v`'s own enter cost, which is added at the end unless
//! `v` is a terminal). Steiner results are memoized by terminal set, so
//! assignments that collapse to the same distinct-holder set are solved
//! once.

use std::collections::{BinaryHeap, HashMap};

use atd_graph::{dijkstra_with_targets, ExpertGraph, NodeId, SubTree, TotalF64};

use crate::error::DiscoveryError;
use crate::normalize::Normalization;
use crate::objectives::{score_team, DuplicatePolicy, ObjectiveWeights};
use crate::skills::{Project, SkillId, SkillIndex};
use crate::strategy::Strategy;
use crate::team::{ScoredTeam, Team};

/// Budgets and tradeoffs for the exact solver.
#[derive(Clone, Debug)]
pub struct ExactConfig {
    /// Objective tradeoffs (γ, λ).
    pub weights: ObjectiveWeights,
    /// SA duplicate policy — [`DuplicatePolicy::PerSkill`] matches the
    /// greedy algorithm's per-selection λ terms.
    pub policy: DuplicatePolicy,
    /// Cap on `2^|terminals| · |V|` DP states per Steiner instance.
    pub max_dw_states: u128,
    /// Cap on the number of enumerated assignments.
    pub max_assignments: u128,
    /// Cap on distinct Steiner instances actually solved — the
    /// deterministic stand-in for the paper's "did not terminate in
    /// reasonable time" wall-clock limit.
    pub max_steiner_instances: usize,
}

impl ExactConfig {
    /// Default budgets: ~128M DP states, 1M assignments, 20K Steiner
    /// instances — roughly "a few seconds per project on a laptop-scale
    /// graph", failing loudly beyond.
    pub fn new(weights: ObjectiveWeights) -> Self {
        ExactConfig {
            weights,
            policy: DuplicatePolicy::default(),
            max_dw_states: 1 << 27,
            max_assignments: 1 << 20,
            max_steiner_instances: 20_000,
        }
    }
}

/// A memoized Steiner solution for one terminal set.
#[derive(Clone, Debug)]
struct SteinerResult {
    cost: f64,
    nodes: Vec<NodeId>,
    edges: Vec<(NodeId, NodeId)>,
}

/// Exhaustive SA-CA-CC optimizer (the paper's `Exact`).
pub struct ExactTeamFinder<'g> {
    graph: &'g ExpertGraph,
    skills: &'g SkillIndex,
    norm: Normalization,
    config: ExactConfig,
}

impl<'g> ExactTeamFinder<'g> {
    /// Creates an exact finder over `graph` / `skills`.
    pub fn new(graph: &'g ExpertGraph, skills: &'g SkillIndex, config: ExactConfig) -> Self {
        ExactTeamFinder {
            graph,
            skills,
            norm: Normalization::compute(graph),
            config,
        }
    }

    /// Finds the SA-CA-CC-optimal team for `project`.
    pub fn best(&self, project: &Project) -> Result<ScoredTeam, DiscoveryError> {
        if project.is_empty() {
            return Err(DiscoveryError::EmptyProject);
        }
        let mut holder_lists: Vec<(SkillId, Vec<NodeId>)> = Vec::with_capacity(project.len());
        let mut assignments: u128 = 1;
        for &s in project.skills() {
            let holders = self.skills.holders(s);
            if holders.is_empty() {
                return Err(DiscoveryError::UncoverableSkill(s));
            }
            // Ascending ā' puts authority-optimal assignments first, giving
            // the branch-and-bound an immediate strong incumbent.
            let mut sorted = holders.to_vec();
            sorted.sort_by(|&a, &b| {
                self.norm
                    .a_bar(a)
                    .total_cmp(&self.norm.a_bar(b))
                    .then(a.cmp(&b))
            });
            assignments = assignments.saturating_mul(sorted.len() as u128);
            holder_lists.push((s, sorted));
        }
        if assignments > self.config.max_assignments {
            return Err(DiscoveryError::InstanceTooLarge {
                what: "assignment combinations",
                size: assignments,
                limit: self.config.max_assignments,
            });
        }

        let lambda = self.config.weights.lambda();
        let gamma = self.config.weights.gamma();

        // Admissible pairwise lower bound on connection cost: distances in
        // the pure-edge metric `(1−λ)(1−γ)·w̄` (dropping node costs can only
        // underestimate, and terminals pay no node cost anyway). Any tree
        // containing two terminals costs at least their distance here, so
        // `λ·SA_partial + max_pairwise_lb ≥ incumbent` soundly prunes —
        // and an infinite entry proves the holders are disconnected.
        let mut candidates: Vec<NodeId> = holder_lists
            .iter()
            .flat_map(|(_, hs)| hs.iter().copied())
            .collect();
        candidates.sort();
        candidates.dedup();
        let pos: HashMap<NodeId, usize> = candidates
            .iter()
            .enumerate()
            .map(|(i, &h)| (h, i))
            .collect();
        let edge_factor = (1.0 - lambda) * (1.0 - gamma);
        let lb_graph = self
            .graph
            .map_weights(|_, _, w| edge_factor * self.norm.w_bar(w));
        let mut lb = vec![vec![f64::INFINITY; candidates.len()]; candidates.len()];
        for (i, &h) in candidates.iter().enumerate() {
            let sp = dijkstra_with_targets(&lb_graph, h, Some(&candidates));
            for (j, &g) in candidates.iter().enumerate() {
                lb[i][j] = sp.dist[g.index()];
            }
        }

        let mut search = Search {
            finder: self,
            holder_lists: &holder_lists,
            lambda,
            memo: HashMap::new(),
            best_total: f64::INFINITY,
            best: None,
            current: Vec::with_capacity(holder_lists.len()),
            budget_error: None,
            lb: &lb,
            pos: &pos,
            chosen_pos: Vec::with_capacity(holder_lists.len()),
            steiner_count: 0,
        };
        search.recurse(0, 0.0, 0.0)?;
        if let Some(err) = search.budget_error {
            return Err(err);
        }

        let (assignment, result) = search.best.ok_or(DiscoveryError::NoTeamFound)?;
        self.materialize(assignment, result)
    }

    fn materialize(
        &self,
        assignment: Vec<(SkillId, NodeId)>,
        steiner: SteinerResult,
    ) -> Result<ScoredTeam, DiscoveryError> {
        let root = assignment[0].1;
        let tree = if steiner.edges.is_empty() {
            SubTree::singleton(root)
        } else {
            let mut nodes = steiner.nodes.clone();
            nodes.sort();
            nodes.dedup();
            let mut edges: Vec<(NodeId, NodeId, f64)> = steiner
                .edges
                .iter()
                .map(|&(u, v)| {
                    let w = self
                        .graph
                        .edge_weight(u, v)
                        .expect("steiner edge exists in graph");
                    (u.min(v), u.max(v), w)
                })
                .collect();
            edges.sort_by_key(|&(u, v, _)| (u, v));
            edges.dedup_by_key(|&mut (u, v, _)| (u, v));
            let tree = SubTree { root, nodes, edges };
            tree.validate().map_err(|_| DiscoveryError::NoTeamFound)?;
            tree
        };

        let team = Team::new(tree, assignment);
        let score = score_team(&self.norm, &team, self.config.policy);
        let strategy = Strategy::SaCaCc {
            gamma: self.config.weights.gamma(),
            lambda: self.config.weights.lambda(),
        };
        let objective = strategy.objective(&score);
        Ok(ScoredTeam {
            team,
            score,
            objective,
            algorithm_cost: objective,
        })
    }

    /// Node-weighted Dreyfus–Wagner over the whole graph.
    ///
    /// Returns `None` when the terminals are disconnected; an error when
    /// the state budget would be exceeded.
    fn steiner(&self, terminals: &[NodeId]) -> Result<Option<SteinerResult>, DiscoveryError> {
        let n = self.graph.num_nodes();
        let p = terminals.len();
        debug_assert!(p >= 1);
        if p == 1 {
            return Ok(Some(SteinerResult {
                cost: 0.0,
                nodes: vec![terminals[0]],
                edges: Vec::new(),
            }));
        }
        let states = (1u128 << p).saturating_mul(n as u128);
        if states > self.config.max_dw_states {
            return Err(DiscoveryError::InstanceTooLarge {
                what: "2^terminals * nodes",
                size: states,
                limit: self.config.max_dw_states,
            });
        }

        let gamma = self.config.weights.gamma();
        let lambda = self.config.weights.lambda();
        let edge_factor = (1.0 - lambda) * (1.0 - gamma);
        let node_factor = (1.0 - lambda) * gamma;

        let mut is_terminal = vec![false; n];
        for &t in terminals {
            is_terminal[t.index()] = true;
        }
        // Cost charged when the tree *enters* node v (connectors only).
        let enter = |v: NodeId| -> f64 {
            if is_terminal[v.index()] {
                0.0
            } else {
                node_factor * self.norm.a_bar(v)
            }
        };

        let full = (1usize << p) - 1;
        let size = (full + 1) * n;
        let mut dp = vec![f64::INFINITY; size];
        let mut choice = vec![Choice::Unreached; size];

        for (i, &t) in terminals.iter().enumerate() {
            dp[(1 << i) * n + t.index()] = 0.0;
            choice[(1 << i) * n + t.index()] = Choice::Leaf;
        }

        let mut heap: BinaryHeap<DwEntry> = BinaryHeap::new();
        for mask in 1..=full {
            let base = mask * n;
            // Merge step: combine two sub-arborescences at a common root.
            if mask & (mask - 1) != 0 {
                let mut sub = (mask - 1) & mask;
                while sub > 0 {
                    let other = mask ^ sub;
                    if sub < other {
                        sub = (sub - 1) & mask;
                        continue; // each split visited once
                    }
                    let (sb, ob) = (sub * n, other * n);
                    for v in 0..n {
                        let c = dp[sb + v] + dp[ob + v];
                        if c < dp[base + v] {
                            dp[base + v] = c;
                            choice[base + v] = Choice::Split(sub as u32);
                        }
                    }
                    sub = (sub - 1) & mask;
                }
            }

            // Relax step: move the root along arcs (multi-source Dijkstra
            // seeded with every finite dp[mask][·]).
            heap.clear();
            for v in 0..n {
                if dp[base + v].is_finite() {
                    heap.push(DwEntry {
                        dist: TotalF64::expect(dp[base + v]),
                        node: v as u32,
                    });
                }
            }
            while let Some(DwEntry { dist, node }) = heap.pop() {
                let v = node as usize;
                let d = dist.get();
                if d > dp[base + v] {
                    continue; // stale
                }
                let vn = NodeId(node);
                let pay_v = enter(vn);
                for (u, w) in self.graph.neighbors(vn) {
                    let cand = d + edge_factor * self.norm.w_bar(w) + pay_v;
                    let slot = base + u.index();
                    if cand < dp[slot] {
                        dp[slot] = cand;
                        choice[slot] = Choice::Step(node);
                        heap.push(DwEntry {
                            dist: TotalF64::expect(cand),
                            node: u.0,
                        });
                    }
                }
            }
        }

        // Best root, charging the root's own enter cost (it is "used" by
        // the tree even though no arc enters it).
        let base = full * n;
        let mut best: Option<(f64, usize)> = None;
        for v in 0..n {
            if dp[base + v].is_finite() {
                let total = dp[base + v] + enter(NodeId(v as u32));
                if best.is_none_or(|(bc, _)| total < bc) {
                    best = Some((total, v));
                }
            }
        }
        let Some((cost, root)) = best else {
            return Ok(None);
        };

        // Reconstruct the tree from the choice backpointers.
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut stack = vec![(full, root)];
        while let Some((mask, v)) = stack.pop() {
            nodes.push(NodeId(v as u32));
            match choice[mask * n + v] {
                Choice::Leaf => {}
                Choice::Split(sub) => {
                    let sub = sub as usize;
                    stack.push((sub, v));
                    stack.push((mask ^ sub, v));
                }
                Choice::Step(parent) => {
                    edges.push((NodeId(v as u32), NodeId(parent)));
                    stack.push((mask, parent as usize));
                }
                Choice::Unreached => unreachable!("finite dp state must have a choice"),
            }
        }
        nodes.sort();
        nodes.dedup();
        edges.sort_by_key(|&(u, v)| (u.min(v), u.max(v)));
        edges.dedup_by_key(|&mut (u, v)| (u.min(v), u.max(v)));

        Ok(Some(SteinerResult { cost, nodes, edges }))
    }
}

/// DP backpointer.
#[derive(Clone, Copy, Debug)]
enum Choice {
    Unreached,
    Leaf,
    Split(u32),
    Step(u32),
}

#[derive(PartialEq, Eq)]
struct DwEntry {
    dist: TotalF64,
    node: u32,
}

impl Ord for DwEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .dist
            .cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for DwEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Recursive assignment enumeration with SA- and distance-based pruning.
struct Search<'a, 'g> {
    finder: &'a ExactTeamFinder<'g>,
    holder_lists: &'a [(SkillId, Vec<NodeId>)],
    lambda: f64,
    memo: HashMap<Vec<NodeId>, Option<SteinerResult>>,
    best_total: f64,
    best: Option<(Vec<(SkillId, NodeId)>, SteinerResult)>,
    current: Vec<(SkillId, NodeId)>,
    budget_error: Option<DiscoveryError>,
    /// Pairwise lower-bound distances between candidate holders.
    lb: &'a Vec<Vec<f64>>,
    /// Candidate holder → row index in `lb`.
    pos: &'a HashMap<NodeId, usize>,
    /// `lb` row indices of holders chosen so far.
    chosen_pos: Vec<usize>,
    /// Distinct Steiner instances solved (budget accounting).
    steiner_count: usize,
}

impl Search<'_, '_> {
    fn recurse(
        &mut self,
        depth: usize,
        sa_so_far: f64,
        lb_so_far: f64,
    ) -> Result<(), DiscoveryError> {
        // Prune: the connection cost is bounded below by the widest
        // pairwise distance among chosen holders, and λ·SA only grows.
        if self.lambda * sa_so_far + lb_so_far >= self.best_total {
            return Ok(());
        }
        if depth == self.holder_lists.len() {
            let mut terminals: Vec<NodeId> = self.current.iter().map(|&(_, v)| v).collect();
            terminals.sort();
            terminals.dedup();

            let result = match self.memo.get(&terminals) {
                Some(cached) => cached.clone(),
                None => {
                    self.steiner_count += 1;
                    if self.steiner_count > self.finder.config.max_steiner_instances {
                        let e = DiscoveryError::InstanceTooLarge {
                            what: "distinct Steiner instances",
                            size: self.steiner_count as u128,
                            limit: self.finder.config.max_steiner_instances as u128,
                        };
                        self.budget_error = Some(e.clone());
                        return Err(e);
                    }
                    let computed = match self.finder.steiner(&terminals) {
                        Ok(r) => r,
                        Err(e) => {
                            // Record and stop enumerating — the instance is
                            // too large for exact search.
                            self.budget_error = Some(e.clone());
                            return Err(e);
                        }
                    };
                    self.memo.insert(terminals.clone(), computed.clone());
                    computed
                }
            };
            if let Some(steiner) = result {
                let total = self.lambda * sa_so_far + steiner.cost;
                if total < self.best_total {
                    self.best_total = total;
                    self.best = Some((self.current.clone(), steiner));
                }
            }
            return Ok(());
        }

        let (skill, holders) = &self.holder_lists[depth];
        let (skill, holders) = (*skill, holders.clone());
        for v in holders {
            let a = self.finder.norm.a_bar(v);
            if self.lambda * (sa_so_far + a) >= self.best_total {
                break; // ā'-ascending: everything after prunes too
            }
            let vp = self.pos[&v];
            let mut new_lb = lb_so_far;
            for &cp in &self.chosen_pos {
                new_lb = new_lb.max(self.lb[vp][cp]);
            }
            if self.lambda * (sa_so_far + a) + new_lb >= self.best_total {
                continue; // distance prune (also catches disconnection)
            }
            self.current.push((skill, v));
            self.chosen_pos.push(vp);
            self.recurse(depth + 1, sa_so_far + a, new_lb)?;
            self.chosen_pos.pop();
            self.current.pop();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{Discovery, DiscoveryOptions};
    use crate::skills::SkillIndexBuilder;
    use atd_graph::GraphBuilder;

    fn diamond() -> (ExpertGraph, SkillIndex) {
        // 0 (skill a) connects to 3 (skill b) via cheap/low-authority 1 or
        // pricier/high-authority 2.
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = [5.0, 1.0, 40.0, 5.0]
            .iter()
            .map(|&a| b.add_node(a))
            .collect();
        b.add_edge(n[0], n[1], 0.1).unwrap();
        b.add_edge(n[1], n[3], 0.1).unwrap();
        b.add_edge(n[0], n[2], 0.5).unwrap();
        b.add_edge(n[2], n[3], 0.5).unwrap();
        let g = b.build().unwrap();
        let mut sb = SkillIndexBuilder::new();
        let s0 = sb.intern("a");
        let s1 = sb.intern("b");
        sb.grant(n[0], s0);
        sb.grant(n[3], s1);
        (g, sb.build(4))
    }

    fn project(idx: &SkillIndex) -> Project {
        Project::new(vec![idx.id_of("a").unwrap(), idx.id_of("b").unwrap()])
    }

    #[test]
    fn low_gamma_takes_cheap_route() {
        let (g, idx) = diamond();
        let cfg = ExactConfig::new(ObjectiveWeights::new(0.05, 0.3).unwrap());
        let f = ExactTeamFinder::new(&g, &idx, cfg);
        let best = f.best(&project(&idx)).unwrap();
        assert!(best.team.members().contains(&NodeId(1)), "cheap connector");
    }

    #[test]
    fn high_gamma_takes_authoritative_route() {
        let (g, idx) = diamond();
        let cfg = ExactConfig::new(ObjectiveWeights::new(0.95, 0.3).unwrap());
        let f = ExactTeamFinder::new(&g, &idx, cfg);
        let best = f.best(&project(&idx)).unwrap();
        assert!(
            best.team.members().contains(&NodeId(2)),
            "authoritative connector, got {:?}",
            best.team.members()
        );
    }

    #[test]
    fn exact_never_worse_than_greedy() {
        let (g, idx) = diamond();
        let p = project(&idx);
        let (gamma, lambda) = (0.6, 0.6);
        let cfg = ExactConfig::new(ObjectiveWeights::new(gamma, lambda).unwrap());
        let exact = ExactTeamFinder::new(&g, &idx, cfg).best(&p).unwrap();
        let engine = Discovery::with_options(
            g,
            idx,
            DiscoveryOptions {
                threads: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        let greedy = engine.best(&p, Strategy::SaCaCc { gamma, lambda }).unwrap();
        assert!(
            exact.objective <= greedy.objective + 1e-9,
            "exact {} must be <= greedy {}",
            exact.objective,
            greedy.objective
        );
    }

    #[test]
    fn internal_cost_matches_recomputed_objective() {
        let (g, idx) = diamond();
        let cfg = ExactConfig::new(ObjectiveWeights::new(0.6, 0.4).unwrap());
        let f = ExactTeamFinder::new(&g, &idx, cfg);
        let best = f.best(&project(&idx)).unwrap();
        // The DP's internal total must equal Definition 6 on the tree.
        assert!((best.objective - best.score.sa_ca_cc(0.6, 0.4)).abs() < 1e-9);
        best.team.tree.validate().unwrap();
    }

    #[test]
    fn single_expert_covers_everything() {
        let mut b = GraphBuilder::new();
        let star = b.add_node(10.0);
        let other = b.add_node(1.0);
        b.add_edge(star, other, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut sb = SkillIndexBuilder::new();
        let s0 = sb.intern("x");
        let s1 = sb.intern("y");
        sb.grant(star, s0);
        sb.grant(star, s1);
        let idx = sb.build(2);
        let cfg = ExactConfig::new(ObjectiveWeights::new(0.6, 0.6).unwrap());
        let best = ExactTeamFinder::new(&g, &idx, cfg)
            .best(&Project::new(vec![s0, s1]))
            .unwrap();
        assert_eq!(best.team.size(), 1);
        assert_eq!(best.score.cc, 0.0);
        assert_eq!(best.score.ca, 0.0);
    }

    #[test]
    fn disconnected_terminals_yield_no_team() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0);
        let c = b.add_node(1.0);
        let g = b.build().unwrap();
        let mut sb = SkillIndexBuilder::new();
        let s0 = sb.intern("x");
        let s1 = sb.intern("y");
        sb.grant(a, s0);
        sb.grant(c, s1);
        let idx = sb.build(2);
        let cfg = ExactConfig::new(ObjectiveWeights::new(0.5, 0.5).unwrap());
        assert_eq!(
            ExactTeamFinder::new(&g, &idx, cfg).best(&Project::new(vec![s0, s1])),
            Err(DiscoveryError::NoTeamFound)
        );
    }

    #[test]
    fn assignment_budget_guard_trips() {
        let (g, idx) = diamond();
        let mut cfg = ExactConfig::new(ObjectiveWeights::new(0.5, 0.5).unwrap());
        cfg.max_assignments = 0;
        assert!(matches!(
            ExactTeamFinder::new(&g, &idx, cfg).best(&project(&idx)),
            Err(DiscoveryError::InstanceTooLarge { .. })
        ));
    }

    #[test]
    fn lambda_one_is_pure_sa() {
        let (g, idx) = diamond();
        let cfg = ExactConfig::new(ObjectiveWeights::new(0.6, 1.0).unwrap());
        let best = ExactTeamFinder::new(&g, &idx, cfg)
            .best(&project(&idx))
            .unwrap();
        // λ=1: connection is free; objective equals SA of the best holders.
        assert!((best.objective - best.score.sa).abs() < 1e-12);
    }
}
