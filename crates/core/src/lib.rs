#![warn(missing_docs)]

//! # atd-core — authority-based team discovery
//!
//! The primary contribution of *Authority-Based Team Discovery in Social
//! Networks* (Zihayat et al., EDBT 2017), implemented over the
//! [`atd_graph`] substrate and the [`atd_distance`] oracles.
//!
//! ## The problems
//!
//! Given an expert network `G` (edge weights = communication cost, node
//! weights = authority `a`, inverted to `a' = 1/a` so everything is a
//! minimization) and a project `P` (a set of required skills), find a
//! connected subtree `T` whose nodes cover `P`, minimizing:
//!
//! | Problem | Objective |
//! |---------|-----------|
//! | 1 (prior work) | `CC(T)` — sum of tree edge weights |
//! | 2 | `CA(T)` — sum of `a'` over **connectors** (non-holders) |
//! | 3 | `CA-CC = γ·CA + (1−γ)·CC` |
//! | 4 (poly-time) | `SA(T)` — sum of `a'` over skill holders |
//! | 5 | `SA-CA-CC = λ·SA + (1−λ)·CA-CC` |
//!
//! Problems 1, 2, 3, 5 are NP-hard (Theorems 1–3 of the paper); this crate
//! implements the paper's greedy Algorithm 1 ([`greedy::Discovery`])
//! together with the `G → G'` authority transform ([`transform`]) that lets
//! one algorithm serve all objectives, the paper's evaluation baselines
//! ([`random`], [`exact`]), the polynomial solver for Problem 4
//! ([`sa_only`]), and the Pareto-front extension sketched in the paper's
//! conclusion ([`pareto`]).

pub mod cancel;
pub mod error;
pub mod exact;
pub mod greedy;
pub mod normalize;
pub mod objectives;
pub mod pareto;
pub mod random;
pub mod replacement;
pub mod sa_only;
pub mod skills;
pub mod strategy;
pub mod team;
pub mod topk;
pub mod transform;

pub use atd_distance::IndexLoadMode;
pub use cancel::CancelToken;
pub use error::DiscoveryError;
pub use exact::{ExactConfig, ExactTeamFinder};
pub use greedy::{Discovery, DiscoveryOptions, PartialResult, QueryScratch};
pub use normalize::Normalization;
pub use objectives::{DuplicatePolicy, ObjectiveWeights, TeamScore};
pub use pareto::pareto_front;
pub use random::RandomTeamFinder;
pub use skills::{Project, SkillId, SkillIndex, SkillIndexBuilder};
pub use strategy::Strategy;
pub use team::{ScoredTeam, Team};
pub use transform::authority_transform;
