//! The `G → G'` authority transform (§3.2.2 of the paper).
//!
//! To let the communication-cost algorithm optimize authority too, node
//! weights are moved onto edges:
//!
//! ```text
//! w'(ci, cj) = γ · (ā'(ci) + ā'(cj)) + 2(1−γ) · w̄(ci, cj)
//! ```
//!
//! On a shortest **path** from a root to a holder, summing `w'` counts each
//! internal node's `ā'` twice and each endpoint's once, and each edge's
//! `w̄` twice — so path cost in `G'` equals
//! `2·[γ·CA(path) + (1−γ)·CC(path)]` plus the γ-scaled endpoint terms,
//! which Algorithm 1's DIST adjustments compensate for (see
//! [`crate::greedy`]). With `γ = 1` the transform solves Problem 2 (pure
//! connector authority).

use atd_graph::ExpertGraph;

use crate::normalize::Normalization;

/// Builds `G'` from `G` for the tradeoff `γ`.
///
/// The result has identical topology and authorities; only edge weights
/// change. Weights are computed from the **normalized** quantities so the
/// two objective scales blend meaningfully.
///
/// # Panics
/// Panics if `gamma` is outside `[0, 1]` — validate via
/// [`crate::Strategy::validate`] first.
pub fn authority_transform(g: &ExpertGraph, norm: &Normalization, gamma: f64) -> ExpertGraph {
    assert!(
        (0.0..=1.0).contains(&gamma),
        "gamma must be in [0, 1], got {gamma}"
    );
    g.map_weights(|u, v, w| {
        gamma * (norm.a_bar(u) + norm.a_bar(v)) + 2.0 * (1.0 - gamma) * norm.w_bar(w)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atd_graph::{dijkstra, GraphBuilder, NodeId};

    /// Path 0 - 1 - 2 with distinct authorities.
    fn fixture() -> (ExpertGraph, Normalization) {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = [8.0, 4.0, 2.0].iter().map(|&a| b.add_node(a)).collect();
        b.add_edge(n[0], n[1], 0.5).unwrap();
        b.add_edge(n[1], n[2], 1.0).unwrap();
        let g = b.build().unwrap();
        let norm = Normalization::compute(&g);
        (g, norm)
    }

    #[test]
    fn gamma_zero_is_twice_normalized_weight() {
        let (g, norm) = fixture();
        let gp = authority_transform(&g, &norm, 0.0);
        assert!((gp.edge_weight(NodeId(0), NodeId(1)).unwrap() - 1.0).abs() < 1e-12);
        assert!((gp.edge_weight(NodeId(1), NodeId(2)).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_one_is_pure_authority() {
        let (g, norm) = fixture();
        let gp = authority_transform(&g, &norm, 1.0);
        // ā' = [0.25, 0.5, 1.0].
        assert!((gp.edge_weight(NodeId(0), NodeId(1)).unwrap() - 0.75).abs() < 1e-12);
        assert!((gp.edge_weight(NodeId(1), NodeId(2)).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn path_cost_decomposes_as_documented() {
        // For the 0→2 path: Σw' = γ(ā'0 + 2ā'1 + ā'2) + 2(1−γ)(w̄01 + w̄12).
        let (g, norm) = fixture();
        let gamma = 0.6;
        let gp = authority_transform(&g, &norm, gamma);
        let sp = dijkstra(&gp, NodeId(0));
        let got = sp.distance(NodeId(2)).unwrap();
        let expect = gamma * (0.25 + 2.0 * 0.5 + 1.0) + 2.0 * (1.0 - gamma) * (0.5 + 1.0);
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn transform_preserves_topology_and_authority() {
        let (g, norm) = fixture();
        let gp = authority_transform(&g, &norm, 0.3);
        assert_eq!(gp.num_nodes(), g.num_nodes());
        assert_eq!(gp.num_edges(), g.num_edges());
        for v in g.nodes() {
            assert_eq!(gp.authority(v), g.authority(v));
        }
    }

    #[test]
    fn transformed_weights_are_nonnegative() {
        let (g, norm) = fixture();
        for gamma in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let gp = authority_transform(&g, &norm, gamma);
            for (_, _, w) in gp.edges() {
                assert!(w >= 0.0, "negative transformed weight {w} at γ={gamma}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_out_of_range_gamma() {
        let (g, norm) = fixture();
        let _ = authority_transform(&g, &norm, 1.5);
    }

    #[test]
    fn high_gamma_reroutes_through_authorities() {
        // Square: 0-1-3 via low-authority 1, 0-2-3 via high-authority 2.
        // Raw weights favor the 0-1-3 route; high γ must flip to 0-2-3.
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = [5.0, 1.0, 50.0, 5.0]
            .iter()
            .map(|&a| b.add_node(a))
            .collect();
        b.add_edge(n[0], n[1], 0.1).unwrap();
        b.add_edge(n[1], n[3], 0.1).unwrap();
        b.add_edge(n[0], n[2], 0.4).unwrap();
        b.add_edge(n[2], n[3], 0.4).unwrap();
        let g = b.build().unwrap();
        let norm = Normalization::compute(&g);

        let cheap = dijkstra(&g, n[0]);
        assert_eq!(
            cheap.path_to(n[3]).unwrap(),
            vec![n[0], n[1], n[3]],
            "raw weights use the cheap connector"
        );

        let gp = authority_transform(&g, &norm, 0.95);
        let sp = dijkstra(&gp, n[0]);
        assert_eq!(
            sp.path_to(n[3]).unwrap(),
            vec![n[0], n[2], n[3]],
            "authority transform routes through the senior connector"
        );
    }
}
