//! The paper's objective functions (Definitions 2–6).
//!
//! All scores are computed on **normalized** quantities (see
//! [`crate::normalize`]) so that the tradeoff parameters `γ` and `λ` blend
//! comparable scales, exactly as the paper prescribes before Definition 4.

use atd_graph::NodeId;

use crate::error::DiscoveryError;
use crate::normalize::Normalization;
use crate::team::Team;

/// How `SA(T)` treats an expert assigned to several skills.
///
/// Definition 5 sums over the `n` skill-holder slots (one per required
/// skill), which is also what Algorithm 1's SA-CA-CC adjustment adds per
/// selection — so [`DuplicatePolicy::PerSkill`] is the default. `Distinct`
/// counts each holder once and is provided for sensitivity analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DuplicatePolicy {
    /// One `ā'` term per required skill (paper default).
    #[default]
    PerSkill,
    /// One `ā'` term per distinct holder.
    Distinct,
}

/// Validated tradeoff parameters `γ` (connector-vs-cost) and `λ`
/// (skill-holder-vs-rest).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjectiveWeights {
    gamma: f64,
    lambda: f64,
}

impl ObjectiveWeights {
    /// Validates `γ, λ ∈ [0, 1]`.
    pub fn new(gamma: f64, lambda: f64) -> Result<Self, DiscoveryError> {
        for (name, value) in [("gamma", gamma), ("lambda", lambda)] {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(DiscoveryError::InvalidTradeoff { name, value });
            }
        }
        Ok(ObjectiveWeights { gamma, lambda })
    }

    /// The connector/cost tradeoff `γ`.
    #[inline]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The skill-holder tradeoff `λ`.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

/// The normalized objective components of one team.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TeamScore {
    /// `CC(T)` — Definition 2 on normalized edge weights.
    pub cc: f64,
    /// `CA(T)` — Definition 3 (sum of `ā'` over connectors).
    pub ca: f64,
    /// `SA(T)` — Definition 5 (sum of `ā'` over skill-holder slots).
    pub sa: f64,
}

impl TeamScore {
    /// `CA-CC(T) = γ·CA + (1−γ)·CC` — Definition 4.
    #[inline]
    pub fn ca_cc(&self, gamma: f64) -> f64 {
        gamma * self.ca + (1.0 - gamma) * self.cc
    }

    /// `SA-CA-CC(T) = λ·SA + (1−λ)·CA-CC` — Definition 6.
    #[inline]
    pub fn sa_ca_cc(&self, gamma: f64, lambda: f64) -> f64 {
        lambda * self.sa + (1.0 - lambda) * self.ca_cc(gamma)
    }
}

/// `CC(T)`: sum of normalized tree edge weights (Definition 2).
pub fn communication_cost(norm: &Normalization, team: &Team) -> f64 {
    // `+ 0.0` canonicalizes the empty sum (Rust's f64 Sum identity is
    // -0.0) so singleton teams report CC = +0.0.
    team.tree
        .edges
        .iter()
        .map(|&(_, _, w)| norm.w_bar(w))
        .sum::<f64>()
        + 0.0
}

/// `CA(T)`: sum of `ā'` over the team's connectors (Definition 3).
pub fn connector_authority(norm: &Normalization, team: &Team) -> f64 {
    team.connectors()
        .iter()
        .map(|&c| norm.a_bar(c))
        .sum::<f64>()
        + 0.0
}

/// `SA(T)`: sum of `ā'` over skill-holder slots (Definition 5).
pub fn skill_holder_authority(norm: &Normalization, team: &Team, policy: DuplicatePolicy) -> f64 {
    match policy {
        DuplicatePolicy::PerSkill => {
            team.assignment
                .iter()
                .map(|&(_, c)| norm.a_bar(c))
                .sum::<f64>()
                + 0.0
        }
        DuplicatePolicy::Distinct => {
            team.holders().iter().map(|&c| norm.a_bar(c)).sum::<f64>() + 0.0
        }
    }
}

/// Evaluates all three components at once.
pub fn score_team(norm: &Normalization, team: &Team, policy: DuplicatePolicy) -> TeamScore {
    TeamScore {
        cc: communication_cost(norm, team),
        ca: connector_authority(norm, team),
        sa: skill_holder_authority(norm, team, policy),
    }
}

/// Average raw authority of a node set (Figure 5a/5b metric; raw h-index,
/// not normalized).
pub fn average_authority(authorities: &[f64], nodes: &[NodeId]) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    nodes.iter().map(|&n| authorities[n.index()]).sum::<f64>() / nodes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skills::SkillId;
    use atd_graph::{dijkstra, GraphBuilder, SubTree};

    /// Path 0 -1.0- 1 -3.0- 2 with authorities 4, 2, 1.
    fn fixture() -> (Normalization, Team) {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = [4.0, 2.0, 1.0].iter().map(|&a| b.add_node(a)).collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[2], 3.0).unwrap();
        let g = b.build().unwrap();
        let norm = Normalization::compute(&g);
        let sp = dijkstra(&g, n[0]);
        let tree = SubTree::from_paths(&g, n[0], &[sp.path_to(n[2]).unwrap()]).unwrap();
        let team = Team::new(tree, vec![(SkillId(0), n[0]), (SkillId(1), n[2])]);
        (norm, team)
    }

    #[test]
    fn cc_is_normalized_edge_sum() {
        let (norm, team) = fixture();
        // w_max = 3 -> w̄ = [1/3, 1]; CC = 4/3.
        assert!((communication_cost(&norm, &team) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ca_sums_connectors_only() {
        let (norm, team) = fixture();
        // a' = [0.25, 0.5, 1.0], max = 1.0 -> ā' as-is. Connector is node 1.
        assert!((connector_authority(&norm, &team) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sa_per_skill_vs_distinct() {
        let (norm, team) = fixture();
        // Holders: node 0 (ā'=0.25) and node 2 (ā'=1.0).
        let per_skill = skill_holder_authority(&norm, &team, DuplicatePolicy::PerSkill);
        assert!((per_skill - 1.25).abs() < 1e-12);

        // Same expert covering both skills: per-skill doubles, distinct not.
        let tree = SubTree::singleton(NodeId(0));
        let dup = Team::new(tree, vec![(SkillId(0), NodeId(0)), (SkillId(1), NodeId(0))]);
        let ps = skill_holder_authority(&norm, &dup, DuplicatePolicy::PerSkill);
        let di = skill_holder_authority(&norm, &dup, DuplicatePolicy::Distinct);
        assert!((ps - 0.5).abs() < 1e-12);
        assert!((di - 0.25).abs() < 1e-12);
    }

    #[test]
    fn combined_objectives_blend_linearly() {
        let s = TeamScore {
            cc: 2.0,
            ca: 1.0,
            sa: 0.5,
        };
        assert!((s.ca_cc(0.0) - 2.0).abs() < 1e-12, "γ=0 is pure CC");
        assert!((s.ca_cc(1.0) - 1.0).abs() < 1e-12, "γ=1 is pure CA");
        assert!((s.sa_ca_cc(0.6, 0.0) - s.ca_cc(0.6)).abs() < 1e-12);
        assert!((s.sa_ca_cc(0.6, 1.0) - 0.5).abs() < 1e-12, "λ=1 is pure SA");
        let mid = s.sa_ca_cc(0.6, 0.5);
        assert!((mid - (0.5 * 0.5 + 0.5 * (0.6 * 1.0 + 0.4 * 2.0))).abs() < 1e-12);
    }

    #[test]
    fn weights_validate_range() {
        assert!(ObjectiveWeights::new(0.0, 1.0).is_ok());
        assert!(ObjectiveWeights::new(-0.1, 0.5).is_err());
        assert!(ObjectiveWeights::new(0.5, 1.1).is_err());
        assert!(ObjectiveWeights::new(f64::NAN, 0.5).is_err());
        let w = ObjectiveWeights::new(0.6, 0.4).unwrap();
        assert_eq!(w.gamma(), 0.6);
        assert_eq!(w.lambda(), 0.4);
    }

    #[test]
    fn score_team_bundles_components() {
        let (norm, team) = fixture();
        let s = score_team(&norm, &team, DuplicatePolicy::PerSkill);
        assert!((s.cc - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.ca - 0.5).abs() < 1e-12);
        assert!((s.sa - 1.25).abs() < 1e-12);
    }

    #[test]
    fn average_authority_of_sets() {
        let auth = [4.0, 2.0, 1.0];
        assert_eq!(average_authority(&auth, &[NodeId(0), NodeId(2)]), 2.5);
        assert_eq!(average_authority(&auth, &[]), 0.0);
    }
}
