//! Skills, projects, and the skill → holders index.
//!
//! Preliminaries of the paper: `S` is the skill universe, `S(c)` the skills
//! of expert `c`, `C(s)` the experts holding skill `s`, and a project
//! `P ⊆ S` is the set of required skills. [`SkillIndex`] stores both
//! directions (`C(s)` and `S(c)`) with dense ids for `O(1)` lookups inside
//! Algorithm 1's inner loop.

use std::collections::HashMap;
use std::fmt;

use atd_graph::NodeId;

/// Dense skill identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SkillId(pub u32);

impl SkillId {
    /// Index form for vector access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SkillId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for SkillId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A project: the deduplicated set of required skills
/// `P = {s1, …, sn}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Project {
    skills: Vec<SkillId>,
}

impl Project {
    /// Builds a project, deduplicating while preserving first-seen order.
    pub fn new(skills: Vec<SkillId>) -> Self {
        let mut seen = std::collections::HashSet::new();
        let skills = skills.into_iter().filter(|s| seen.insert(*s)).collect();
        Project { skills }
    }

    /// The required skills.
    #[inline]
    pub fn skills(&self) -> &[SkillId] {
        &self.skills
    }

    /// Number of required skills (`t` in Algorithm 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.skills.len()
    }

    /// True for the empty project.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.skills.is_empty()
    }
}

/// Builder for a [`SkillIndex`].
#[derive(Default)]
pub struct SkillIndexBuilder {
    names: Vec<String>,
    by_name: HashMap<String, SkillId>,
    grants: Vec<(NodeId, SkillId)>,
}

impl SkillIndexBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a skill name, returning its id (idempotent).
    pub fn intern(&mut self, name: &str) -> SkillId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SkillId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Records that expert `node` holds `skill`.
    pub fn grant(&mut self, node: NodeId, skill: SkillId) {
        self.grants.push((node, skill));
    }

    /// Finalizes the two-directional index for a graph of `num_nodes`
    /// nodes. Grants to out-of-range nodes panic (they indicate a
    /// graph/skill-source mismatch).
    pub fn build(mut self, num_nodes: usize) -> SkillIndex {
        self.grants.sort();
        self.grants.dedup();

        let num_skills = self.names.len();
        let mut holders: Vec<Vec<NodeId>> = vec![Vec::new(); num_skills];
        let mut skills_of: Vec<Vec<SkillId>> = vec![Vec::new(); num_nodes];
        for (node, skill) in self.grants {
            assert!(
                node.index() < num_nodes,
                "skill grant references node {node} beyond graph size {num_nodes}"
            );
            holders[skill.index()].push(node);
            skills_of[node.index()].push(skill);
        }

        SkillIndex {
            names: self.names,
            by_name: self.by_name,
            holders,
            skills_of,
        }
    }
}

/// The bidirectional skill index: `C(s)` and `S(c)`.
#[derive(Clone, Debug)]
pub struct SkillIndex {
    names: Vec<String>,
    by_name: HashMap<String, SkillId>,
    holders: Vec<Vec<NodeId>>,
    skills_of: Vec<Vec<SkillId>>,
}

impl SkillIndex {
    /// Number of distinct skills.
    #[inline]
    pub fn num_skills(&self) -> usize {
        self.names.len()
    }

    /// The name of `skill`.
    #[inline]
    pub fn name(&self, skill: SkillId) -> &str {
        &self.names[skill.index()]
    }

    /// Looks a skill up by name.
    pub fn id_of(&self, name: &str) -> Option<SkillId> {
        self.by_name.get(name).copied()
    }

    /// `C(s)`: the experts holding `skill`, ascending by node id.
    #[inline]
    pub fn holders(&self, skill: SkillId) -> &[NodeId] {
        &self.holders[skill.index()]
    }

    /// `S(c)`: the skills of `node`, ascending.
    #[inline]
    pub fn skills_of(&self, node: NodeId) -> &[SkillId] {
        &self.skills_of[node.index()]
    }

    /// True if `node` holds `skill` (binary search over `S(c)`).
    #[inline]
    pub fn has_skill(&self, node: NodeId, skill: SkillId) -> bool {
        self.skills_of[node.index()].binary_search(&skill).is_ok()
    }

    /// The largest holder set size over the project's skills
    /// (`|Cmax|` in the paper's complexity analysis).
    pub fn max_holder_count(&self, project: &Project) -> usize {
        project
            .skills()
            .iter()
            .map(|&s| self.holders(s).len())
            .max()
            .unwrap_or(0)
    }

    /// Number of graph nodes this index was built for — the bound on
    /// what [`skills_of`](SkillIndex::skills_of) accepts.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.skills_of.len()
    }

    /// A copy sized for a graph that has **grown** to `num_nodes` nodes:
    /// every node beyond the original range holds no skills. Mutations
    /// that add authors (see `atd_graph::GraphDelta`) extend the graph
    /// past the index built at ingest time; querying such a graph with
    /// the unpadded index would read out of bounds in `skills_of`.
    /// Shrinking is refused (a smaller graph would orphan grants).
    pub fn padded_to(&self, num_nodes: usize) -> SkillIndex {
        assert!(
            num_nodes >= self.skills_of.len(),
            "cannot pad skill index down: {} nodes indexed, {num_nodes} requested",
            self.skills_of.len()
        );
        let mut padded = self.clone();
        padded.skills_of.resize(num_nodes, Vec::new());
        padded
    }

    /// Skills having at least `min_holders` holders — the workload
    /// generator samples projects from this pool.
    pub fn skills_with_min_holders(&self, min_holders: usize) -> Vec<SkillId> {
        (0..self.num_skills() as u32)
            .map(SkillId)
            .filter(|&s| self.holders(s).len() >= min_holders)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> SkillIndex {
        let mut b = SkillIndexBuilder::new();
        let ml = b.intern("ml");
        let db = b.intern("db");
        assert_eq!(b.intern("ml"), ml, "intern is idempotent");
        b.grant(NodeId(0), ml);
        b.grant(NodeId(1), ml);
        b.grant(NodeId(1), db);
        b.grant(NodeId(1), db); // duplicate grant
        b.build(3)
    }

    #[test]
    fn holders_and_skills_of() {
        let idx = sample_index();
        let ml = idx.id_of("ml").unwrap();
        let db = idx.id_of("db").unwrap();
        assert_eq!(idx.holders(ml), &[NodeId(0), NodeId(1)]);
        assert_eq!(idx.holders(db), &[NodeId(1)]);
        assert_eq!(idx.skills_of(NodeId(1)), &[ml, db]);
        assert!(idx.skills_of(NodeId(2)).is_empty());
    }

    #[test]
    fn duplicate_grants_collapse() {
        let idx = sample_index();
        let db = idx.id_of("db").unwrap();
        assert_eq!(idx.holders(db).len(), 1);
    }

    #[test]
    fn has_skill() {
        let idx = sample_index();
        let ml = idx.id_of("ml").unwrap();
        let db = idx.id_of("db").unwrap();
        assert!(idx.has_skill(NodeId(0), ml));
        assert!(!idx.has_skill(NodeId(0), db));
        assert!(!idx.has_skill(NodeId(2), ml));
    }

    #[test]
    fn project_dedups_preserving_order() {
        let p = Project::new(vec![SkillId(2), SkillId(1), SkillId(2), SkillId(0)]);
        assert_eq!(p.skills(), &[SkillId(2), SkillId(1), SkillId(0)]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(Project::new(vec![]).is_empty());
    }

    #[test]
    fn max_holder_count() {
        let idx = sample_index();
        let ml = idx.id_of("ml").unwrap();
        let db = idx.id_of("db").unwrap();
        let p = Project::new(vec![ml, db]);
        assert_eq!(idx.max_holder_count(&p), 2);
        assert_eq!(idx.max_holder_count(&Project::new(vec![])), 0);
    }

    #[test]
    fn skills_with_min_holders_filters() {
        let idx = sample_index();
        let ml = idx.id_of("ml").unwrap();
        assert_eq!(idx.skills_with_min_holders(2), vec![ml]);
        assert_eq!(idx.skills_with_min_holders(1).len(), 2);
        assert!(idx.skills_with_min_holders(3).is_empty());
    }

    #[test]
    fn padded_index_answers_for_grown_graph() {
        let idx = sample_index();
        assert_eq!(idx.num_nodes(), 3);
        let grown = idx.padded_to(5);
        assert_eq!(grown.num_nodes(), 5);
        let ml = grown.id_of("ml").unwrap();
        assert_eq!(grown.holders(ml), &[NodeId(0), NodeId(1)]);
        assert!(grown.skills_of(NodeId(4)).is_empty());
        assert!(!grown.has_skill(NodeId(4), ml));
    }

    #[test]
    #[should_panic(expected = "cannot pad skill index down")]
    fn padding_down_panics() {
        sample_index().padded_to(2);
    }

    #[test]
    #[should_panic(expected = "beyond graph size")]
    fn out_of_range_grant_panics() {
        let mut b = SkillIndexBuilder::new();
        let s = b.intern("x");
        b.grant(NodeId(10), s);
        b.build(3);
    }

    #[test]
    fn unknown_name_lookup() {
        let idx = sample_index();
        assert_eq!(idx.id_of("nope"), None);
        assert_eq!(idx.num_skills(), 2);
        assert_eq!(idx.name(SkillId(0)), "ml");
    }
}
