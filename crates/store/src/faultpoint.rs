//! Deterministic fault injection for the durability path.
//!
//! The store's crash-safety claims (no acknowledged mutation lost, a
//! checkpoint is atomic at the manifest rename, corrupt generations are
//! quarantined) are only testable if the crashes themselves are
//! *reproducible*. This module plants named **faultpoints** on the
//! journal's critical path; with the `fault-injection` cargo feature a
//! test arms a point with a [`FaultPlan`] — panic, fixed delay, or I/O
//! error — and the next N passages through it fire deterministically.
//! Without the feature every hook is an empty `#[inline]` function and
//! the registry does not exist, so production builds pay nothing.
//!
//! The registry is intentionally a sibling of `atd-serve`'s (the store
//! cannot depend on the serving layer): the serve-side
//! `serve.wal_append` point guards the publish path *before* it reaches
//! the journal, while these points sit inside the journal itself.
//!
//! Faultpoints in this crate:
//!
//! | name                     | site                                         | armed effect |
//! |--------------------------|----------------------------------------------|--------------|
//! | `store.wal_append`       | before the WAL record write + fsync          | I/O error / panic → append fails, mutation is NOT acknowledged |
//! | `store.checkpoint`       | after generation files exist, before publish | panic → orphaned gen files, manifest still names the old generation |
//! | `store.manifest_publish` | before the manifest tmp+rename               | I/O error / panic → checkpoint aborts, old manifest keeps ruling |

use std::time::Duration;

/// What an armed faultpoint does when hit.
#[derive(Debug, Clone)]
pub enum Fault {
    /// `panic!` with this message (the simulated `kill -9`).
    Panic(&'static str),
    /// Sleep for this long, then continue normally.
    Delay(Duration),
    /// Return an `io::Error` from [`hit_io`] (non-I/O sites treat it as
    /// a panic with the error text).
    IoError(&'static str),
}

/// An armed fault: which [`Fault`], after how many clean passages, how
/// many times.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The effect to fire.
    pub fault: Fault,
    /// Passages to let through cleanly before firing.
    pub skip: u32,
    /// How many passages fire (after `skip`); the plan disarms itself
    /// when exhausted.
    pub times: u32,
}

impl FaultPlan {
    /// Fire on the very next passage, `times` times.
    pub fn next(fault: Fault, times: u32) -> FaultPlan {
        FaultPlan {
            fault,
            skip: 0,
            times,
        }
    }

    /// Fire once after `skip` clean passages.
    pub fn after(fault: Fault, skip: u32) -> FaultPlan {
        FaultPlan {
            fault,
            skip,
            times: 1,
        }
    }
}

#[cfg(feature = "fault-injection")]
mod armed {
    use super::{Fault, FaultPlan};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    fn registry() -> &'static Mutex<HashMap<&'static str, FaultPlan>> {
        static REGISTRY: OnceLock<Mutex<HashMap<&'static str, FaultPlan>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock() -> std::sync::MutexGuard<'static, HashMap<&'static str, FaultPlan>> {
        // Faultpoints fire panics by design; recover the registry lock.
        registry().lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Arms `point` with `plan`, replacing any previous plan.
    pub fn arm(point: &'static str, plan: FaultPlan) {
        lock().insert(point, plan);
    }

    /// Disarms `point`; passages become clean again.
    pub fn disarm(point: &'static str) {
        lock().remove(point);
    }

    /// Disarms every faultpoint (test teardown).
    pub fn reset() {
        lock().clear();
    }

    /// Decides what this passage through `point` does. Exhausted plans
    /// self-disarm.
    pub(super) fn consume(point: &'static str) -> Option<Fault> {
        let mut reg = lock();
        let plan = reg.get_mut(point)?;
        if plan.skip > 0 {
            plan.skip -= 1;
            return None;
        }
        if plan.times == 0 {
            reg.remove(point);
            return None;
        }
        plan.times -= 1;
        let fault = plan.fault.clone();
        if plan.times == 0 {
            reg.remove(point);
        }
        Some(fault)
    }
}

#[cfg(feature = "fault-injection")]
pub use armed::{arm, disarm, reset};

/// A passage through faultpoint `point` on a non-I/O path. Armed panics
/// fire here; delays sleep; `IoError` plans also panic (the site has no
/// error channel). Compiles to nothing without `fault-injection`.
#[inline]
pub fn hit(point: &'static str) {
    #[cfg(feature = "fault-injection")]
    {
        match armed::consume(point) {
            Some(Fault::Panic(msg)) => panic!("injected fault at {point}: {msg}"),
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::IoError(msg)) => panic!("injected io fault at {point}: {msg}"),
            None => {}
        }
    }
    #[cfg(not(feature = "fault-injection"))]
    let _ = point;
}

/// A passage through faultpoint `point` on an I/O path: `IoError` plans
/// return `Err`, others behave as in [`hit`]. Compiles to `Ok(())`
/// without `fault-injection`.
#[inline]
pub fn hit_io(point: &'static str) -> std::io::Result<()> {
    #[cfg(feature = "fault-injection")]
    {
        match armed::consume(point) {
            Some(Fault::Panic(msg)) => panic!("injected fault at {point}: {msg}"),
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::IoError(msg)) => {
                return Err(std::io::Error::other(format!(
                    "injected io fault at {point}: {msg}"
                )))
            }
            None => {}
        }
    }
    let _ = point;
    Ok(())
}
