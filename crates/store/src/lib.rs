#![warn(missing_docs)]

//! # atd-store — durable mutation journal + generation store
//!
//! PR 6 made serving fault-tolerant *in memory*; this crate makes the
//! living graph fault-tolerant *on disk*. It implements a write-ahead
//! journal of [`atd_graph::GraphDelta`] mutations and a generation
//! store of checkpoints, with crash recovery that provably reproduces
//! every acknowledged mutation:
//!
//! * [`wal`] — the append-only log: checksummed, length-prefixed
//!   records, each sealed with the post-apply graph fingerprint; torn
//!   tails truncate cleanly, mid-stream corruption is a typed error.
//! * [`graphio`] — checksummed, self-validating graph dumps (the
//!   authoritative per-generation base state).
//! * [`manifest`] — the generation manifest, published by atomic
//!   tmp+rename: the single commit point of every checkpoint. Corrupt
//!   generations are quarantined, never deleted.
//! * [`journal`] — the orchestrator: open/recover, `append` (ack after
//!   durable), `checkpoint_with` (index persistence via
//!   `LabelStore::save_to` plugged in by the caller).
//! * [`faultpoint`] — deterministic crash injection
//!   (`store.wal_append`, `store.checkpoint`, `store.manifest_publish`)
//!   behind the `fault-injection` feature; free when disabled.
//!
//! The on-disk formats follow the untrusted-byte discipline of
//! `atd_distance::persist`: FNV-1a checksums, bounds-checked decoding,
//! structural validation of everything the checksum cannot see, typed
//! [`StoreError`]s and never a panic on hostile bytes.

pub mod codec;
pub mod error;
pub mod faultpoint;
pub mod graphio;
pub mod journal;
pub mod manifest;
pub mod wal;

pub use error::StoreError;
pub use journal::{AppendReceipt, Journal, JournalConfig, RecoveryReport, ReplayedTail};
pub use manifest::{GenerationEntry, GenerationStatus, Manifest};
pub use wal::{SegmentRead, WalHeader, WalRecord, WalWriter};
