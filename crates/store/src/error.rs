//! Typed errors for the durability layer.
//!
//! Same discipline as `atd_distance::persist`: every byte read off disk
//! is untrusted, and every way it can disappoint maps to a variant here
//! — never a panic, never silently-wrong data.

use std::fmt;
use std::io;

use atd_graph::GraphError;

/// Everything that can go wrong opening, replaying, appending to, or
/// checkpointing the journal.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// A file did not start with the expected magic for its kind (the
    /// payload names the file kind: WAL segment, manifest, graph dump).
    BadMagic(&'static str),
    /// A file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Which file kind declared the version.
        what: &'static str,
        /// The declared version.
        version: u16,
    },
    /// A full record or payload was present but its FNV-1a checksum did
    /// not match: mid-stream corruption, distinct from a torn tail
    /// (which is truncated cleanly, not an error).
    ChecksumMismatch(&'static str),
    /// A file ended before a structure it promised (e.g. a manifest
    /// shorter than its declared entry count).
    Truncated(&'static str),
    /// Bytes checksummed fine but decoded to an impossible structure
    /// (unknown op tag, out-of-range id, non-canonical edge order, …).
    Corrupt(&'static str),
    /// A WAL record's sequence number broke the contiguous `1, 2, …`
    /// chain of its segment.
    SequenceGap {
        /// The sequence number the chain required next.
        expected: u64,
        /// The sequence number actually read.
        found: u64,
    },
    /// Replaying a WAL record produced a graph whose fingerprint differs
    /// from the one the record was sealed with — the replayed state does
    /// not match what the writer acknowledged.
    ReplayMismatch {
        /// The sequence number of the offending record.
        seq: u64,
        /// The fingerprint sealed into the record at append time.
        expected: u64,
        /// The fingerprint of the replayed graph.
        found: u64,
    },
    /// A WAL segment does not belong to the generation the manifest
    /// paired it with (wrong base generation or base fingerprint).
    StaleSegment {
        /// What disagreed.
        what: &'static str,
    },
    /// A mutation was rejected by the graph layer (unknown node,
    /// self-loop, invalid weight, …). The journal state is unchanged and
    /// nothing was written.
    Graph(GraphError),
    /// Every generation in the manifest failed validation; there is no
    /// state to recover. The corrupt files are quarantined in place for
    /// forensics.
    NoValidGeneration,
    /// The caller-supplied index saver failed during a checkpoint; the
    /// checkpoint was aborted and the previous generation still rules.
    IndexPersist(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "journal i/o error: {e}"),
            StoreError::BadMagic(what) => write!(f, "{what}: not a recognized file (bad magic)"),
            StoreError::UnsupportedVersion { what, version } => {
                write!(f, "{what}: unsupported format version {version}")
            }
            StoreError::ChecksumMismatch(what) => {
                write!(f, "{what}: checksum mismatch (mid-stream corruption)")
            }
            StoreError::Truncated(what) => write!(f, "{what}: file truncated"),
            StoreError::Corrupt(what) => write!(f, "corrupt structure: {what}"),
            StoreError::SequenceGap { expected, found } => {
                write!(f, "wal sequence gap: expected #{expected}, found #{found}")
            }
            StoreError::ReplayMismatch {
                seq,
                expected,
                found,
            } => write!(
                f,
                "wal replay mismatch at #{seq}: sealed fingerprint {expected:#018x}, \
                 replayed {found:#018x}"
            ),
            StoreError::StaleSegment { what } => {
                write!(f, "wal segment does not match its generation: {what}")
            }
            StoreError::Graph(e) => write!(f, "mutation rejected: {e}"),
            StoreError::NoValidGeneration => {
                write!(f, "no valid generation to recover (all quarantined)")
            }
            StoreError::IndexPersist(msg) => {
                write!(f, "index save during checkpoint failed: {msg}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::Graph(e)
    }
}
