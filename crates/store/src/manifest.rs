//! The generation manifest: the store's single source of truth.
//!
//! A manifest names every generation the store knows, its graph
//! fingerprint, and its status. All other files are *derived from* the
//! generation number (`gen-<g>.graph`, `gen-<g>.atdl`, `wal-<g>.atdw`),
//! so publishing a new manifest — one atomic tmp+rename — is the commit
//! point of every checkpoint: a crash strictly before the rename leaves
//! the old manifest ruling (orphaned next-generation files are inert and
//! get overwritten by the next attempt); a crash after it leaves the new
//! generation fully published.
//!
//! Corrupt generations are **quarantined, not deleted**: recovery flips
//! the entry's status flag and republishes, keeping the damaged files on
//! disk for forensics while the service restarts from the newest valid
//! generation.
//!
//! ## On-disk format (all little-endian)
//!
//! ```text
//! 0   4   magic "ATDM"
//! 4   2   format version (currently 1)
//! 6   2   reserved (0)
//! 8   4   entry count
//! 12  —   entries × 24 bytes, strictly ascending by generation:
//!           0   8   generation
//!           8   8   graph fingerprint of the generation's checkpoint
//!           16  1   status (0 = active, 1 = quarantined)
//!           17  7   reserved (0)
//! end 8   FNV-1a 64 checksum of all preceding bytes
//! ```

use std::path::Path;

use atd_distance::persist::{atomic_write, checksum};

use crate::codec::{put_u16, put_u32, put_u64, Cursor};
use crate::error::StoreError;
use crate::faultpoint;

const MAGIC: &[u8; 4] = b"ATDM";
const VERSION: u16 = 1;
const ENTRY_LEN: usize = 24;

/// Whether a generation is servable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenerationStatus {
    /// Healthy: recovery may load it.
    Active,
    /// Failed validation at some recovery; kept on disk for forensics,
    /// never loaded, never pruned.
    Quarantined,
}

/// One generation the store knows about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenerationEntry {
    /// The generation number (file names derive from it).
    pub generation: u64,
    /// `graph_fingerprint` of the generation's checkpointed graph —
    /// cross-checked against the graph dump on load.
    pub graph_fingerprint: u64,
    /// Health flag.
    pub status: GenerationStatus,
}

/// The decoded manifest: entries in strictly ascending generation
/// order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Manifest {
    /// All known generations, ascending.
    pub entries: Vec<GenerationEntry>,
}

/// Name of a generation's graph dump inside the store directory.
pub fn graph_file_name(generation: u64) -> String {
    format!("gen-{generation}.graph")
}

/// Name of a generation's persisted distance index.
pub fn index_file_name(generation: u64) -> String {
    format!("gen-{generation}.atdl")
}

/// Name of the WAL segment extending a generation.
pub fn wal_file_name(generation: u64) -> String {
    format!("wal-{generation}.atdw")
}

/// Name of the manifest file inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST.atdm";

impl Manifest {
    /// Serializes to the `ATDM` format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.entries.len() * ENTRY_LEN);
        out.extend_from_slice(MAGIC);
        put_u16(&mut out, VERSION);
        put_u16(&mut out, 0);
        put_u32(&mut out, self.entries.len() as u32);
        for e in &self.entries {
            put_u64(&mut out, e.generation);
            put_u64(&mut out, e.graph_fingerprint);
            out.push(match e.status {
                GenerationStatus::Active => 0,
                GenerationStatus::Quarantined => 1,
            });
            out.extend_from_slice(&[0u8; 7]);
        }
        let sum = checksum(&out);
        put_u64(&mut out, sum);
        out
    }

    /// Decodes and validates `ATDM` bytes. The manifest is small and
    /// rewritten atomically, so *any* defect — truncation included — is
    /// a typed error rather than a truncate-and-continue (there is no
    /// ack protocol that would make a partial manifest meaningful).
    pub fn from_bytes(bytes: &[u8]) -> Result<Manifest, StoreError> {
        if bytes.len() < 20 {
            return Err(StoreError::Truncated("manifest"));
        }
        if &bytes[..4] != MAGIC {
            return Err(StoreError::BadMagic("manifest"));
        }
        let body = &bytes[..bytes.len() - 8];
        let declared = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if checksum(body) != declared {
            return Err(StoreError::ChecksumMismatch("manifest"));
        }
        let mut cur = Cursor::new(&body[4..]);
        let version = cur.u16("manifest version")?;
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion {
                what: "manifest",
                version,
            });
        }
        if cur.u16("manifest reserved")? != 0 {
            return Err(StoreError::Corrupt("manifest reserved bits set"));
        }
        let count = cur.u32("manifest entry count")? as usize;
        if cur.remaining() != count * ENTRY_LEN {
            return Err(StoreError::Truncated("manifest entries"));
        }
        let mut entries = Vec::with_capacity(count);
        let mut prev: Option<u64> = None;
        for _ in 0..count {
            let generation = cur.u64("entry generation")?;
            let graph_fingerprint = cur.u64("entry fingerprint")?;
            let status = match cur.u8("entry status")? {
                0 => GenerationStatus::Active,
                1 => GenerationStatus::Quarantined,
                _ => return Err(StoreError::Corrupt("unknown generation status")),
            };
            for _ in 0..7 {
                if cur.u8("entry reserved")? != 0 {
                    return Err(StoreError::Corrupt("entry reserved bits set"));
                }
            }
            if prev.is_some_and(|p| p >= generation) {
                return Err(StoreError::Corrupt("generations not strictly ascending"));
            }
            prev = Some(generation);
            entries.push(GenerationEntry {
                generation,
                graph_fingerprint,
                status,
            });
        }
        cur.finish("manifest has trailing bytes")?;
        Ok(Manifest { entries })
    }

    /// Loads and validates the manifest at `path`.
    pub fn load(path: &Path) -> Result<Manifest, StoreError> {
        Manifest::from_bytes(&std::fs::read(path)?)
    }

    /// Atomically publishes this manifest at `path` (tmp + rename, then
    /// a best-effort directory fsync so the rename itself is durable).
    /// This is the checkpoint commit point; the `store.manifest_publish`
    /// faultpoint guards it.
    pub fn publish(&self, path: &Path) -> Result<(), StoreError> {
        faultpoint::hit_io("store.manifest_publish")?;
        atomic_write(path, &self.to_bytes())?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// The newest generation recovery may load.
    pub fn newest_active(&self) -> Option<&GenerationEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.status == GenerationStatus::Active)
    }

    /// The number the next checkpoint publishes under: one past the
    /// newest known generation (quarantined ones included, so a damaged
    /// generation's number is never reused).
    pub fn next_generation(&self) -> u64 {
        self.entries.last().map_or(0, |e| e.generation + 1)
    }

    /// Flips `generation` to [`GenerationStatus::Quarantined`]; returns
    /// whether the entry existed.
    pub fn quarantine(&mut self, generation: u64) -> bool {
        match self.entries.iter_mut().find(|e| e.generation == generation) {
            Some(e) => {
                e.status = GenerationStatus::Quarantined;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            entries: vec![
                GenerationEntry {
                    generation: 0,
                    graph_fingerprint: 0xaaaa,
                    status: GenerationStatus::Active,
                },
                GenerationEntry {
                    generation: 1,
                    graph_fingerprint: 0xbbbb,
                    status: GenerationStatus::Quarantined,
                },
                GenerationEntry {
                    generation: 4,
                    graph_fingerprint: 0xcccc,
                    status: GenerationStatus::Active,
                },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let m = sample();
        assert_eq!(Manifest::from_bytes(&m.to_bytes()).unwrap(), m);
        assert_eq!(m.newest_active().unwrap().generation, 4);
        assert_eq!(m.next_generation(), 5);
    }

    #[test]
    fn every_truncation_and_byte_flip_is_a_typed_error() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(Manifest::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        for i in 0..bytes.len() {
            let mut patched = bytes.clone();
            patched[i] ^= 0x01;
            assert!(Manifest::from_bytes(&patched).is_err(), "flip {i}");
        }
    }

    #[test]
    fn resealed_structural_damage_is_still_typed() {
        // Re-checksummed patches get past the checksum and must be
        // caught by structural validation: descending generations.
        let mut m = sample();
        m.entries.swap(0, 2);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        put_u16(&mut bytes, VERSION);
        put_u16(&mut bytes, 0);
        put_u32(&mut bytes, m.entries.len() as u32);
        for e in &m.entries {
            put_u64(&mut bytes, e.generation);
            put_u64(&mut bytes, e.graph_fingerprint);
            bytes.push(match e.status {
                GenerationStatus::Active => 0,
                GenerationStatus::Quarantined => 1,
            });
            bytes.extend_from_slice(&[0u8; 7]);
        }
        let sum = checksum(&bytes);
        put_u64(&mut bytes, sum);
        assert!(matches!(
            Manifest::from_bytes(&bytes),
            Err(StoreError::Corrupt("generations not strictly ascending"))
        ));
    }

    #[test]
    fn quarantine_flips_status() {
        let mut m = sample();
        assert!(m.quarantine(4));
        assert!(m.newest_active().unwrap().generation == 0);
        assert!(!m.quarantine(99));
    }
}
