//! The journal: durable mutations + crash-recoverable generations.
//!
//! A [`Journal`] owns a store directory and moves it through exactly one
//! state machine:
//!
//! ```text
//!            ┌──────────────── open ────────────────┐
//!            │ no manifest?  → init generation 0    │
//!            │ manifest?     → newest active gen:   │
//!            │   load graph dump (fingerprint ✓)    │
//!            │   replay WAL tail (checksum ✓,       │
//!            │     sequence ✓, per-record           │
//!            │     post-fingerprint ✓)              │
//!            │   torn tail → truncate cleanly       │
//!            │   any defect → quarantine gen,       │
//!            │     try next-older active            │
//!            └──────────────────┬───────────────────┘
//!                               ▼
//!        append(delta):  apply → WAL write+fsync → ACK
//!                               │
//!        checkpoint():  write gen files (graph dump,
//!                       optional index, fresh WAL)
//!                               │
//!                       manifest tmp+rename  ◄── the commit point
//! ```
//!
//! The two invariants everything hangs off:
//!
//! * **Ack after durable.** [`Journal::append`] returns only after the
//!   record is on disk; an error means nothing was acknowledged, and a
//!   crash mid-append leaves a torn tail that recovery truncates —
//!   either way no *acknowledged* mutation is ever lost.
//! * **Commit at the rename.** A checkpoint writes every
//!   next-generation file first and publishes the manifest last. A
//!   crash before the rename leaves the old manifest ruling (the
//!   orphaned files are inert and get overwritten on the next attempt,
//!   because a failed generation's number is only reused while it never
//!   entered the manifest); a crash after it leaves the new generation
//!   fully live with an empty WAL.

use std::path::{Path, PathBuf};

use atd_distance::persist::{graph_fingerprint, sweep_orphaned_tmp_dir};
use atd_graph::{ExpertGraph, GraphDelta};

use crate::error::StoreError;
use crate::faultpoint;
use crate::graphio::{load_graph, save_graph};
use crate::manifest::{
    graph_file_name, index_file_name, wal_file_name, GenerationEntry, GenerationStatus, Manifest,
    MANIFEST_FILE,
};
use crate::wal::{read_segment_file, WalHeader, WalWriter};

/// Tuning knobs for a [`Journal`].
#[derive(Clone, Copy, Debug)]
pub struct JournalConfig {
    /// fsync WAL appends and generation files (the durability point of
    /// the ack). Turn off only in tests/benches that measure pure
    /// throughput — a crash can then lose acknowledged records the
    /// kernel had not flushed.
    pub sync_writes: bool,
    /// How many **active** generations to keep on disk, newest first
    /// (≥ 1; the freshly published one counts). Older active
    /// generations are pruned — files deleted, manifest entries dropped
    /// — after each successful checkpoint. Quarantined generations are
    /// never pruned.
    pub retain_generations: usize,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            sync_writes: true,
            retain_generations: 2,
        }
    }
}

/// What `append` acknowledged: the record is durable at this point.
#[derive(Clone, Copy, Debug)]
pub struct AppendReceipt {
    /// Sequence number inside the current generation's WAL segment.
    pub seq: u64,
    /// The generation whose segment holds the record.
    pub generation: u64,
    /// Fingerprint of the graph after this mutation (what a recovery
    /// must reproduce).
    pub graph_fingerprint: u64,
}

/// How [`Journal::open`] arrived at a servable state.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// The generation now serving.
    pub generation: u64,
    /// WAL records replayed on top of its checkpoint.
    pub replayed_records: u64,
    /// Whether a torn tail was truncated off the segment.
    pub torn_tail_truncated: bool,
    /// Generations newly quarantined by this recovery (newest first).
    pub quarantined: Vec<u64>,
    /// Fingerprint of the recovered graph (checkpoint + replayed tail).
    pub graph_fingerprint: u64,
    /// True when the directory was empty and generation 0 was
    /// initialized from the genesis graph.
    pub initialized: bool,
    /// Orphaned `*.tmp.<pid>.<seq>` files swept on open.
    pub swept_tmp_files: usize,
}

/// The WAL tail recovery replayed to reach the servable graph: the
/// checkpoint graph it started from plus the acknowledged deltas in
/// replay order. Engine layers use this to rebuild derived state (e.g. a
/// distance index) *incrementally* from a persisted per-checkpoint
/// artifact instead of from scratch — the journal itself has already
/// verified every record's sealed post-fingerprint, so the deltas are
/// exactly the acknowledged history.
#[derive(Clone, Debug)]
pub struct ReplayedTail {
    /// The generation's checkpoint graph, before any tail record.
    pub base_graph: ExpertGraph,
    /// The replayed deltas, oldest first; applying them to `base_graph`
    /// reproduces [`Journal::graph`] bit-identically.
    pub deltas: Vec<GraphDelta>,
}

/// A recovered, append-able, checkpoint-able store. See the module docs
/// for the state machine.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    config: JournalConfig,
    manifest: Manifest,
    generation: u64,
    graph: ExpertGraph,
    tip_fingerprint: u64,
    wal: WalWriter,
    tail_records: u64,
    replayed_tail: Option<ReplayedTail>,
}

/// One generation successfully validated during recovery.
struct Recovered {
    graph: ExpertGraph,
    tip_fingerprint: u64,
    replayed: u64,
    torn: bool,
    /// `Some(valid_len)` when the existing segment should be reopened
    /// at that length; `None` when the segment file itself was torn
    /// during creation and must be recreated.
    reopen_at: Option<u64>,
    /// Present when the replay had records (see [`ReplayedTail`]).
    tail: Option<ReplayedTail>,
}

impl Journal {
    /// Opens (or initializes) the store at `dir` and recovers to the
    /// newest valid generation. `genesis` supplies the initial graph
    /// only when the directory holds no manifest yet.
    ///
    /// Recovery walks active generations newest-first; any defect —
    /// missing or corrupt graph dump, stale or corrupt WAL segment, a
    /// replay whose fingerprint disagrees with what was acknowledged —
    /// quarantines that generation (status flip + manifest republish,
    /// files kept for forensics) and falls back to the next older one.
    /// [`StoreError::NoValidGeneration`] means nothing survived. A
    /// corrupt *manifest* is unrecoverable by design: it is tiny,
    /// rewritten atomically, and never appended to, so damage means the
    /// storage itself is untrustworthy.
    pub fn open(
        dir: &Path,
        config: JournalConfig,
        genesis: impl FnOnce() -> ExpertGraph,
    ) -> Result<(Journal, RecoveryReport), StoreError> {
        std::fs::create_dir_all(dir)?;
        let swept = sweep_orphaned_tmp_dir(dir);
        let manifest_path = dir.join(MANIFEST_FILE);
        if !manifest_path.exists() {
            return Self::init(dir, config, genesis(), swept);
        }

        let mut manifest = Manifest::load(&manifest_path)?;
        let mut quarantined = Vec::new();
        let active: Vec<GenerationEntry> = manifest
            .entries
            .iter()
            .rev()
            .filter(|e| e.status == GenerationStatus::Active)
            .copied()
            .collect();
        for entry in active {
            match Self::recover_generation(dir, &entry) {
                Ok(rec) => {
                    if !quarantined.is_empty() {
                        for &g in &quarantined {
                            manifest.quarantine(g);
                        }
                        manifest.publish(&manifest_path)?;
                    }
                    let wal_path = dir.join(wal_file_name(entry.generation));
                    let wal = match rec.reopen_at {
                        Some(valid_len) => WalWriter::reopen(
                            &wal_path,
                            valid_len,
                            rec.replayed,
                            config.sync_writes,
                        )?,
                        None => WalWriter::create(
                            &wal_path,
                            WalHeader {
                                base_generation: entry.generation,
                                base_fingerprint: entry.graph_fingerprint,
                            },
                            config.sync_writes,
                        )?,
                    };
                    let report = RecoveryReport {
                        generation: entry.generation,
                        replayed_records: rec.replayed,
                        torn_tail_truncated: rec.torn,
                        quarantined,
                        graph_fingerprint: rec.tip_fingerprint,
                        initialized: false,
                        swept_tmp_files: swept,
                    };
                    let journal = Journal {
                        dir: dir.to_path_buf(),
                        config,
                        manifest,
                        generation: entry.generation,
                        graph: rec.graph,
                        tip_fingerprint: rec.tip_fingerprint,
                        wal,
                        tail_records: rec.replayed,
                        replayed_tail: rec.tail,
                    };
                    return Ok((journal, report));
                }
                Err(_) => quarantined.push(entry.generation),
            }
        }
        // Nothing recovered: record the carnage, then fail typed.
        if !quarantined.is_empty() {
            for &g in &quarantined {
                manifest.quarantine(g);
            }
            manifest.publish(&manifest_path)?;
        }
        Err(StoreError::NoValidGeneration)
    }

    fn init(
        dir: &Path,
        config: JournalConfig,
        graph: ExpertGraph,
        swept: usize,
    ) -> Result<(Journal, RecoveryReport), StoreError> {
        let fp = graph_fingerprint(&graph);
        save_graph(&dir.join(graph_file_name(0)), &graph)?;
        let wal = WalWriter::create(
            &dir.join(wal_file_name(0)),
            WalHeader {
                base_generation: 0,
                base_fingerprint: fp,
            },
            config.sync_writes,
        )?;
        let manifest = Manifest {
            entries: vec![GenerationEntry {
                generation: 0,
                graph_fingerprint: fp,
                status: GenerationStatus::Active,
            }],
        };
        manifest.publish(&dir.join(MANIFEST_FILE))?;
        let report = RecoveryReport {
            generation: 0,
            replayed_records: 0,
            torn_tail_truncated: false,
            quarantined: Vec::new(),
            graph_fingerprint: fp,
            initialized: true,
            swept_tmp_files: swept,
        };
        Ok((
            Journal {
                dir: dir.to_path_buf(),
                config,
                manifest,
                generation: 0,
                graph,
                tip_fingerprint: fp,
                wal,
                tail_records: 0,
                replayed_tail: None,
            },
            report,
        ))
    }

    /// Validates one generation end to end: graph dump (checksum +
    /// fingerprint), WAL segment identity, and a self-verifying replay
    /// of the tail.
    fn recover_generation(dir: &Path, entry: &GenerationEntry) -> Result<Recovered, StoreError> {
        let graph = load_graph(
            &dir.join(graph_file_name(entry.generation)),
            entry.graph_fingerprint,
        )?;
        let read = read_segment_file(&dir.join(wal_file_name(entry.generation)))?;
        let Some(header) = read.header else {
            // Torn during segment creation: nothing was ever appended,
            // the checkpoint graph is the whole state.
            return Ok(Recovered {
                tip_fingerprint: entry.graph_fingerprint,
                graph,
                replayed: 0,
                torn: true,
                reopen_at: None,
                tail: None,
            });
        };
        if header.base_generation != entry.generation {
            return Err(StoreError::StaleSegment {
                what: "base generation",
            });
        }
        if header.base_fingerprint != entry.graph_fingerprint {
            return Err(StoreError::StaleSegment {
                what: "base fingerprint",
            });
        }
        let tail_base = (!read.records.is_empty()).then(|| graph.clone());
        let mut graph = graph;
        let mut tip = entry.graph_fingerprint;
        for rec in &read.records {
            graph = graph.apply_delta(&rec.delta)?;
            let fp = graph_fingerprint(&graph);
            if fp != rec.post_fingerprint {
                return Err(StoreError::ReplayMismatch {
                    seq: rec.seq,
                    expected: rec.post_fingerprint,
                    found: fp,
                });
            }
            tip = fp;
        }
        let tail = tail_base.map(|base_graph| ReplayedTail {
            base_graph,
            deltas: read.records.iter().map(|rec| rec.delta.clone()).collect(),
        });
        Ok(Recovered {
            graph,
            tip_fingerprint: tip,
            replayed: read.records.len() as u64,
            torn: read.torn,
            reopen_at: Some(read.valid_len),
            tail,
        })
    }

    /// Applies `delta`, makes the mutation durable, and acknowledges it.
    /// Order matters: the delta is validated and applied in memory
    /// first (a rejected op writes nothing), then the WAL record —
    /// sealed with the post-apply fingerprint — is written and fsynced,
    /// and only then does the in-memory state advance. An `Err` of any
    /// kind means the mutation is *not* acknowledged and recovery will
    /// not resurrect it. The `store.wal_append` faultpoint guards the
    /// write.
    pub fn append(&mut self, delta: &GraphDelta) -> Result<AppendReceipt, StoreError> {
        let next = self.graph.apply_delta(delta)?;
        let fp = graph_fingerprint(&next);
        faultpoint::hit_io("store.wal_append")?;
        let seq = self.wal.append(delta, fp)?;
        self.graph = next;
        self.tip_fingerprint = fp;
        self.tail_records = seq;
        Ok(AppendReceipt {
            seq,
            generation: self.generation,
            graph_fingerprint: fp,
        })
    }

    /// Checkpoints the current state as a new generation, without a
    /// persisted index (recovery will rebuild one).
    pub fn checkpoint(&mut self) -> Result<u64, StoreError> {
        self.checkpoint_with(|_, _| Ok(()))
    }

    /// Checkpoints the current state as a new generation: writes the
    /// graph dump, lets `save_index` persist a distance index at the
    /// generation's index path (e.g. via `LabelStore::save_to` /
    /// `Discovery::save_pll_index`), opens a fresh WAL segment, and
    /// **then** publishes the manifest — the atomic commit point.
    /// Afterwards, active generations beyond
    /// [`JournalConfig::retain_generations`] are pruned.
    ///
    /// Any failure before the publish aborts cleanly: the journal keeps
    /// appending to the old generation's segment and the next attempt
    /// overwrites the orphaned files. The `store.checkpoint` faultpoint
    /// sits between file creation and publish (the widest crash
    /// window); `store.manifest_publish` guards the rename itself.
    pub fn checkpoint_with(
        &mut self,
        save_index: impl FnOnce(&ExpertGraph, &Path) -> Result<(), String>,
    ) -> Result<u64, StoreError> {
        let gen = self.manifest.next_generation();
        let fp = self.tip_fingerprint;
        save_graph(&self.dir.join(graph_file_name(gen)), &self.graph)?;
        save_index(&self.graph, &self.dir.join(index_file_name(gen)))
            .map_err(StoreError::IndexPersist)?;
        let wal = WalWriter::create(
            &self.dir.join(wal_file_name(gen)),
            WalHeader {
                base_generation: gen,
                base_fingerprint: fp,
            },
            self.config.sync_writes,
        )?;
        faultpoint::hit("store.checkpoint");

        let mut manifest = self.manifest.clone();
        manifest.entries.push(GenerationEntry {
            generation: gen,
            graph_fingerprint: fp,
            status: GenerationStatus::Active,
        });
        let retain = self.config.retain_generations.max(1);
        let actives = manifest
            .entries
            .iter()
            .filter(|e| e.status == GenerationStatus::Active)
            .count();
        let mut prune = actives.saturating_sub(retain);
        let mut pruned = Vec::new();
        manifest.entries.retain(|e| {
            if e.status == GenerationStatus::Active && prune > 0 {
                prune -= 1;
                pruned.push(e.generation);
                false
            } else {
                true
            }
        });
        manifest.publish(&self.dir.join(MANIFEST_FILE))?;

        self.manifest = manifest;
        self.generation = gen;
        self.wal = wal;
        self.tail_records = 0;
        // The old generations' files are unreachable from the manifest
        // now; deleting them is mere disk hygiene and best-effort.
        for g in pruned {
            std::fs::remove_file(self.dir.join(graph_file_name(g))).ok();
            std::fs::remove_file(self.dir.join(index_file_name(g))).ok();
            std::fs::remove_file(self.dir.join(wal_file_name(g))).ok();
        }
        Ok(gen)
    }

    /// The current in-memory graph (checkpoint + acknowledged tail).
    pub fn graph(&self) -> &ExpertGraph {
        &self.graph
    }

    /// Fingerprint of [`graph`](Journal::graph).
    pub fn graph_fingerprint(&self) -> u64 {
        self.tip_fingerprint
    }

    /// The generation currently serving.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Acknowledged records in the current generation's WAL tail.
    pub fn tail_records(&self) -> u64 {
        self.tail_records
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest as currently published.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Path of the current generation's persisted index (whether the
    /// checkpoint's `save_index` wrote one is the caller's contract).
    pub fn index_path(&self) -> PathBuf {
        self.dir.join(index_file_name(self.generation))
    }

    /// Takes the WAL tail the opening recovery replayed, if any — the
    /// checkpoint graph plus the acknowledged deltas in order (see
    /// [`ReplayedTail`]). `None` when the open initialized a fresh store,
    /// the tail was empty, or the tail was already taken; appends after
    /// open do not refill it.
    pub fn take_replayed_tail(&mut self) -> Option<ReplayedTail> {
        self.replayed_tail.take()
    }
}
