//! Wire encoding shared by the WAL, manifest, and graph-dump formats.
//!
//! Everything is little-endian and length-prefixed; reads go through a
//! bounds-checked cursor over untrusted bytes (the `persist.rs`
//! discipline — no read can slice out of range, no length prefix can
//! drive an allocation larger than the bytes actually present).

use atd_graph::{GraphDelta, GraphOp, NodeId};

use crate::error::StoreError;

/// Bounds-checked reader over untrusted bytes.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u16(&mut self, what: &'static str) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self, what: &'static str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// The decode must consume every byte it was given — trailing bytes
    /// mean the length prefix and the content disagree.
    pub(crate) fn finish(self, what: &'static str) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Corrupt(what));
        }
        Ok(())
    }
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

// Op tags of the delta wire format. Stable: a new op kind gets a new tag
// (and a format-version bump in the WAL header), never a reused one.
const TAG_ADD_AUTHOR: u8 = 1;
const TAG_SET_AUTHORITY: u8 = 2;
const TAG_UPSERT_EDGE: u8 = 3;
const TAG_REINFORCE_EDGE: u8 = 4;

/// Appends the canonical byte encoding of `delta` to `out`:
/// `[op_count u32]` then per op a 1-byte tag plus its fields.
pub(crate) fn put_delta(out: &mut Vec<u8>, delta: &GraphDelta) {
    put_u32(out, delta.len() as u32);
    for op in delta.ops() {
        match *op {
            GraphOp::AddAuthor { authority } => {
                out.push(TAG_ADD_AUTHOR);
                put_f64(out, authority);
            }
            GraphOp::SetAuthority { node, authority } => {
                out.push(TAG_SET_AUTHORITY);
                put_u32(out, node.index() as u32);
                put_f64(out, authority);
            }
            GraphOp::UpsertEdge { u, v, weight } => {
                out.push(TAG_UPSERT_EDGE);
                put_u32(out, u.index() as u32);
                put_u32(out, v.index() as u32);
                put_f64(out, weight);
            }
            GraphOp::ReinforceEdge { u, v, weight } => {
                out.push(TAG_REINFORCE_EDGE);
                put_u32(out, u.index() as u32);
                put_u32(out, v.index() as u32);
                put_f64(out, weight);
            }
        }
    }
}

/// Decodes a delta payload produced by [`put_delta`]. Structural
/// validation only (tags, exact consumption) — semantic validation
/// (unknown nodes, weights) is `ExpertGraph::apply_delta`'s job, so a
/// decoded delta round-trips even when it would be rejected at apply
/// time.
pub(crate) fn read_delta(bytes: &[u8]) -> Result<GraphDelta, StoreError> {
    let mut cur = Cursor::new(bytes);
    let count = cur.u32("delta op count")? as usize;
    // Cheapest op on the wire is 9 bytes (tag + f64); a count promising
    // more ops than the payload could hold is corrupt, not an allocation.
    if count > cur.remaining() / 9 + 1 {
        return Err(StoreError::Corrupt("delta op count exceeds payload"));
    }
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = cur.u8("delta op tag")?;
        let op = match tag {
            TAG_ADD_AUTHOR => GraphOp::AddAuthor {
                authority: cur.f64("add-author authority")?,
            },
            TAG_SET_AUTHORITY => GraphOp::SetAuthority {
                node: NodeId::from_index(cur.u32("set-authority node")? as usize),
                authority: cur.f64("set-authority authority")?,
            },
            TAG_UPSERT_EDGE => GraphOp::UpsertEdge {
                u: NodeId::from_index(cur.u32("upsert-edge u")? as usize),
                v: NodeId::from_index(cur.u32("upsert-edge v")? as usize),
                weight: cur.f64("upsert-edge weight")?,
            },
            TAG_REINFORCE_EDGE => GraphOp::ReinforceEdge {
                u: NodeId::from_index(cur.u32("reinforce-edge u")? as usize),
                v: NodeId::from_index(cur.u32("reinforce-edge v")? as usize),
                weight: cur.f64("reinforce-edge weight")?,
            },
            _ => return Err(StoreError::Corrupt("unknown delta op tag")),
        };
        ops.push(op);
    }
    cur.finish("delta payload has trailing bytes")?;
    Ok(GraphDelta::from_ops(ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_round_trips() {
        let mut d = GraphDelta::new();
        let n = d.add_author(7.5, 3);
        d.set_authority(NodeId::from_index(1), 2.0)
            .upsert_edge(NodeId::from_index(0), n, 0.25)
            .reinforce_edge(NodeId::from_index(2), n, 0.5);
        let mut bytes = Vec::new();
        put_delta(&mut bytes, &d);
        let back = read_delta(&bytes).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn empty_delta_round_trips() {
        let mut bytes = Vec::new();
        put_delta(&mut bytes, &GraphDelta::new());
        assert!(read_delta(&bytes).unwrap().is_empty());
    }

    #[test]
    fn bad_tag_and_trailing_bytes_are_corrupt() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 1);
        bytes.push(99); // no such tag
        bytes.extend_from_slice(&[0; 8]);
        assert!(matches!(
            read_delta(&bytes),
            Err(StoreError::Corrupt("unknown delta op tag"))
        ));

        let mut bytes = Vec::new();
        put_delta(&mut bytes, &GraphDelta::new());
        bytes.push(0);
        assert!(matches!(read_delta(&bytes), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn truncated_payload_is_truncated_not_panic() {
        let mut d = GraphDelta::new();
        d.upsert_edge(NodeId::from_index(0), NodeId::from_index(1), 0.5);
        let mut bytes = Vec::new();
        put_delta(&mut bytes, &d);
        for cut in 0..bytes.len() {
            let err = read_delta(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, StoreError::Truncated(_) | StoreError::Corrupt(_)),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }
}
