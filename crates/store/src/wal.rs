//! The append-only write-ahead log of graph mutations.
//!
//! One WAL segment extends one generation: it records, in order, every
//! [`GraphDelta`] acknowledged since that generation's checkpoint. A
//! crash can only lose the *unacknowledged* suffix of the segment — the
//! torn tail — because a mutation is acknowledged strictly after its
//! record reached the disk (single `write_all` + fsync).
//!
//! ## On-disk format (all little-endian)
//!
//! ```text
//! header (24 bytes):
//!   0   4   magic "ATDW"
//!   4   2   format version (currently 1)
//!   6   2   reserved (0)
//!   8   8   base generation   — the checkpoint this segment extends
//!   16  8   base fingerprint  — graph_fingerprint of that checkpoint
//!
//! records, back to back (28-byte record header + payload):
//!   0   4   payload length in bytes
//!   4   8   sequence number (contiguous from 1 within the segment)
//!   12  8   post-apply graph fingerprint (state after this delta)
//!   20  8   FNV-1a 64 over [seq le ‖ post-fingerprint le ‖ payload]
//!   28  —   payload: the delta encoding (see `codec`)
//! ```
//!
//! ## Read discipline
//!
//! Records are written with a single `write_all` each, so a crash leaves
//! at most a strict byte-prefix of one record at the end of the file.
//! Reading therefore distinguishes two failure shapes:
//!
//! * **Torn tail** — the bytes at EOF are a proper prefix of a record
//!   (fewer than a record header, or a declared extent past EOF). This
//!   is the expected crash residue: the tail is *cleanly truncated*, not
//!   an error. By the ack rule above, a torn record was never
//!   acknowledged. (Corollary: bit rot that corrupts a length field into
//!   pointing past EOF is indistinguishable from a torn write and is
//!   also treated as end-of-log — the checksum protects record
//!   *content*, the ack protocol bounds what a length-field failure can
//!   silently drop to unacknowledged suffixes or a quarantinable
//!   generation.)
//! * **Mid-stream corruption** — a record's declared extent is fully
//!   present but its checksum, sequence, or payload structure is wrong.
//!   That is never a crash artifact, so it surfaces as a typed
//!   [`StoreError`] and the journal quarantines the generation.
//!
//! Every record carries the fingerprint of the graph *after* applying
//! it, so replay is self-verifying: the journal re-applies each delta
//! and cross-checks the fingerprint, proving the recovered state is
//! bit-identical to what the writer acknowledged.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use atd_distance::persist::checksum;
use atd_graph::GraphDelta;

use crate::codec::{put_delta, put_u16, put_u32, put_u64, read_delta};
use crate::error::StoreError;

const MAGIC: &[u8; 4] = b"ATDW";
const VERSION: u16 = 1;
/// Size of the segment header.
pub const HEADER_LEN: usize = 24;
/// Size of the per-record header (length + seq + fingerprint + checksum).
pub const RECORD_HEADER_LEN: usize = 28;

/// The identity a segment declares in its header: which checkpoint it
/// extends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalHeader {
    /// Generation of the checkpoint this segment's records apply on top
    /// of.
    pub base_generation: u64,
    /// `graph_fingerprint` of that checkpoint's graph.
    pub base_fingerprint: u64,
}

/// One acknowledged mutation read back from a segment.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// Position in the segment's contiguous `1, 2, …` chain.
    pub seq: u64,
    /// Fingerprint of the graph after applying `delta` (the replay
    /// cross-check).
    pub post_fingerprint: u64,
    /// The mutation itself.
    pub delta: GraphDelta,
}

/// The outcome of scanning a segment's bytes.
#[derive(Debug)]
pub struct SegmentRead {
    /// The declared header, or `None` when the file is shorter than a
    /// header — the crash residue of segment creation itself (the
    /// journal recreates the segment; nothing could have been
    /// acknowledged against it).
    pub header: Option<WalHeader>,
    /// Every whole, verified record in order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + whole records); the
    /// torn tail beyond it is discarded by truncating to this length.
    pub valid_len: u64,
    /// Whether a torn tail was found (and excluded) after `valid_len`.
    pub torn: bool,
}

fn record_bytes(seq: u64, post_fingerprint: u64, delta: &GraphDelta) -> Vec<u8> {
    let mut payload = Vec::new();
    put_delta(&mut payload, delta);
    let mut sealed = Vec::with_capacity(16 + payload.len());
    put_u64(&mut sealed, seq);
    put_u64(&mut sealed, post_fingerprint);
    sealed.extend_from_slice(&payload);
    let sum = checksum(&sealed);
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&sealed[..16]);
    put_u64(&mut out, sum);
    out.extend_from_slice(&payload);
    out
}

fn header_bytes(header: WalHeader) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(MAGIC);
    put_u16(&mut out, VERSION);
    put_u16(&mut out, 0);
    put_u64(&mut out, header.base_generation);
    put_u64(&mut out, header.base_fingerprint);
    out
}

/// Scans segment `bytes`: verifies the header, walks records verifying
/// checksum + sequence + payload structure, truncates a torn tail.
/// See the module docs for the torn-vs-corrupt distinction.
pub fn read_segment(bytes: &[u8]) -> Result<SegmentRead, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Ok(SegmentRead {
            header: None,
            records: Vec::new(),
            valid_len: 0,
            torn: true,
        });
    }
    if &bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic("wal segment"));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion {
            what: "wal segment",
            version,
        });
    }
    if bytes[6..8] != [0, 0] {
        return Err(StoreError::Corrupt("wal reserved bits set"));
    }
    let header = WalHeader {
        base_generation: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
        base_fingerprint: u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
    };

    let mut records = Vec::new();
    let mut offset = HEADER_LEN;
    let mut torn = false;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < RECORD_HEADER_LEN {
            torn = true;
            break;
        }
        let rec = &bytes[offset..];
        let payload_len = u32::from_le_bytes(rec[..4].try_into().unwrap()) as usize;
        let Some(extent) = RECORD_HEADER_LEN.checked_add(payload_len) else {
            torn = true;
            break;
        };
        if extent > remaining {
            torn = true;
            break;
        }
        let seq = u64::from_le_bytes(rec[4..12].try_into().unwrap());
        let post_fingerprint = u64::from_le_bytes(rec[12..20].try_into().unwrap());
        let declared = u64::from_le_bytes(rec[20..28].try_into().unwrap());
        let mut sealed = Vec::with_capacity(16 + payload_len);
        sealed.extend_from_slice(&rec[4..20]);
        sealed.extend_from_slice(&rec[RECORD_HEADER_LEN..extent]);
        if checksum(&sealed) != declared {
            return Err(StoreError::ChecksumMismatch("wal record"));
        }
        let expected = records.len() as u64 + 1;
        if seq != expected {
            return Err(StoreError::SequenceGap {
                expected,
                found: seq,
            });
        }
        let delta = read_delta(&rec[RECORD_HEADER_LEN..extent])?;
        records.push(WalRecord {
            seq,
            post_fingerprint,
            delta,
        });
        offset += extent;
    }
    Ok(SegmentRead {
        header: Some(header),
        records,
        valid_len: offset as u64,
        torn,
    })
}

/// Reads and scans the segment at `path`.
pub fn read_segment_file(path: &Path) -> Result<SegmentRead, StoreError> {
    read_segment(&std::fs::read(path)?)
}

/// The append handle for one segment. Creation writes the header; every
/// [`append`](WalWriter::append) is a single `write_all` of one whole
/// record followed (when `sync`) by an fsync — the durability point a
/// caller may acknowledge behind.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    next_seq: u64,
    sync: bool,
}

impl WalWriter {
    /// Creates (or truncates) the segment at `path` with `header`.
    pub fn create(path: &Path, header: WalHeader, sync: bool) -> Result<WalWriter, StoreError> {
        let mut file = File::create(path)?;
        file.write_all(&header_bytes(header))?;
        if sync {
            file.sync_data()?;
        }
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            next_seq: 1,
            sync,
        })
    }

    /// Reopens a recovered segment for appending: truncates the torn
    /// tail to `valid_len` and continues the chain after `records`
    /// verified records.
    pub fn reopen(
        path: &Path,
        valid_len: u64,
        records: u64,
        sync: bool,
    ) -> Result<WalWriter, StoreError> {
        // Append mode: writes land at EOF, which after the truncation
        // below is exactly the end of the valid prefix.
        let file = OpenOptions::new().append(true).open(path)?;
        file.set_len(valid_len)?;
        if sync {
            file.sync_data()?;
        }
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            next_seq: records + 1,
            sync,
        })
    }

    /// Appends one record and returns its sequence number. On `Ok` the
    /// record is on disk (fsynced when `sync`); on `Err` nothing may be
    /// acknowledged — a partial write is exactly the torn tail recovery
    /// truncates.
    pub fn append(&mut self, delta: &GraphDelta, post_fingerprint: u64) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        let bytes = record_bytes(seq, post_fingerprint, delta);
        self.file.write_all(&bytes)?;
        if self.sync {
            self.file.sync_data()?;
        }
        self.next_seq += 1;
        Ok(seq)
    }

    /// Sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atd_graph::NodeId;

    fn deltas() -> Vec<(GraphDelta, u64)> {
        let mut d1 = GraphDelta::new();
        d1.add_author(1.5, 3);
        let mut d2 = GraphDelta::new();
        d2.upsert_edge(NodeId::from_index(0), NodeId::from_index(3), 0.5);
        let mut d3 = GraphDelta::new();
        d3.reinforce_edge(NodeId::from_index(1), NodeId::from_index(2), 0.25)
            .set_authority(NodeId::from_index(0), 9.0);
        vec![(d1, 11), (d2, 22), (d3, 33)]
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "atd_wal_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_read_round_trips() {
        let dir = tempdir("roundtrip");
        let path = dir.join("wal-0.atdw");
        let header = WalHeader {
            base_generation: 7,
            base_fingerprint: 0xfeed,
        };
        let mut w = WalWriter::create(&path, header, true).unwrap();
        for (d, fp) in deltas() {
            w.append(&d, fp).unwrap();
        }
        let read = read_segment_file(&path).unwrap();
        assert_eq!(read.header, Some(header));
        assert!(!read.torn);
        assert_eq!(read.records.len(), 3);
        for (i, ((d, fp), rec)) in deltas().iter().zip(&read.records).enumerate() {
            assert_eq!(rec.seq, i as u64 + 1);
            assert_eq!(rec.post_fingerprint, *fp);
            assert_eq!(&rec.delta, d);
        }
        assert_eq!(read.valid_len, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_point_recovers_a_whole_record_prefix() {
        let dir = tempdir("trunc");
        let path = dir.join("wal.atdw");
        let header = WalHeader {
            base_generation: 0,
            base_fingerprint: 1,
        };
        let mut w = WalWriter::create(&path, header, false).unwrap();
        let mut boundaries = vec![std::fs::metadata(&path).unwrap().len()];
        for (d, fp) in deltas() {
            w.append(&d, fp).unwrap();
            boundaries.push(std::fs::metadata(&path).unwrap().len());
        }
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            let read = read_segment(&bytes[..cut]).unwrap();
            if cut < HEADER_LEN {
                assert!(read.header.is_none() && read.torn && read.valid_len == 0);
                continue;
            }
            // The valid prefix must be the largest record boundary ≤ cut.
            let want = boundaries
                .iter()
                .filter(|&&b| b <= cut as u64)
                .max()
                .copied()
                .unwrap();
            assert_eq!(read.valid_len, want, "cut at {cut}");
            assert_eq!(read.torn, (want != cut as u64), "cut at {cut}");
            let whole = boundaries.iter().position(|&b| b == want).unwrap();
            assert_eq!(read.records.len(), whole, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_truncates_torn_tail_and_continues_the_chain() {
        let dir = tempdir("reopen");
        let path = dir.join("wal.atdw");
        let header = WalHeader {
            base_generation: 0,
            base_fingerprint: 1,
        };
        let mut w = WalWriter::create(&path, header, false).unwrap();
        let all = deltas();
        for (d, fp) in &all[..2] {
            w.append(d, *fp).unwrap();
        }
        drop(w);
        // Simulate a torn third record: append garbage prefix.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x55; 10]);
        std::fs::write(&path, &bytes).unwrap();

        let read = read_segment_file(&path).unwrap();
        assert!(read.torn);
        assert_eq!(read.records.len(), 2);
        let mut w =
            WalWriter::reopen(&path, read.valid_len, read.records.len() as u64, false).unwrap();
        assert_eq!(w.append(&all[2].0, all[2].1).unwrap(), 3);
        drop(w);
        let read = read_segment_file(&path).unwrap();
        assert!(!read.torn);
        assert_eq!(read.records.len(), 3);
        assert_eq!(read.records[2].delta, all[2].0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequence_gap_is_typed() {
        let header = WalHeader {
            base_generation: 0,
            base_fingerprint: 0,
        };
        let mut bytes = header_bytes(header);
        bytes.extend_from_slice(&record_bytes(2, 0, &GraphDelta::new()));
        assert!(matches!(
            read_segment(&bytes),
            Err(StoreError::SequenceGap {
                expected: 1,
                found: 2
            })
        ));
    }
}
