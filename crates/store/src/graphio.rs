//! Checksummed graph dumps: the per-generation base state.
//!
//! A generation's graph lives in `gen-<g>.graph` as a self-validating
//! dump (magic `ATDG`). Unlike the index file next to it — which is
//! *derived* and can always be rebuilt — the graph dump is the
//! authoritative state a WAL segment replays on top of, so it gets the
//! full untrusted-byte treatment: FNV-1a checksum over the payload,
//! structural validation of every id and weight, and a fingerprint
//! cross-check against the manifest entry that named it.
//!
//! ## On-disk format (all little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "ATDG"
//! 4       2     format version (currently 1)
//! 6       2     reserved (0)
//! 8       8     node count
//! 16      8     edge count
//! 24      8     payload length in bytes
//! 32      8     FNV-1a 64 checksum of the payload
//! 40      —     payload:
//!               nodes × f64   authorities (bit patterns)
//!               edges × (u u32, v u32, w f64)  canonical stream:
//!                             u < v, (u, v) strictly ascending
//! ```

use std::path::Path;

use atd_distance::persist::{atomic_write, checksum, graph_fingerprint};
use atd_graph::{ExpertGraph, GraphBuilder};

use crate::codec::{put_f64, put_u16, put_u32, put_u64, Cursor};
use crate::error::StoreError;

const MAGIC: &[u8; 4] = b"ATDG";
const VERSION: u16 = 1;
const HEADER_LEN: usize = 40;

/// Serializes `g` into the `ATDG` dump format.
pub fn graph_to_bytes(g: &ExpertGraph) -> Vec<u8> {
    let mut payload = Vec::with_capacity(g.num_nodes() * 8 + g.num_edges() * 16);
    for &a in g.authorities() {
        put_f64(&mut payload, a);
    }
    for (u, v, w) in g.edges() {
        put_u32(&mut payload, u.index() as u32);
        put_u32(&mut payload, v.index() as u32);
        put_f64(&mut payload, w);
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    put_u16(&mut out, VERSION);
    put_u16(&mut out, 0);
    put_u64(&mut out, g.num_nodes() as u64);
    put_u64(&mut out, g.num_edges() as u64);
    put_u64(&mut out, payload.len() as u64);
    put_u64(&mut out, checksum(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decodes and validates an `ATDG` dump. Every failure is a typed
/// [`StoreError`]; the rebuilt graph goes through [`GraphBuilder`], so
/// even checksummed-but-hostile bytes cannot produce an inconsistent
/// CSR.
pub fn graph_from_bytes(bytes: &[u8]) -> Result<ExpertGraph, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated("graph dump header"));
    }
    let mut cur = Cursor::new(&bytes[..HEADER_LEN]);
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&bytes[..4]);
    cur.u32("graph magic")?;
    if &magic != MAGIC {
        return Err(StoreError::BadMagic("graph dump"));
    }
    let version = cur.u16("graph version")?;
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion {
            what: "graph dump",
            version,
        });
    }
    if cur.u16("graph reserved")? != 0 {
        return Err(StoreError::Corrupt("graph reserved bits set"));
    }
    let nodes = cur.u64("graph node count")? as usize;
    let edges = cur.u64("graph edge count")? as usize;
    let payload_len = cur.u64("graph payload length")? as usize;
    let declared_checksum = cur.u64("graph checksum")?;
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != payload_len {
        return Err(StoreError::Truncated("graph dump payload"));
    }
    if nodes
        .checked_mul(8)
        .and_then(|a| edges.checked_mul(16).map(|e| (a, e)))
        .is_none_or(|(a, e)| a + e != payload_len)
    {
        return Err(StoreError::Corrupt("graph payload length inconsistent"));
    }
    if checksum(payload) != declared_checksum {
        return Err(StoreError::ChecksumMismatch("graph dump"));
    }

    let mut cur = Cursor::new(payload);
    let mut builder = GraphBuilder::new();
    for _ in 0..nodes {
        let a = cur.f64("authority")?;
        if !a.is_finite() || a < 0.0 {
            return Err(StoreError::Corrupt("non-finite or negative authority"));
        }
        builder.add_node(a);
    }
    let mut prev: Option<(u32, u32)> = None;
    for _ in 0..edges {
        let u = cur.u32("edge u")?;
        let v = cur.u32("edge v")?;
        let w = cur.f64("edge weight")?;
        if u >= v {
            return Err(StoreError::Corrupt("edge endpoints not u < v"));
        }
        if v as usize >= nodes {
            return Err(StoreError::Corrupt("edge endpoint out of range"));
        }
        if prev.is_some_and(|p| p >= (u, v)) {
            return Err(StoreError::Corrupt("edge stream not strictly ascending"));
        }
        prev = Some((u, v));
        builder
            .add_edge(
                atd_graph::NodeId::from_index(u as usize),
                atd_graph::NodeId::from_index(v as usize),
                w,
            )
            .map_err(|_| StoreError::Corrupt("edge rejected by builder"))?;
    }
    cur.finish("graph payload has trailing bytes")?;
    builder
        .build()
        .map_err(|_| StoreError::Corrupt("graph rejected by builder"))
}

/// Writes `g` to `path` atomically (tmp + rename via
/// [`atd_distance::persist::atomic_write`]).
pub fn save_graph(path: &Path, g: &ExpertGraph) -> Result<(), StoreError> {
    atomic_write(path, &graph_to_bytes(g)).map_err(StoreError::Io)
}

/// Loads a graph dump from `path` and verifies its fingerprint equals
/// `expect_fingerprint` (the value the manifest recorded for the
/// generation). A mismatch after a clean decode means the dump is a
/// valid graph but not *this generation's* graph.
pub fn load_graph(path: &Path, expect_fingerprint: u64) -> Result<ExpertGraph, StoreError> {
    let bytes = std::fs::read(path)?;
    let g = graph_from_bytes(&bytes)?;
    let fp = graph_fingerprint(&g);
    if fp != expect_fingerprint {
        return Err(StoreError::Corrupt("graph fingerprint mismatch"));
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atd_graph::NodeId;

    fn sample() -> ExpertGraph {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..5).map(|i| b.add_node(i as f64 + 0.5)).collect();
        b.add_edge(n[0], n[1], 0.25).unwrap();
        b.add_edge(n[1], n[2], 0.5).unwrap();
        b.add_edge(n[0], n[4], 0.75).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trips_bit_identically() {
        let g = sample();
        let bytes = graph_to_bytes(&g);
        let back = graph_from_bytes(&bytes).unwrap();
        assert_eq!(graph_fingerprint(&back), graph_fingerprint(&g));
        assert_eq!(graph_to_bytes(&back), bytes);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = graph_to_bytes(&sample());
        for cut in 0..bytes.len() {
            let err = graph_from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated(_) | StoreError::Corrupt(_) | StoreError::BadMagic(_)
                ),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let g = sample();
        let bytes = graph_to_bytes(&g);
        let fp = graph_fingerprint(&g);
        for i in 0..bytes.len() {
            let mut patched = bytes.clone();
            patched[i] ^= 0x01;
            match graph_from_bytes(&patched) {
                Err(_) => {}
                // A flip that still decodes must be caught by the
                // fingerprint cross-check the manifest drives.
                Ok(decoded) => assert_ne!(
                    graph_fingerprint(&decoded),
                    fp,
                    "flip at byte {i} silently preserved the fingerprint"
                ),
            }
        }
    }
}
