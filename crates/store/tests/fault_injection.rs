//! Crash injection at the journal's faultpoints (`store.wal_append`,
//! `store.checkpoint`, `store.manifest_publish`): every boundary of the
//! append/checkpoint/publish path gets a deterministic fault, and every
//! time the invariants must hold — an error means *not acknowledged*,
//! a crash before the manifest rename means the old generation still
//! rules, and recovery always lands on exactly the acknowledged state.
//!
//! Each test arms only its own faultpoint (the registry is
//! process-global; `reset()` would race sibling tests).
#![cfg(feature = "fault-injection")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use atd_graph::{ExpertGraph, GraphBuilder, GraphDelta, NodeId};
use atd_store::faultpoint::{arm, disarm, Fault, FaultPlan};
use atd_store::{Journal, JournalConfig, StoreError};

fn genesis() -> ExpertGraph {
    let mut b = GraphBuilder::new();
    let n: Vec<NodeId> = (0..3).map(|i| b.add_node(2.0 + i as f64)).collect();
    b.add_edge(n[0], n[1], 0.4).unwrap();
    b.add_edge(n[1], n[2], 0.7).unwrap();
    b.build().unwrap()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "atd_store_fault_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn nosync() -> JournalConfig {
    JournalConfig {
        sync_writes: false,
        ..JournalConfig::default()
    }
}

fn edge_delta(u: usize, v: usize, w: f64) -> GraphDelta {
    let mut d = GraphDelta::new();
    d.upsert_edge(NodeId::from_index(u), NodeId::from_index(v), w);
    d
}

#[test]
fn append_io_fault_means_not_acknowledged() {
    let dir = tempdir("append");
    let (mut j, _) = Journal::open(&dir, nosync(), genesis).unwrap();
    let d1 = edge_delta(0, 2, 0.9);
    j.append(&d1).unwrap();
    let acked = j.graph_fingerprint();

    arm(
        "store.wal_append",
        FaultPlan::next(Fault::IoError("disk gone"), 1),
    );
    let err = j.append(&edge_delta(0, 1, 0.1)).unwrap_err();
    disarm("store.wal_append");
    assert!(matches!(err, StoreError::Io(_)));
    // The failed mutation is not acknowledged and left no trace: the
    // in-memory state is unchanged and recovery reproduces only the
    // acknowledged prefix.
    assert_eq!(j.graph_fingerprint(), acked);
    drop(j);
    let (mut j, report) = Journal::open(&dir, nosync(), || unreachable!()).unwrap();
    assert_eq!(report.replayed_records, 1);
    assert_eq!(j.graph_fingerprint(), acked);
    // The journal keeps accepting appends after the fault.
    j.append(&edge_delta(0, 1, 0.1)).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_between_checkpoint_files_and_publish_keeps_old_generation() {
    let dir = tempdir("checkpoint_kill");
    let (mut j, _) = Journal::open(&dir, nosync(), genesis).unwrap();
    j.append(&edge_delta(0, 2, 0.6)).unwrap();
    let acked = j.graph_fingerprint();

    // The process dies after writing every generation-1 file but before
    // the manifest rename: the widest crash window of a checkpoint.
    arm(
        "store.checkpoint",
        FaultPlan::next(Fault::Panic("kill -9"), 1),
    );
    let result = catch_unwind(AssertUnwindSafe(|| j.checkpoint()));
    disarm("store.checkpoint");
    assert!(result.is_err(), "injected kill must unwind");
    drop(j); // the "crashed" process never uses the handle again

    let (mut j, report) = Journal::open(&dir, nosync(), || unreachable!()).unwrap();
    assert_eq!(report.generation, 0, "old generation still rules");
    assert_eq!(report.replayed_records, 1);
    assert_eq!(j.graph_fingerprint(), acked, "acknowledged state intact");
    assert!(
        report.quarantined.is_empty(),
        "orphan files are inert, not corrupt"
    );
    // The next checkpoint overwrites the orphaned files and succeeds.
    assert_eq!(j.checkpoint().unwrap(), 1);
    drop(j);
    let (j, report) = Journal::open(&dir, nosync(), || unreachable!()).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(j.graph_fingerprint(), acked);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_publish_io_fault_aborts_checkpoint_cleanly() {
    let dir = tempdir("publish");
    let (mut j, _) = Journal::open(&dir, nosync(), genesis).unwrap();
    j.append(&edge_delta(1, 2, 0.2)).unwrap();
    let acked = j.graph_fingerprint();

    arm(
        "store.manifest_publish",
        FaultPlan::next(Fault::IoError("rename refused"), 1),
    );
    let err = j.checkpoint().unwrap_err();
    disarm("store.manifest_publish");
    assert!(matches!(err, StoreError::Io(_)));
    // The journal did not advance and stays fully usable.
    assert_eq!(j.generation(), 0);
    assert_eq!(j.graph_fingerprint(), acked);
    j.append(&edge_delta(0, 1, 0.15)).unwrap();
    let acked2 = j.graph_fingerprint();
    assert_eq!(j.checkpoint().unwrap(), 1);
    drop(j);
    let (j, report) = Journal::open(&dir, nosync(), || unreachable!()).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(j.graph_fingerprint(), acked2);
    std::fs::remove_dir_all(&dir).ok();
}
