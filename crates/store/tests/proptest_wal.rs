//! The WAL + manifest corruption contract, proptest_persist style:
//! random record streams round-trip bit-identically; **every** single
//! byte flip is either a typed error or a clean torn-tail truncation
//! that never alters surviving record content; re-checksummed
//! structural patches reach (and fail) the structural validation behind
//! the checksum gate.
//!
//! The torn-tail nuance is deliberate and documented in `wal.rs`: a
//! flip that lands in a record's *length field* can make the record
//! claim bytes past EOF, which is byte-for-byte indistinguishable from
//! a crash mid-write — reading treats it as end-of-log. What the
//! contract therefore guarantees for arbitrary flips is: surviving
//! records are an unmodified **prefix** of what was written, and any
//! flip that leaves the stream fully parseable with the same header,
//! same record count, and no torn tail is impossible.

use std::path::PathBuf;

use atd_distance::persist::checksum;
use atd_graph::{GraphDelta, GraphOp, NodeId};
use atd_store::manifest::Manifest;
use atd_store::{GenerationEntry, GenerationStatus, StoreError, WalHeader, WalWriter};
use proptest::prelude::*;

const HEADER: WalHeader = WalHeader {
    base_generation: 3,
    base_fingerprint: 0x00c0_ffee_00c0_ffee,
};

fn random_delta() -> impl Strategy<Value = GraphDelta> {
    proptest::collection::vec((0u8..4, 0u32..64, 0u32..64, 0.0f64..10.0), 0..10).prop_map(|ops| {
        GraphDelta::from_ops(
            ops.into_iter()
                .map(|(tag, a, b, w)| match tag {
                    0 => GraphOp::AddAuthor { authority: w },
                    1 => GraphOp::SetAuthority {
                        node: NodeId::from_index(a as usize),
                        authority: w,
                    },
                    2 => GraphOp::UpsertEdge {
                        u: NodeId::from_index(a as usize),
                        v: NodeId::from_index(b as usize),
                        weight: w,
                    },
                    _ => GraphOp::ReinforceEdge {
                        u: NodeId::from_index(a as usize),
                        v: NodeId::from_index(b as usize),
                        weight: w,
                    },
                })
                .collect(),
        )
    })
}

fn random_deltas() -> impl Strategy<Value = Vec<GraphDelta>> {
    proptest::collection::vec(random_delta(), 1..6)
}

/// Writes `deltas` through a real [`WalWriter`] and returns the segment
/// bytes plus the record boundaries (file length after header and after
/// each record).
fn segment_bytes(deltas: &[GraphDelta]) -> (Vec<u8>, Vec<usize>) {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let path: PathBuf = std::env::temp_dir().join(format!(
        "atd_proptest_wal_{}_{}.atdw",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let mut w = WalWriter::create(&path, HEADER, false).unwrap();
    let mut boundaries = vec![std::fs::metadata(&path).unwrap().len() as usize];
    for (i, d) in deltas.iter().enumerate() {
        // The sealed fingerprint is opaque to the segment layer; any
        // value round-trips.
        w.append(d, 0x1000 + i as u64).unwrap();
        boundaries.push(std::fs::metadata(&path).unwrap().len() as usize);
    }
    drop(w);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    (bytes, boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random record streams round-trip: header, sequence chain, sealed
    /// fingerprints, and every op of every delta.
    #[test]
    fn segment_roundtrip_is_lossless(deltas in random_deltas()) {
        let (bytes, _) = segment_bytes(&deltas);
        let read = atd_store::wal::read_segment(&bytes).unwrap();
        prop_assert_eq!(read.header, Some(HEADER));
        prop_assert!(!read.torn);
        prop_assert_eq!(read.valid_len as usize, bytes.len());
        prop_assert_eq!(read.records.len(), deltas.len());
        for (i, (rec, d)) in read.records.iter().zip(&deltas).enumerate() {
            prop_assert_eq!(rec.seq, i as u64 + 1);
            prop_assert_eq!(rec.post_fingerprint, 0x1000 + i as u64);
            prop_assert_eq!(&rec.delta, d);
        }
    }

    /// Any single byte flip: typed error, or an unmodified strict-prefix
    /// recovery. Never silently-altered content, never a full clean
    /// parse of damaged bytes.
    #[test]
    fn any_single_byte_flip_is_contained(deltas in random_deltas(), seed in 0usize..1_000_000) {
        let (bytes, _) = segment_bytes(&deltas);
        let pos = seed % bytes.len();
        let mut patched = bytes.clone();
        patched[pos] ^= 0xff;
        let original = atd_store::wal::read_segment(&bytes).unwrap();
        match atd_store::wal::read_segment(&patched) {
            Err(
                StoreError::BadMagic(_)
                | StoreError::UnsupportedVersion { .. }
                | StoreError::ChecksumMismatch(_)
                | StoreError::SequenceGap { .. }
                | StoreError::Truncated(_)
                | StoreError::Corrupt(_),
            ) => {}
            Err(other) => prop_assert!(false, "untyped failure {other:?}"),
            Ok(read) => {
                for (got, want) in read.records.iter().zip(&original.records) {
                    prop_assert_eq!(got, want, "flip at {} altered record content", pos);
                }
                let fully_intact = read.header == original.header
                    && read.records.len() == original.records.len()
                    && !read.torn;
                prop_assert!(
                    !fully_intact,
                    "flip at {} of {} went completely unnoticed",
                    pos,
                    bytes.len()
                );
            }
        }
    }

    /// Re-sealed structural damage (a hostile writer, not bit rot):
    /// patch the first record's first payload byte to an invalid op tag
    /// and recompute the record checksum. The checksum gate passes; the
    /// payload decode must still reject it.
    #[test]
    fn resealed_bad_op_tag_is_still_typed(deltas in random_deltas()) {
        // Guarantee the first record has at least one op to patch.
        let mut deltas = deltas;
        let mut first = GraphDelta::new();
        first.upsert_edge(NodeId::from_index(0), NodeId::from_index(1), 0.5);
        deltas.insert(0, first);
        let (mut bytes, boundaries) = segment_bytes(&deltas);
        let rec = boundaries[0]; // first record offset
        // Record layout: [len u32][seq u64][fp u64][sum u64][payload].
        let len =
            u32::from_le_bytes(bytes[rec..rec + 4].try_into().unwrap()) as usize;
        let payload_at = rec + 28;
        // Payload starts with the op count (u32); byte 4 is the first tag.
        bytes[payload_at + 4] = 0xee;
        let mut sealed = bytes[rec + 4..rec + 20].to_vec();
        sealed.extend_from_slice(&bytes[payload_at..payload_at + len]);
        let sum = checksum(&sealed);
        bytes[rec + 20..rec + 28].copy_from_slice(&sum.to_le_bytes());
        prop_assert!(matches!(
            atd_store::wal::read_segment(&bytes),
            Err(StoreError::Corrupt("unknown delta op tag"))
        ));
    }
}

fn random_manifest() -> impl Strategy<Value = Manifest> {
    proptest::collection::vec((1u64..9, 0u64..u64::MAX, 0u8..2), 0..6).prop_map(|raw| {
        let mut generation = 0;
        let entries = raw
            .into_iter()
            .map(|(gap, graph_fingerprint, status)| {
                generation += gap;
                GenerationEntry {
                    generation,
                    graph_fingerprint,
                    status: if status == 0 {
                        GenerationStatus::Active
                    } else {
                        GenerationStatus::Quarantined
                    },
                }
            })
            .collect();
        Manifest { entries }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random manifests round-trip; every byte flip and every
    /// truncation of the encoding is a typed error (the manifest has no
    /// torn-tail tolerance — it is only ever replaced atomically).
    #[test]
    fn manifest_roundtrip_and_total_rejection(m in random_manifest(), seed in 0usize..1_000_000) {
        let bytes = m.to_bytes();
        prop_assert_eq!(Manifest::from_bytes(&bytes).unwrap(), m);
        let pos = seed % bytes.len();
        let mut patched = bytes.clone();
        patched[pos] ^= 0xff;
        prop_assert!(Manifest::from_bytes(&patched).is_err(), "flip at {}", pos);
        let cut = seed % bytes.len();
        prop_assert!(Manifest::from_bytes(&bytes[..cut]).is_err(), "cut at {}", cut);
    }
}
