//! Journal lifecycle and crash-consistency tests (no fault injection —
//! crashes are simulated by truncating and corrupting the files
//! directly, the way a real kill or bit rot would leave them).
//!
//! The load-bearing assertion throughout: **recovery reproduces exactly
//! the acknowledged state** — the recovered graph fingerprint equals
//! the one `append` returned, bit for bit, no matter where the "crash"
//! landed.

use std::path::{Path, PathBuf};

use atd_distance::persist::graph_fingerprint;
use atd_graph::{ExpertGraph, GraphBuilder, GraphDelta, NodeId};
use atd_store::manifest::{graph_file_name, index_file_name, wal_file_name, MANIFEST_FILE};
use atd_store::{GenerationStatus, Journal, JournalConfig, StoreError};

fn genesis() -> ExpertGraph {
    let mut b = GraphBuilder::new();
    let n: Vec<NodeId> = (0..4).map(|i| b.add_node(1.0 + i as f64)).collect();
    b.add_edge(n[0], n[1], 0.3).unwrap();
    b.add_edge(n[1], n[2], 0.6).unwrap();
    b.add_edge(n[2], n[3], 0.9).unwrap();
    b.build().unwrap()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "atd_journal_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Tests run without fsync: durability-at-the-syscall-level is what the
/// truncation simulations exercise, and fsync would only slow them.
fn nosync() -> JournalConfig {
    JournalConfig {
        sync_writes: false,
        ..JournalConfig::default()
    }
}

/// A deterministic pseudo-random publication: sometimes a new author,
/// plus reinforced pairwise edges among a few existing experts.
fn mutation(g: &ExpertGraph, seed: u64) -> GraphDelta {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let n = g.num_nodes();
    let mut delta = GraphDelta::new();
    let mut authors: Vec<NodeId> = Vec::new();
    if next() % 2 == 0 {
        authors.push(delta.add_author((next() % 50) as f64 / 5.0, n));
    }
    for _ in 0..2 {
        let id = NodeId::from_index((next() % n as u64) as usize);
        if !authors.contains(&id) {
            authors.push(id);
        }
    }
    let cost = 0.05 + (next() % 90) as f64 / 100.0;
    delta.publication(&authors, cost);
    delta
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn flip_byte(path: &Path, offset_from_end: usize) {
    let mut bytes = std::fs::read(path).unwrap();
    let i = bytes.len() - 1 - offset_from_end;
    bytes[i] ^= 0x01;
    std::fs::write(path, &bytes).unwrap();
}

#[test]
fn init_then_reopen_round_trips() {
    let dir = tempdir("init");
    let fp0 = graph_fingerprint(&genesis());
    let (j, report) = Journal::open(&dir, nosync(), genesis).unwrap();
    assert!(report.initialized);
    assert_eq!(report.generation, 0);
    assert_eq!(report.graph_fingerprint, fp0);
    assert_eq!(j.graph_fingerprint(), fp0);
    assert!(dir.join(graph_file_name(0)).exists());
    assert!(dir.join(wal_file_name(0)).exists());
    assert!(dir.join(MANIFEST_FILE).exists());
    drop(j);
    // Reopen: genesis must not be consulted again.
    let (j, report) = Journal::open(&dir, nosync(), || unreachable!()).unwrap();
    assert!(!report.initialized);
    assert_eq!(report.replayed_records, 0);
    assert_eq!(j.graph_fingerprint(), fp0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_reproduces_the_uninterrupted_run() {
    let dir = tempdir("replay");
    let (mut j, _) = Journal::open(&dir, nosync(), genesis).unwrap();
    let mut shadow = genesis();
    let mut acked = Vec::new();
    for seed in 0..12 {
        let delta = mutation(&shadow, seed);
        shadow = shadow.apply_delta(&delta).unwrap();
        let receipt = j.append(&delta).unwrap();
        assert_eq!(receipt.graph_fingerprint, graph_fingerprint(&shadow));
        acked.push(receipt);
    }
    drop(j); // clean kill: no checkpoint, just the WAL
    let (j, report) = Journal::open(&dir, nosync(), || unreachable!()).unwrap();
    assert_eq!(report.replayed_records, 12);
    assert!(!report.torn_tail_truncated);
    assert_eq!(j.graph_fingerprint(), graph_fingerprint(&shadow));
    assert_eq!(
        j.graph_fingerprint(),
        acked.last().unwrap().graph_fingerprint
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_at_every_byte_offset_loses_no_acknowledged_mutation() {
    let dir = tempdir("torn_src");
    let (mut j, _) = Journal::open(&dir, nosync(), genesis).unwrap();
    let wal_path = dir.join(wal_file_name(0));
    let mut shadow = genesis();
    // fps[k] = acknowledged fingerprint after k records;
    // boundaries[k] = WAL byte length at that point.
    let mut fps = vec![graph_fingerprint(&shadow)];
    let mut boundaries = vec![std::fs::metadata(&wal_path).unwrap().len()];
    for seed in 0..6 {
        let delta = mutation(&shadow, seed);
        shadow = shadow.apply_delta(&delta).unwrap();
        j.append(&delta).unwrap();
        fps.push(graph_fingerprint(&shadow));
        boundaries.push(std::fs::metadata(&wal_path).unwrap().len());
    }
    drop(j);
    let total = *boundaries.last().unwrap();
    let crash = tempdir("torn_crash");
    for cut in boundaries[0]..=total {
        copy_dir(&dir, &crash);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(crash.join(wal_file_name(0)))
            .unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        let (j, report) = Journal::open(&crash, nosync(), || unreachable!()).unwrap();
        // The whole records below the cut survive; the torn one is gone.
        let k = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(report.replayed_records, k as u64, "cut at {cut}");
        assert_eq!(j.graph_fingerprint(), fps[k], "cut at {cut}");
        assert_eq!(
            report.torn_tail_truncated,
            boundaries[k] != cut,
            "cut at {cut}"
        );
        drop(j);
        // And the store is immediately append-able again.
        let (mut j, _) = Journal::open(&crash, nosync(), || unreachable!()).unwrap();
        j.append(&mutation(j.graph(), 99)).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&crash).ok();
}

#[test]
fn checkpoint_rotates_and_recovery_continues_from_it() {
    let dir = tempdir("checkpoint");
    let (mut j, _) = Journal::open(&dir, nosync(), genesis).unwrap();
    let mut shadow = genesis();
    for seed in 0..5 {
        let delta = mutation(&shadow, seed);
        shadow = shadow.apply_delta(&delta).unwrap();
        j.append(&delta).unwrap();
    }
    let mut index_saves = Vec::new();
    let gen = j
        .checkpoint_with(|g, path| {
            index_saves.push((graph_fingerprint(g), path.to_path_buf()));
            std::fs::write(path, b"index standin").map_err(|e| e.to_string())
        })
        .unwrap();
    assert_eq!(gen, 1);
    assert_eq!(j.generation(), 1);
    assert_eq!(j.tail_records(), 0);
    assert_eq!(
        index_saves,
        vec![(graph_fingerprint(&shadow), dir.join(index_file_name(1)))]
    );
    for seed in 5..9 {
        let delta = mutation(&shadow, seed);
        shadow = shadow.apply_delta(&delta).unwrap();
        j.append(&delta).unwrap();
    }
    drop(j);
    let (j, report) = Journal::open(&dir, nosync(), || unreachable!()).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.replayed_records, 4);
    assert_eq!(j.graph_fingerprint(), graph_fingerprint(&shadow));
    assert_eq!(j.index_path(), dir.join(index_file_name(1)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_index_save_aborts_the_checkpoint_cleanly() {
    let dir = tempdir("abort");
    let (mut j, _) = Journal::open(&dir, nosync(), genesis).unwrap();
    let mut shadow = genesis();
    let delta = mutation(&shadow, 1);
    shadow = shadow.apply_delta(&delta).unwrap();
    j.append(&delta).unwrap();
    let err = j
        .checkpoint_with(|_, _| Err("disk full".into()))
        .unwrap_err();
    assert!(matches!(err, StoreError::IndexPersist(_)));
    // Still on generation 0, still append-able, and recovery agrees.
    assert_eq!(j.generation(), 0);
    let d2 = mutation(&shadow, 2);
    shadow = shadow.apply_delta(&d2).unwrap();
    j.append(&d2).unwrap();
    drop(j);
    let (j, report) = Journal::open(&dir, nosync(), || unreachable!()).unwrap();
    assert_eq!(report.generation, 0);
    assert_eq!(j.graph_fingerprint(), graph_fingerprint(&shadow));
    // The aborted attempt's number was never published, so the next
    // checkpoint reuses it.
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retention_prunes_old_active_generations() {
    let dir = tempdir("retain");
    let config = JournalConfig {
        sync_writes: false,
        retain_generations: 1,
    };
    let (mut j, _) = Journal::open(&dir, config, genesis).unwrap();
    let mut shadow = genesis();
    for round in 0..3u64 {
        let delta = mutation(&shadow, round);
        shadow = shadow.apply_delta(&delta).unwrap();
        j.append(&delta).unwrap();
        j.checkpoint().unwrap();
    }
    assert_eq!(j.generation(), 3);
    assert_eq!(j.manifest().entries.len(), 1);
    for old in 0..3 {
        assert!(!dir.join(graph_file_name(old)).exists(), "gen {old} graph");
        assert!(!dir.join(wal_file_name(old)).exists(), "gen {old} wal");
    }
    assert!(dir.join(graph_file_name(3)).exists());
    drop(j);
    let (j, report) = Journal::open(&dir, config, || unreachable!()).unwrap();
    assert_eq!(report.generation, 3);
    assert_eq!(j.graph_fingerprint(), graph_fingerprint(&shadow));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_newest_generation_is_quarantined_not_deleted() {
    let dir = tempdir("quarantine");
    let (mut j, _) = Journal::open(&dir, nosync(), genesis).unwrap();
    let mut shadow = genesis();
    for seed in 0..4 {
        let delta = mutation(&shadow, seed);
        shadow = shadow.apply_delta(&delta).unwrap();
        j.append(&delta).unwrap();
    }
    let at_checkpoint = graph_fingerprint(&shadow);
    j.checkpoint().unwrap();
    assert_eq!(j.generation(), 1);
    drop(j);
    // Bit rot in generation 1's graph dump payload.
    flip_byte(&dir.join(graph_file_name(1)), 3);

    let (j, report) = Journal::open(&dir, nosync(), || unreachable!()).unwrap();
    assert_eq!(report.generation, 0, "must fall back to the older gen");
    assert_eq!(report.quarantined, vec![1]);
    // Generation 0's WAL tail replays to exactly the state gen 1
    // checkpointed — nothing acknowledged is lost.
    assert_eq!(j.graph_fingerprint(), at_checkpoint);
    assert!(
        dir.join(graph_file_name(1)).exists(),
        "quarantined, not deleted"
    );
    let quarantined = j
        .manifest()
        .entries
        .iter()
        .find(|e| e.generation == 1)
        .unwrap();
    assert_eq!(quarantined.status, GenerationStatus::Quarantined);
    drop(j);
    // The quarantine is durable, and the damaged number is never reused:
    // the next checkpoint publishes generation 2.
    let (mut j, report) = Journal::open(&dir, nosync(), || unreachable!()).unwrap();
    assert!(report.quarantined.is_empty(), "already quarantined on disk");
    assert_eq!(j.checkpoint().unwrap(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mid_stream_wal_corruption_quarantines_the_generation() {
    let dir = tempdir("midstream");
    let (mut j, _) = Journal::open(&dir, nosync(), genesis).unwrap();
    let wal_path = dir.join(wal_file_name(0));
    let mut shadow = genesis();
    let mut boundaries = vec![std::fs::metadata(&wal_path).unwrap().len()];
    for seed in 0..3 {
        let delta = mutation(&shadow, seed);
        shadow = shadow.apply_delta(&delta).unwrap();
        j.append(&delta).unwrap();
        boundaries.push(std::fs::metadata(&wal_path).unwrap().len());
    }
    drop(j);
    // Flip a payload byte of the *first* record: fully-present record,
    // bad checksum — corruption, not a torn tail. The only generation
    // fails, so open reports no valid generation and the manifest
    // records the quarantine.
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let i = boundaries[1] as usize - 1;
    bytes[i] ^= 0x01;
    std::fs::write(&wal_path, &bytes).unwrap();
    let err = Journal::open(&dir, nosync(), || unreachable!()).unwrap_err();
    assert!(matches!(err, StoreError::NoValidGeneration));
    let manifest = atd_store::Manifest::load(&dir.join(MANIFEST_FILE)).unwrap();
    assert_eq!(manifest.entries[0].status, GenerationStatus::Quarantined);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_sweeps_orphaned_tmp_files() {
    let dir = tempdir("sweep");
    let orphan = dir.join("gen-0.graph.tmp.4294967295.0");
    std::fs::write(&orphan, b"crashed half-write").unwrap();
    let (_, report) = Journal::open(&dir, nosync(), genesis).unwrap();
    assert_eq!(report.swept_tmp_files, 1);
    assert!(!orphan.exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejected_mutations_write_nothing() {
    let dir = tempdir("reject");
    let (mut j, _) = Journal::open(&dir, nosync(), genesis).unwrap();
    let before = std::fs::metadata(dir.join(wal_file_name(0))).unwrap().len();
    let fp = j.graph_fingerprint();
    let mut bad = GraphDelta::new();
    bad.upsert_edge(NodeId::from_index(0), NodeId::from_index(99), 0.5);
    assert!(matches!(j.append(&bad), Err(StoreError::Graph(_))));
    assert_eq!(j.graph_fingerprint(), fp);
    assert_eq!(
        std::fs::metadata(dir.join(wal_file_name(0))).unwrap().len(),
        before,
        "a rejected delta must not touch the WAL"
    );
    std::fs::remove_dir_all(&dir).ok();
}
