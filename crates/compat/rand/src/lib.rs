//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the few entry points the code actually uses: [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded via SplitMix64
//! — high-quality and deterministic per seed, though the streams differ from
//! upstream `StdRng` (ChaCha12). Everything downstream only relies on
//! determinism, not on matching upstream streams.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    /// Panics on empty ranges, like upstream.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction (the only constructor upstream code uses).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to `[0, 1)` using the high 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types [`Rng::gen_range`] can sample from, parameterized by the
/// output type so integer literals infer from the call site (as upstream).
pub trait SampleRange<T> {
    /// Uniform sample; panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let v = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::RngCore;

    /// `choose` / `shuffle` over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// `min(amount, len)` distinct elements in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index vector.
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle_cover_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements virtually never shuffle to identity");
    }
}
