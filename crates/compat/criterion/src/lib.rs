//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking surface this workspace uses — groups,
//! `bench_function`, `bench_with_input`, `sample_size`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros — with real wall-clock
//! measurement: per benchmark it calibrates an iteration count targeting
//! ~`TARGET_SAMPLE_MS` per sample, collects `sample_size` samples, and
//! reports min / median / mean ns-per-iteration. Results are printed and
//! appended as JSON lines to `target/criterion-lite/results.jsonl` (path
//! overridable via `CRITERION_LITE_OUT`) so callers can postprocess
//! measurements without scraping stdout.
//!
//! Like upstream criterion, positional CLI arguments act as substring
//! filters over benchmark ids (`cargo bench --bench one_to_many --
//! one_to_many_storage` runs just that group); flags are ignored.

use std::fmt::Display;
use std::io::Write as _;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock per sample; keeps noise low without criterion's
/// full adaptive plan.
const TARGET_SAMPLE_MS: f64 = 25.0;

/// Entry point handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_benchmark(&id.to_string(), self.default_sample_size, &mut f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, &mut f);
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, &mut |b| f(b, input));
    }

    /// Ends the group (upstream flushes reports here; we report eagerly).
    pub fn finish(self) {}
}

/// Benchmark identifiers (`name/parameter` display form).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the measuring.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    mode: BenchMode,
}

enum BenchMode {
    /// Estimate cost of one routine call to size samples.
    Calibrate,
    /// Collect one timed sample.
    Measure,
}

impl Bencher {
    /// Times `routine`, recording nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BenchMode::Calibrate => {
                // One untimed warmup call, then time a single call.
                black_box(routine());
                let start = Instant::now();
                black_box(routine());
                self.calibrate_from(start.elapsed());
            }
            BenchMode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                self.record(start.elapsed());
            }
        }
    }

    /// Times `routine` like [`iter`](Self::iter) but keeps every
    /// returned value alive until the sample's clock has stopped
    /// (upstream criterion's `iter_with_large_drop`): teardown —
    /// deallocation, `munmap` of a mapped region — is excluded from the
    /// measurement. Use when the benchmark is about acquiring the value,
    /// not releasing it.
    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BenchMode::Calibrate => {
                black_box(routine());
                let start = Instant::now();
                let out = black_box(routine());
                let one = start.elapsed();
                drop(out);
                self.calibrate_from(one);
            }
            BenchMode::Measure => {
                let mut keep = Vec::with_capacity((self.iters_per_sample as usize).min(4096));
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    keep.push(black_box(routine()));
                }
                self.record(start.elapsed());
                drop(keep);
            }
        }
    }

    fn calibrate_from(&mut self, one: Duration) {
        let target = Duration::from_secs_f64(TARGET_SAMPLE_MS / 1e3);
        let per_sample = if one.is_zero() {
            1 << 14
        } else {
            (target.as_secs_f64() / one.as_secs_f64()).clamp(1.0, 1e7) as u64
        };
        self.iters_per_sample = per_sample.max(1);
    }

    fn record(&mut self, total: Duration) {
        self.samples
            .push(total.as_nanos() as f64 / self.iters_per_sample as f64);
    }
}

/// Substring filters from positional CLI args (flags are skipped, the
/// way upstream criterion treats the harness arguments cargo forwards).
static FILTERS: OnceLock<Vec<String>> = OnceLock::new();

/// Upstream-criterion flags that take a separate value argument; the
/// value must not be mistaken for a positional filter (a filter that
/// matches no id would silently skip every benchmark).
const VALUE_FLAGS: &[&str] = &[
    "--save-baseline",
    "--baseline",
    "--load-baseline",
    "--sample-size",
    "--warm-up-time",
    "--measurement-time",
    "--profile-time",
    "--output-format",
    "--color",
];

fn filters() -> &'static [String] {
    FILTERS.get_or_init(|| {
        let mut out = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if VALUE_FLAGS.contains(&a.as_str()) {
                let _ = args.next();
            } else if !a.starts_with('-') {
                out.push(a);
            }
        }
        out
    })
}

fn run_benchmark(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let skip = {
        let fs = filters();
        !fs.is_empty() && !fs.iter().any(|f| id.contains(f.as_str()))
    };
    if skip {
        return;
    }
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(sample_size),
        mode: BenchMode::Calibrate,
    };
    f(&mut b);
    b.mode = BenchMode::Measure;
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut sorted = b.samples.clone();
    sorted.sort_by(f64::total_cmp);
    if sorted.is_empty() {
        println!("{id:<60} time: [no samples — closure never called iter()]");
        return;
    }
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{id:<60} time: [{} {} {}] ({} samples × {} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        sorted.len(),
        b.iters_per_sample,
    );
    write_record(id, min, median, mean, sorted.len(), b.iters_per_sample);
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn write_record(id: &str, min: f64, median: f64, mean: f64, samples: usize, iters: u64) {
    let path = std::env::var("CRITERION_LITE_OUT")
        .unwrap_or_else(|_| "target/criterion-lite/results.jsonl".to_string());
    let path = std::path::Path::new(&path);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let _ = writeln!(
        file,
        "{{\"id\":\"{escaped}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\
         \"mean_ns\":{mean:.1},\"samples\":{samples},\"iters_per_sample\":{iters}}}"
    );
}

/// Declares a group-runner function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        // The test binary's own args (e.g. a test-name filter) must not
        // leak into the bench filter logic.
        let _ = FILTERS.set(Vec::new());
        std::env::set_var(
            "CRITERION_LITE_OUT",
            std::env::temp_dir().join("criterion-lite-test.jsonl"),
        );
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        let out = std::fs::read_to_string(std::env::temp_dir().join("criterion-lite-test.jsonl"))
            .unwrap();
        assert!(out.contains("\"id\":\"shim/sum\""));
        assert!(out.contains("shim/sum_to/50"));
    }
}
