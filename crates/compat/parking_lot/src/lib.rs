//! Offline stand-in for `parking_lot` (API subset).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! interface: `lock()` / `read()` / `write()` return guards directly. A
//! poisoned std lock means a holder panicked; matching `parking_lot`, we
//! simply continue with the recovered guard.

use std::sync;
use std::sync::PoisonError;

/// Mutual exclusion, `parking_lot`-style (no poison `Result`s).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock, `parking_lot`-style (no poison `Result`s).
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
