//! Value-generation strategies for the offline proptest stand-in.

use std::ops::Range;

use crate::TestRng;

/// Generates random values of `Self::Value`. No shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (backs `prop_oneof!`).
#[derive(Clone, Debug)]
pub struct Union<S>(Vec<S>);

impl<S: Strategy> Union<S> {
    /// A union over `arms`; must be non-empty.
    pub fn new(arms: Vec<S>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below(self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.unit_range(self.start, self.end)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}

/// String patterns double as strategies, matching upstream's regex-string
/// support for the subset this workspace uses: literals and character
/// classes (`[a-z0-9]`, with `\\`-escapes), each optionally followed by
/// `{n}` or `{m,n}`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

/// One parsed pattern atom: the characters it can produce.
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class"));
        match c {
            ']' => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                return ranges;
            }
            '\\' => {
                let esc = chars.next().expect("dangling escape in class");
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                pending = Some(esc);
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().expect("checked");
                let mut hi = chars.next().expect("unterminated range");
                if hi == '\\' {
                    hi = chars.next().expect("dangling escape in class");
                }
                assert!(lo <= hi, "inverted class range {lo}-{hi}");
                ranges.push((lo, hi));
            }
            _ => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                pending = Some(c);
            }
        }
    }
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let (lo, hi) = match spec.split_once(',') {
                Some((a, b)) => (
                    a.parse().expect("bad repeat"),
                    b.parse().expect("bad repeat"),
                ),
                None => {
                    let n = spec.parse().expect("bad repeat");
                    (n, n)
                }
            };
            assert!(lo <= hi, "inverted repeat {{{spec}}}");
            return (lo, hi);
        }
        spec.push(c);
    }
    panic!("unterminated repeat in pattern");
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Literal(chars.next().expect("dangling escape")),
            _ => Atom::Literal(c),
        };
        let (lo, hi) = parse_repeat(&mut chars);
        let count = lo + rng.below(hi - lo + 1);
        for _ in 0..count {
            match &atom {
                Atom::Literal(ch) => out.push(*ch),
                Atom::Class(ranges) => {
                    let total: u32 = ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
                    let mut pick = rng.below(total as usize) as u32;
                    for &(a, b) in ranges {
                        let span = b as u32 - a as u32 + 1;
                        if pick < span {
                            out.push(char::from_u32(a as u32 + pick).expect("valid char"));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(0x5eed, 0)
    }

    #[test]
    fn pattern_literals_and_classes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_pattern("[a-z]{1,6}/[A-Za-z0-9]{1,8}", &mut r);
            let (head, tail) = s.split_once('/').expect("slash literal present");
            assert!((1..=6).contains(&head.len()));
            assert!((1..=8).contains(&tail.len()));
            assert!(head.bytes().all(|b| b.is_ascii_lowercase()));
            assert!(tail.bytes().all(|b| b.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn pattern_escapes_in_classes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_pattern("[A-Za-z \\-&<>\"']{0,40}", &mut r);
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphabetic() || " -&<>\"'".contains(c)));
        }
    }

    #[test]
    fn fixed_repeat_and_bare_atoms() {
        let mut r = rng();
        let s = generate_pattern("x[0-9]{3}y", &mut r);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with('x') && s.ends_with('y'));
    }

    #[test]
    fn union_and_just() {
        let mut r = rng();
        let u = Union::new(vec![Just(5), Just(7)]);
        for _ in 0..50 {
            let v = u.generate(&mut r);
            assert!(v == 5 || v == 7);
        }
    }
}
