//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the slice of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support),
//! * [`Strategy`] with `prop_map` / `prop_flat_map`,
//! * range, tuple, [`Just`], regex-string, [`collection::vec`],
//!   [`option::of`], [`any`], and [`prop_oneof!`] strategies,
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Failing inputs are **not shrunk** — the macro reports the case number and
//! seed, and the panic message carries the asserted values. Runs are
//! deterministic: case `i` of every test derives its RNG from a fixed base
//! seed, so failures reproduce across runs. Set `PROPTEST_CASES` to override
//! the case count globally.

use std::fmt::Debug;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Configuration accepted by `#![proptest_config(...)]`.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Applies the `PROPTEST_CASES` env override, if present.
    pub fn effective_cases(cfg: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cfg.cases)
    }
}

/// The RNG driving value generation.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per (test, case) generator.
    pub fn for_case(test_seed: u64, case: u32) -> Self {
        TestRng(StdRng::seed_from_u64(
            test_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform usize in `[0, n)`; `n` must be positive.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }

    /// Uniform f64 in `[lo, hi)`.
    #[inline]
    pub fn unit_range(&mut self, lo: f64, hi: f64) -> f64 {
        self.0.gen_range(lo..hi)
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// `any::<T>()` — the full-range strategy for primitives.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The strategy type `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// The full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range integer strategy backing [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Vector lengths: a fixed size or a half-open range, as upstream.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `vec(element, len)` — vectors of fixed or random length.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.lo + rng.below(self.len.hi_exclusive - self.len.lo);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::*;

    /// Strategy for `Option<S::Value>`.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S>(S);

    /// `of(inner)` — `None` a quarter of the time, like upstream's default.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Runs one property over `cases` random cases. Used by [`proptest!`];
/// not public API upstream, but harmless to expose.
pub fn run_property<F: FnMut(&mut TestRng)>(
    name: &str,
    cfg: &test_runner::ProptestConfig,
    mut body: F,
) {
    let cases = test_runner::effective_cases(cfg);
    // Stable per-test seed: hash of the test name.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    for case in 0..cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = TestRng::for_case(seed, case);
            body(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "proptest: property `{name}` failed at case {case}/{cases} \
                 (seed {seed:#x}; no shrinking in the offline stand-in)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Defines property tests. Supports the upstream surface this workspace
/// uses: an optional leading `#![proptest_config(...)]`, doc comments, and
/// `fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    // `#[test]` comes through `$(#[$meta])*` — the caller writes it, as
    // upstream proptest expects.
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __strats = ($($strat,)+);
            $crate::run_property(stringify!($name), &__cfg, |__rng| {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strats, __rng);
                $body
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!` — plain assertion (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!` — plain equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_oneof![a, b, c]` — picks one of the listed strategies per case.
/// All arms must be the same strategy type (true for this workspace, which
/// only unions `Just` values).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}

/// Runtime support for assertions carrying Debug context.
pub fn debug_panic_context<T: Debug>(value: &T) -> String {
    format!("{value:?}")
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Tuple + range + vec + regex strategies produce in-range values.
        #[test]
        fn strategies_compose(
            (n, xs) in (2usize..10).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0u32..(n as u32), 1..20))
            }),
            s in "[a-z]{2,5}",
            o in crate::option::of(1u8..4),
        ) {
            prop_assert!((2..10).contains(&n));
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for &x in &xs {
                prop_assert!((x as usize) < n);
            }
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            if let Some(v) = o {
                prop_assert!((1..4).contains(&v));
            }
        }

        /// prop_oneof picks among the arms.
        #[test]
        fn oneof_picks_arms(v in prop_oneof![Just(1), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }

        /// prop_map transforms values.
        #[test]
        fn map_applies(v in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = ProptestConfig::with_cases(8);
        let collect = || {
            let mut out = Vec::new();
            crate::run_property("det", &cfg, |rng| out.push(rng.next_u64()));
            out
        };
        assert_eq!(collect(), collect());
    }
}
