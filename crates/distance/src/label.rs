//! 2-hop cover label storage — flat CSR layout.
//!
//! Labels are stored struct-of-arrays: one `offsets` array indexed by node
//! id plus two parallel flat arrays (`hub_ranks`, `dists`). A node's label
//! is a contiguous slice pair, so the merge-join query walks two dense
//! arrays instead of heap-scattered per-node `Vec`s, and the one-to-many
//! [`SourceScatter`](crate::scatter::SourceScatter) scan is a single linear
//! pass over the holder's slice.
//!
//! Construction order (pruned landmark labeling) appends entries grouped by
//! *hub*, not by node, so the CSR store cannot be grown in place. The
//! [`LabelSetBuilder`] instead journals entries into one flat arena with
//! per-node backward links and converts to CSR in a final `O(total)`
//! counting pass — no per-node `Vec` intermediate at any point.
//!
//! Each plane is a [`Plane`] (owned `Vec` or a slice borrowed from a
//! mapped index file); all reads go through slices, so queries are
//! identical either way.

use crate::plane::Plane;

/// One label entry: this node is at distance `dist` from the hub with
/// construction rank `hub_rank`.
///
/// Storing the *rank* instead of the node id keeps label lists sorted by
/// construction order for free, which is exactly the merge order queries
/// need.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LabelEntry {
    /// Rank of the hub in the PLL vertex order (0 = most central).
    pub hub_rank: u32,
    /// Shortest-path distance from the owning node to that hub.
    pub dist: f64,
}

/// A borrowed view of one node's label: two parallel rank-sorted slices.
#[derive(Clone, Copy, Debug)]
pub struct LabelRef<'a> {
    /// Hub ranks, strictly ascending.
    pub hub_ranks: &'a [u32],
    /// Distances, parallel to `hub_ranks`.
    pub dists: &'a [f64],
}

impl<'a> LabelRef<'a> {
    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.hub_ranks.len()
    }

    /// True when the label is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hub_ranks.is_empty()
    }

    /// Entries in ascending hub rank.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = LabelEntry> + ExactSizeIterator + 'a {
        self.hub_ranks
            .iter()
            .zip(self.dists)
            .map(|(&hub_rank, &dist)| LabelEntry { hub_rank, dist })
    }
}

/// The label lists of every node in flat CSR form.
///
/// ```
/// use atd_distance::{LabelEntry, LabelSet};
/// let labels = LabelSet::from_lists(&[
///     vec![LabelEntry { hub_rank: 0, dist: 0.0 }],
///     vec![LabelEntry { hub_rank: 0, dist: 1.5 }],
/// ]);
/// // Node 1's label is a contiguous slice pair.
/// assert_eq!(labels.of(1).hub_ranks, &[0]);
/// // Pairwise queries merge-join over common hubs.
/// assert_eq!(labels.query(0, 1), 1.5);
/// assert_eq!(labels.stats().total_entries, 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LabelSet {
    // The three planes are (de)serialized field-by-field by `persist.rs`,
    // whose load-time validation re-establishes every invariant stated
    // here — keep the two in sync when changing the layout. Each plane is
    // either owned or borrowed from a mapped v2 index file (`Plane`);
    // every read below goes through `Deref<Target = [T]>`.
    /// `offsets[v]..offsets[v + 1]` is node `v`'s slice of the flat arrays.
    pub(crate) offsets: Plane<u32>,
    /// All hub ranks, concatenated per node, ascending within a node.
    pub(crate) hub_ranks: Plane<u32>,
    /// All distances, parallel to `hub_ranks`.
    pub(crate) dists: Plane<f64>,
}

/// Summary statistics of a built index.
///
/// `bytes` is the total physical footprint of the active storage backend;
/// the `*_bytes` fields break it into the four planes every backend is
/// made of (`bytes = offsets_bytes + ranks_bytes + dists_bytes +
/// dict_bytes`), so compression PRs can report which plane they shrank.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LabelStats {
    /// Number of indexed nodes.
    pub nodes: usize,
    /// Total label entries across all nodes.
    pub total_entries: usize,
    /// Mean entries per node.
    pub avg_entries: f64,
    /// Largest single label list.
    pub max_entries: usize,
    /// Total memory footprint in bytes of the active storage backend —
    /// the figure any label-compression scheme has to beat.
    pub bytes: usize,
    /// Bytes spent on per-node addressing (entry offsets, plus byte
    /// offsets for varint-rank backends).
    pub offsets_bytes: usize,
    /// Bytes spent on the hub-rank plane (flat `u32` array or varint
    /// stream).
    pub ranks_bytes: usize,
    /// Bytes spent on the distance plane (flat `f64` array or narrow
    /// dictionary codes).
    pub dists_bytes: usize,
    /// Bytes spent on the distance dictionary table (`0` for flat
    /// distance planes).
    pub dict_bytes: usize,
    /// Distinct distance values in the dictionary table (`0` for flat
    /// distance planes).
    pub dict_values: usize,
}

impl LabelStats {
    /// Assembles stats from per-plane byte counts (`bytes` and
    /// `avg_entries` are derived).
    // One positional arg per plane mirrors the LabelStats field order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        nodes: usize,
        total_entries: usize,
        max_entries: usize,
        offsets_bytes: usize,
        ranks_bytes: usize,
        dists_bytes: usize,
        dict_bytes: usize,
        dict_values: usize,
    ) -> LabelStats {
        LabelStats {
            nodes,
            total_entries,
            avg_entries: if nodes == 0 {
                0.0
            } else {
                total_entries as f64 / nodes as f64
            },
            max_entries,
            bytes: offsets_bytes + ranks_bytes + dists_bytes + dict_bytes,
            offsets_bytes,
            ranks_bytes,
            dists_bytes,
            dict_bytes,
            dict_values,
        }
    }

    /// Bytes per dictionary code (1, 2 or 4 — the narrowest width that
    /// indexes `dict_values` table slots), or `0` for flat distance
    /// planes.
    pub fn dict_code_width(&self) -> usize {
        if self.dict_values == 0 {
            0
        } else if self.dict_values <= 1 << 8 {
            1
        } else if self.dict_values <= 1 << 16 {
            2
        } else {
            4
        }
    }

    /// The per-plane byte breakdown as a compact human-readable string,
    /// e.g. `"offsets 9 + ranks 1014 + dists 2028 + dict 0 KiB"` — what
    /// the `experiments` label-stats banner and the cold-start example
    /// print.
    pub fn breakdown_kib(&self) -> String {
        format!(
            "offsets {} + ranks {} + dists {} + dict {} KiB",
            self.offsets_bytes / 1024,
            self.ranks_bytes / 1024,
            self.dists_bytes / 1024,
            self.dict_bytes / 1024
        )
    }
}

impl LabelSet {
    /// An empty label set for `n` nodes.
    pub fn new(n: usize) -> Self {
        LabelSet {
            offsets: vec![0; n + 1].into(),
            hub_ranks: Plane::new(),
            dists: Plane::new(),
        }
    }

    /// Builds a label set from per-node entry lists (each ascending in hub
    /// rank). Convenience for tests and fixtures; the PLL builder uses
    /// [`LabelSetBuilder`].
    pub fn from_lists(lists: &[Vec<LabelEntry>]) -> Self {
        let total: usize = lists.iter().map(|l| l.len()).sum();
        assert!(total <= u32::MAX as usize, "label store overflow");
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut hub_ranks = Vec::with_capacity(total);
        let mut dists = Vec::with_capacity(total);
        offsets.push(0);
        for list in lists {
            debug_assert!(
                list.windows(2).all(|w| w[0].hub_rank < w[1].hub_rank),
                "label entries must ascend in hub rank"
            );
            for e in list {
                hub_ranks.push(e.hub_rank);
                dists.push(e.dist);
            }
            offsets.push(hub_ranks.len() as u32);
        }
        LabelSet {
            offsets: offsets.into(),
            hub_ranks: hub_ranks.into(),
            dists: dists.into(),
        }
    }

    /// Number of indexed nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The label of `node` as a slice-pair view.
    #[inline]
    pub fn of(&self, node: usize) -> LabelRef<'_> {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        LabelRef {
            hub_ranks: &self.hub_ranks[lo..hi],
            dists: &self.dists[lo..hi],
        }
    }

    /// Merge-join query: minimum `d(u, hub) + d(hub, v)` over common hubs.
    /// Returns `f64::INFINITY` when the lists share no hub (disconnected).
    #[inline]
    pub fn query(&self, u: usize, v: usize) -> f64 {
        let (a, b) = (self.of(u), self.of(v));
        merge_join_min(a.hub_ranks, a.dists, b.hub_ranks, b.dists)
    }

    /// A copy of this store with the labels of `dirty` nodes (sorted,
    /// deduplicated indices) replaced by their lists in `work`; clean
    /// nodes are copied as contiguous spans. Produces exactly the store
    /// [`LabelSet::from_lists`] would build from the final lists — the
    /// incremental-maintenance patch path (`crate::incremental`).
    pub(crate) fn patched(&self, work: &[Vec<LabelEntry>], dirty: &[usize]) -> LabelSet {
        let n = self.num_nodes();
        debug_assert_eq!(work.len(), n);
        debug_assert!(dirty.windows(2).all(|w| w[0] < w[1]), "dirty must ascend");
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc: usize = 0;
        let mut di = 0usize;
        for (v, wv) in work.iter().enumerate() {
            acc += if dirty.get(di) == Some(&v) {
                di += 1;
                wv.len()
            } else {
                (self.offsets[v + 1] - self.offsets[v]) as usize
            };
            assert!(acc <= u32::MAX as usize, "label store overflow");
            offsets.push(acc as u32);
        }
        let mut hub_ranks = Vec::with_capacity(acc);
        let mut dists = Vec::with_capacity(acc);
        let mut clean_from = 0usize;
        for &v in dirty {
            let lo = self.offsets[clean_from] as usize;
            let hi = self.offsets[v] as usize;
            hub_ranks.extend_from_slice(&self.hub_ranks[lo..hi]);
            dists.extend_from_slice(&self.dists[lo..hi]);
            debug_assert!(
                work[v].windows(2).all(|w| w[0].hub_rank < w[1].hub_rank),
                "label entries must ascend in hub rank"
            );
            for e in &work[v] {
                hub_ranks.push(e.hub_rank);
                dists.push(e.dist);
            }
            clean_from = v + 1;
        }
        let lo = self.offsets[clean_from] as usize;
        hub_ranks.extend_from_slice(&self.hub_ranks[lo..]);
        dists.extend_from_slice(&self.dists[lo..]);
        // The patched store is owned by construction: patching an
        // mmap-backed set copies into fresh `Vec`s and never writes
        // through the mapping (the CoW half of the zero-copy contract).
        LabelSet {
            offsets: offsets.into(),
            hub_ranks: hub_ranks.into(),
            dists: dists.into(),
        }
    }

    /// True when any plane borrows from a mapped index file.
    pub(crate) fn is_zero_copy(&self) -> bool {
        self.offsets.is_borrowed() || self.hub_ranks.is_borrowed() || self.dists.is_borrowed()
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> LabelStats {
        let nodes = self.num_nodes();
        let max_entries = (0..nodes)
            .map(|v| (self.offsets[v + 1] - self.offsets[v]) as usize)
            .max()
            .unwrap_or(0);
        LabelStats::from_parts(
            nodes,
            self.hub_ranks.len(),
            max_entries,
            std::mem::size_of::<u32>() * self.offsets.len(),
            std::mem::size_of::<u32>() * self.hub_ranks.len(),
            std::mem::size_of::<f64>() * self.dists.len(),
            0,
            0,
        )
    }
}

/// Incremental label construction without per-node `Vec`s.
///
/// Entries are journaled into three flat arenas; `prev` links chain each
/// node's entries newest-first. [`LabelSetBuilder::finish`] converts to the
/// CSR [`LabelSet`] in one counting pass. The builder also answers the
/// traversals PLL construction needs mid-build ([`LabelSetBuilder::entries`],
/// in *descending* rank order — irrelevant for the min/scatter/reset loops
/// that consume it).
#[derive(Clone, Debug)]
pub struct LabelSetBuilder {
    /// Per-node index of the most recent arena entry, or `NONE`.
    pub(crate) head: Vec<u32>,
    /// Per-node entry counts (for the CSR counting pass).
    pub(crate) counts: Vec<u32>,
    pub(crate) arena_ranks: Vec<u32>,
    pub(crate) arena_dists: Vec<f64>,
    pub(crate) arena_prev: Vec<u32>,
}

pub(crate) const NONE: u32 = u32::MAX;

impl LabelSetBuilder {
    /// An empty builder for `n` nodes.
    pub fn new(n: usize) -> Self {
        LabelSetBuilder {
            head: vec![NONE; n],
            counts: vec![0; n],
            arena_ranks: Vec::new(),
            arena_dists: Vec::new(),
            arena_prev: Vec::new(),
        }
    }

    /// Appends an entry to `node`'s label.
    ///
    /// Construction visits hubs in ascending rank, so pushes keep each
    /// node's chain sorted by `hub_rank`; this is debug-asserted.
    #[inline]
    pub fn push(&mut self, node: usize, entry: LabelEntry) {
        debug_assert!(
            self.head[node] == NONE || self.arena_ranks[self.head[node] as usize] < entry.hub_rank,
            "label entries must be pushed in ascending hub rank"
        );
        let idx = self.arena_ranks.len() as u32;
        assert!(idx != NONE, "label arena overflow");
        self.arena_ranks.push(entry.hub_rank);
        self.arena_dists.push(entry.dist);
        self.arena_prev.push(self.head[node]);
        self.head[node] = idx;
        self.counts[node] += 1;
    }

    /// Number of nodes this builder journals labels for.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.head.len()
    }

    /// Total entries journaled so far across all nodes.
    #[inline]
    pub fn total_entries(&self) -> usize {
        self.arena_ranks.len()
    }

    /// `node`'s entries so far, newest first (descending hub rank).
    #[inline]
    pub fn entries(&self, node: usize) -> BuilderEntries<'_> {
        BuilderEntries {
            builder: self,
            next: self.head[node],
        }
    }

    /// Converts to the flat CSR [`LabelSet`]. `O(nodes + entries)`:
    /// a prefix sum over the counts, then each chain is walked backwards,
    /// filling its segment from the end so ranks come out ascending.
    pub fn finish(self) -> LabelSet {
        let n = self.head.len();
        let total = self.arena_ranks.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &c in &self.counts {
            acc += c;
            offsets.push(acc);
        }
        let mut hub_ranks = vec![0u32; total];
        let mut dists = vec![0.0f64; total];
        for v in 0..n {
            let mut slot = offsets[v + 1] as usize;
            let mut cur = self.head[v];
            while cur != NONE {
                let i = cur as usize;
                slot -= 1;
                hub_ranks[slot] = self.arena_ranks[i];
                dists[slot] = self.arena_dists[i];
                cur = self.arena_prev[i];
            }
            debug_assert_eq!(slot, offsets[v] as usize, "chain/count mismatch");
        }
        LabelSet {
            offsets: offsets.into(),
            hub_ranks: hub_ranks.into(),
            dists: dists.into(),
        }
    }
}

/// One worker thread's journal of candidate label entries for the hubs it
/// searched within a batch: a flat SoA arena (`nodes`, `parents`, `dists`)
/// plus per-hub spans. Entries stay in search settle order, which is the
/// order the batch-merge replay needs; `parents` records each candidate's
/// search-tree predecessor so the merge can tell which candidates survive
/// a same-batch invalidation untouched.
#[derive(Clone, Debug, Default)]
pub struct JournalShard {
    /// `(batch-local hub index, arena start offset)` per searched hub;
    /// the span ends where the next one starts (or at the arena end).
    hub_starts: Vec<(u32, u32)>,
    nodes: Vec<u32>,
    parents: Vec<u32>,
    dists: Vec<f64>,
}

impl JournalShard {
    /// Opens a new per-hub span. Hubs must be journaled in ascending
    /// batch-local index, and every assigned hub must call this even when
    /// its search dies immediately (empty span).
    pub fn begin_hub(&mut self, batch_idx: u32) {
        debug_assert!(
            self.hub_starts.last().is_none_or(|&(i, _)| i < batch_idx),
            "hubs must be journaled in ascending batch order"
        );
        self.hub_starts.push((batch_idx, self.nodes.len() as u32));
    }

    /// Appends a candidate `(node, parent, dist)` to the currently open
    /// hub span. `parent` is the node's predecessor in the pruned search
    /// tree (the node itself for the hub's own zero-distance entry).
    #[inline]
    pub fn push(&mut self, node: u32, parent: u32, dist: f64) {
        debug_assert!(!self.hub_starts.is_empty(), "no hub span open");
        self.nodes.push(node);
        self.parents.push(parent);
        self.dists.push(dist);
    }

    /// Total candidates journaled across all spans.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been journaled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn span(&self, i: usize) -> HubCandidates<'_> {
        let (idx, start) = self.hub_starts[i];
        let end = self
            .hub_starts
            .get(i + 1)
            .map_or(self.nodes.len(), |&(_, s)| s as usize);
        let start = start as usize;
        HubCandidates {
            batch_idx: idx,
            nodes: &self.nodes[start..end],
            parents: &self.parents[start..end],
            dists: &self.dists[start..end],
        }
    }

    fn clear(&mut self) {
        self.hub_starts.clear();
        self.nodes.clear();
        self.parents.clear();
        self.dists.clear();
    }
}

/// One hub's journaled candidate list, in search settle order.
#[derive(Clone, Copy, Debug)]
pub struct HubCandidates<'a> {
    /// Batch-local hub index.
    pub batch_idx: u32,
    /// Settled nodes that survived the (frozen-snapshot) prune test.
    pub nodes: &'a [u32],
    /// Each candidate's search-tree predecessor (self for the hub).
    pub parents: &'a [u32],
    /// Settled distances, parallel to `nodes`.
    pub dists: &'a [f64],
}

/// Per-thread sharded label journal for one batch of the parallel PLL
/// build.
///
/// Hubs of a batch are assigned round-robin: the hub with batch-local
/// index `i` is journaled by shard `i % num_shards` (matching the strided
/// worker partition, which balances the expensive low-rank searches).
/// [`ShardedJournal::cursor`] walks the per-shard spans back in global
/// rank order for the merge step.
#[derive(Clone, Debug)]
pub struct ShardedJournal {
    shards: Vec<JournalShard>,
}

impl ShardedJournal {
    /// A journal with `num_shards` (= worker thread count) shards.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards > 0, "journal needs at least one shard");
        ShardedJournal {
            shards: vec![JournalShard::default(); num_shards],
        }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Mutable shard access for handing one shard to each worker.
    pub fn shards_mut(&mut self) -> &mut [JournalShard] {
        &mut self.shards
    }

    /// Total candidates journaled across all shards.
    pub fn total_entries(&self) -> usize {
        self.shards.iter().map(JournalShard::len).sum()
    }

    /// Resets all shards for the next batch, keeping their allocations.
    pub fn clear(&mut self) {
        for s in &mut self.shards {
            s.clear();
        }
    }

    /// A cursor replaying the journal hub by hub in ascending batch-local
    /// (= global rank) order.
    pub fn cursor(&self) -> JournalCursor<'_> {
        JournalCursor {
            journal: self,
            pos: vec![0; self.shards.len()],
            next_hub: 0,
        }
    }
}

/// Rank-order replay cursor over a [`ShardedJournal`].
pub struct JournalCursor<'a> {
    journal: &'a ShardedJournal,
    /// Next unread span per shard.
    pos: Vec<usize>,
    /// Next batch-local hub index to yield.
    next_hub: u32,
}

impl<'a> JournalCursor<'a> {
    /// The next hub's candidate list, or `None` when every span has been
    /// replayed.
    pub fn next_hub(&mut self) -> Option<HubCandidates<'a>> {
        let s = (self.next_hub as usize) % self.journal.shards.len();
        let shard = &self.journal.shards[s];
        if self.pos[s] >= shard.hub_starts.len() {
            return None;
        }
        let span = shard.span(self.pos[s]);
        assert_eq!(
            span.batch_idx, self.next_hub,
            "journal spans out of rank order (round-robin assignment violated)"
        );
        self.pos[s] += 1;
        self.next_hub += 1;
        Some(span)
    }
}

/// Iterator over a node's in-construction label (descending hub rank).
pub struct BuilderEntries<'a> {
    builder: &'a LabelSetBuilder,
    next: u32,
}

impl Iterator for BuilderEntries<'_> {
    type Item = LabelEntry;

    #[inline]
    fn next(&mut self) -> Option<LabelEntry> {
        if self.next == NONE {
            return None;
        }
        let i = self.next as usize;
        self.next = self.builder.arena_prev[i];
        Some(LabelEntry {
            hub_rank: self.builder.arena_ranks[i],
            dist: self.builder.arena_dists[i],
        })
    }
}

/// Two-pointer merge over two rank-ascending entry streams, taking the
/// min combined distance over common hubs — the storage-independent form
/// of [`merge_join_min`] every non-CSR backend's pairwise query runs.
/// Same sums over the same hubs in the same order, hence bit-identical
/// results across backends.
#[inline]
pub(crate) fn merge_join_entries(
    mut a: impl Iterator<Item = LabelEntry>,
    mut b: impl Iterator<Item = LabelEntry>,
) -> f64 {
    let (mut ea, mut eb) = (a.next(), b.next());
    let mut best = f64::INFINITY;
    while let (Some(x), Some(y)) = (ea, eb) {
        match x.hub_rank.cmp(&y.hub_rank) {
            std::cmp::Ordering::Equal => {
                let d = x.dist + y.dist;
                if d < best {
                    best = d;
                }
                ea = a.next();
                eb = b.next();
            }
            std::cmp::Ordering::Less => ea = a.next(),
            std::cmp::Ordering::Greater => eb = b.next(),
        }
    }
    best
}

/// Two-pointer merge over rank-sorted slice pairs, taking the min combined
/// distance over common hubs.
#[inline]
pub(crate) fn merge_join_min(
    a_ranks: &[u32],
    a_dists: &[f64],
    b_ranks: &[u32],
    b_dists: &[f64],
) -> f64 {
    let mut best = f64::INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a_ranks.len() && j < b_ranks.len() {
        let (ra, rb) = (a_ranks[i], b_ranks[j]);
        match ra.cmp(&rb) {
            std::cmp::Ordering::Equal => {
                let d = a_dists[i] + b_dists[j];
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(hub_rank: u32, dist: f64) -> LabelEntry {
        LabelEntry { hub_rank, dist }
    }

    fn set(lists: &[Vec<LabelEntry>]) -> LabelSet {
        LabelSet::from_lists(lists)
    }

    #[test]
    fn query_takes_min_over_common_hubs() {
        let ls = set(&[vec![e(0, 1.0), e(2, 0.5)], vec![e(0, 2.0), e(2, 5.0)]]);
        // Common hubs 0 (1+2=3) and 2 (0.5+5=5.5); min is 3.
        assert_eq!(ls.query(0, 1), 3.0);
    }

    #[test]
    fn disjoint_hubs_mean_infinity() {
        let ls = set(&[vec![e(0, 1.0)], vec![e(1, 1.0)]]);
        assert_eq!(ls.query(0, 1), f64::INFINITY);
    }

    #[test]
    fn empty_labels_mean_infinity() {
        let ls = LabelSet::new(2);
        assert_eq!(ls.query(0, 1), f64::INFINITY);
    }

    #[test]
    fn stats_counts_entries() {
        let ls = set(&[vec![e(0, 0.0)], vec![e(0, 1.0), e(1, 0.0)], vec![]]);
        let s = ls.stats();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.total_entries, 3);
        assert_eq!(s.max_entries, 2);
        assert!((s.avg_entries - 1.0).abs() < 1e-12);
    }

    #[test]
    fn builder_matches_from_lists() {
        let lists = vec![
            vec![e(0, 0.25), e(3, 1.5), e(7, 2.0)],
            vec![],
            vec![e(1, 0.5), e(2, 4.0)],
        ];
        // Interleave pushes across nodes in global rank order, the way PLL
        // construction does.
        let mut b = LabelSetBuilder::new(3);
        let mut flat: Vec<(usize, LabelEntry)> = Vec::new();
        for (v, l) in lists.iter().enumerate() {
            for &entry in l {
                flat.push((v, entry));
            }
        }
        flat.sort_by_key(|&(_, entry)| entry.hub_rank);
        for (v, entry) in flat {
            b.push(v, entry);
        }
        let built = b.finish();
        let reference = LabelSet::from_lists(&lists);
        for v in 0..3 {
            assert_eq!(built.of(v).hub_ranks, reference.of(v).hub_ranks);
            assert_eq!(built.of(v).dists, reference.of(v).dists);
        }
        assert_eq!(built.stats(), reference.stats());
    }

    #[test]
    fn builder_entries_descend() {
        let mut b = LabelSetBuilder::new(1);
        b.push(0, e(1, 1.0));
        b.push(0, e(4, 2.0));
        b.push(0, e(9, 3.0));
        let ranks: Vec<u32> = b.entries(0).map(|x| x.hub_rank).collect();
        assert_eq!(ranks, vec![9, 4, 1]);
    }

    #[test]
    fn label_ref_iterates_ascending() {
        let ls = set(&[vec![e(2, 1.0), e(5, 0.5)]]);
        let got: Vec<LabelEntry> = ls.of(0).iter().collect();
        assert_eq!(got, vec![e(2, 1.0), e(5, 0.5)]);
        assert_eq!(ls.of(0).len(), 2);
        assert!(!ls.of(0).is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "ascending hub rank")]
    fn push_enforces_rank_order_in_debug() {
        let mut b = LabelSetBuilder::new(1);
        b.push(0, e(5, 1.0));
        b.push(0, e(3, 1.0));
    }

    #[test]
    fn stats_reports_csr_bytes() {
        let ls = set(&[vec![e(0, 0.0)], vec![e(0, 1.0), e(1, 0.0)], vec![]]);
        let s = ls.stats();
        // offsets: (3 + 1) u32s; 3 entries: 3 u32 ranks + 3 f64 dists.
        assert_eq!(s.offsets_bytes, 4 * 4);
        assert_eq!(s.ranks_bytes, 3 * 4);
        assert_eq!(s.dists_bytes, 3 * 8);
        assert_eq!(s.dict_bytes, 0);
        assert_eq!(s.dict_values, 0);
        assert_eq!(s.bytes, 4 * 4 + 3 * 4 + 3 * 8);
        assert_eq!(LabelSet::new(2).stats().bytes, 3 * 4);
    }

    #[test]
    fn sharded_journal_replays_in_rank_order() {
        // 5 hubs over 2 shards: shard 0 gets hubs 0, 2, 4; shard 1 gets
        // 1, 3. Hub 3's search journals nothing (empty span).
        let mut j = ShardedJournal::new(2);
        {
            let shards = j.shards_mut();
            shards[0].begin_hub(0);
            shards[0].push(7, 7, 0.5);
            shards[0].push(8, 7, 1.5);
            shards[1].begin_hub(1);
            shards[1].push(9, 9, 2.5);
            shards[0].begin_hub(2);
            shards[0].push(1, 1, 0.0);
            shards[1].begin_hub(3);
            shards[0].begin_hub(4);
            shards[0].push(2, 2, 4.0);
        }
        assert_eq!(j.total_entries(), 5);
        let mut cur = j.cursor();
        let mut seen = Vec::new();
        while let Some(h) = cur.next_hub() {
            assert_eq!(h.nodes.len(), h.dists.len());
            assert_eq!(h.nodes.len(), h.parents.len());
            seen.push((h.batch_idx, h.nodes.to_vec()));
        }
        assert_eq!(
            seen,
            vec![
                (0, vec![7, 8]),
                (1, vec![9]),
                (2, vec![1]),
                (3, vec![]),
                (4, vec![2]),
            ]
        );
        j.clear();
        assert_eq!(j.total_entries(), 0);
        assert!(j.cursor().next_hub().is_none());
    }
}
