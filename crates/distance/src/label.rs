//! 2-hop cover label storage.

/// One label entry: this node is at distance `dist` from the hub with
/// construction rank `hub_rank`.
///
/// Storing the *rank* instead of the node id keeps label lists sorted by
/// construction order for free, which is exactly the merge order queries
/// need.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LabelEntry {
    /// Rank of the hub in the PLL vertex order (0 = most central).
    pub hub_rank: u32,
    /// Shortest-path distance from the owning node to that hub.
    pub dist: f64,
}

/// The label lists of every node, indexed by node id.
#[derive(Clone, Debug, Default)]
pub struct LabelSet {
    labels: Vec<Vec<LabelEntry>>,
}

/// Summary statistics of a built index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LabelStats {
    /// Number of indexed nodes.
    pub nodes: usize,
    /// Total label entries across all nodes.
    pub total_entries: usize,
    /// Mean entries per node.
    pub avg_entries: f64,
    /// Largest single label list.
    pub max_entries: usize,
}

impl LabelSet {
    /// An empty label set for `n` nodes.
    pub fn new(n: usize) -> Self {
        LabelSet {
            labels: vec![Vec::new(); n],
        }
    }

    /// Appends an entry to `node`'s list.
    ///
    /// Construction visits hubs in ascending rank, so pushes keep each list
    /// sorted by `hub_rank`; this is debug-asserted.
    #[inline]
    pub fn push(&mut self, node: usize, entry: LabelEntry) {
        let list = &mut self.labels[node];
        debug_assert!(
            list.last().is_none_or(|last| last.hub_rank < entry.hub_rank),
            "label entries must be pushed in ascending hub rank"
        );
        list.push(entry);
    }

    /// The label list of `node`.
    #[inline]
    pub fn of(&self, node: usize) -> &[LabelEntry] {
        &self.labels[node]
    }

    /// Merge-join query: minimum `d(u, hub) + d(hub, v)` over common hubs.
    /// Returns `f64::INFINITY` when the lists share no hub (disconnected).
    #[inline]
    pub fn query(&self, u: usize, v: usize) -> f64 {
        merge_join_min(&self.labels[u], &self.labels[v])
    }

    /// Shrinks every list to fit (labels are immutable after construction).
    pub fn shrink(&mut self) {
        for l in &mut self.labels {
            l.shrink_to_fit();
        }
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> LabelStats {
        let nodes = self.labels.len();
        let total_entries: usize = self.labels.iter().map(|l| l.len()).sum();
        let max_entries = self.labels.iter().map(|l| l.len()).max().unwrap_or(0);
        LabelStats {
            nodes,
            total_entries,
            avg_entries: if nodes == 0 {
                0.0
            } else {
                total_entries as f64 / nodes as f64
            },
            max_entries,
        }
    }
}

/// Two-pointer merge over rank-sorted lists, taking the min combined
/// distance over common hubs.
#[inline]
pub(crate) fn merge_join_min(a: &[LabelEntry], b: &[LabelEntry]) -> f64 {
    let mut best = f64::INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (ra, rb) = (a[i].hub_rank, b[j].hub_rank);
        match ra.cmp(&rb) {
            std::cmp::Ordering::Equal => {
                let d = a[i].dist + b[j].dist;
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(hub_rank: u32, dist: f64) -> LabelEntry {
        LabelEntry { hub_rank, dist }
    }

    #[test]
    fn query_takes_min_over_common_hubs() {
        let mut ls = LabelSet::new(2);
        ls.push(0, e(0, 1.0));
        ls.push(0, e(2, 0.5));
        ls.push(1, e(0, 2.0));
        ls.push(1, e(2, 5.0));
        // Common hubs 0 (1+2=3) and 2 (0.5+5=5.5); min is 3.
        assert_eq!(ls.query(0, 1), 3.0);
    }

    #[test]
    fn disjoint_hubs_mean_infinity() {
        let mut ls = LabelSet::new(2);
        ls.push(0, e(0, 1.0));
        ls.push(1, e(1, 1.0));
        assert_eq!(ls.query(0, 1), f64::INFINITY);
    }

    #[test]
    fn empty_labels_mean_infinity() {
        let ls = LabelSet::new(2);
        assert_eq!(ls.query(0, 1), f64::INFINITY);
    }

    #[test]
    fn stats_counts_entries() {
        let mut ls = LabelSet::new(3);
        ls.push(0, e(0, 0.0));
        ls.push(1, e(0, 1.0));
        ls.push(1, e(1, 0.0));
        let s = ls.stats();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.total_entries, 3);
        assert_eq!(s.max_entries, 2);
        assert!((s.avg_entries - 1.0).abs() < 1e-12);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "ascending hub rank")]
    fn push_enforces_rank_order_in_debug() {
        let mut ls = LabelSet::new(1);
        ls.push(0, e(5, 1.0));
        ls.push(0, e(3, 1.0));
    }
}
