//! Read-only file mappings for zero-copy index loading.
//!
//! [`MmapRegion`] maps a persisted index file into the address space so
//! [`crate::persist`]'s v2 loader can borrow label planes straight out of
//! the page cache instead of decoding them into owned `Vec`s. The region
//! is reference-counted (`Arc<MmapRegion>`): every borrowed
//! [`crate::plane::Plane`] holds a clone, so the mapping lives exactly as
//! long as the last plane (and, through the serve layer, the last
//! in-flight request pinning a snapshot built over it).
//!
//! The build environment has no registry access, so instead of `memmap2`
//! this module issues the two syscalls it needs (`mmap`, `munmap`)
//! directly via inline assembly on Linux x86_64/aarch64 and falls back to
//! an 8-byte-aligned heap buffer everywhere else (and for empty files,
//! which `mmap` rejects with `EINVAL`). The heap fallback still skips all
//! plane *decoding* — it costs one `read` of the file instead of zero.
//!
//! # Safety contract
//!
//! Mappings are `PROT_READ` + `MAP_PRIVATE`: nothing in this process can
//! write through them. The persist layer never modifies an index file in
//! place — [`crate::persist::atomic_write`] always creates a fresh inode
//! and renames it over the path — so the bytes behind a mapping are
//! stable for its whole lifetime. Borrowed planes additionally require
//! 8-byte alignment, which `mmap` guarantees (page-aligned base) and the
//! heap fallback provides by allocating `u64` storage.

use std::fs::File;
use std::io::{self, Read as _};
use std::path::Path;
use std::sync::Arc;

/// Whether raw-syscall mapping is available on this target.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
const NATIVE_MMAP: bool = true;
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
const NATIVE_MMAP: bool = false;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! `mmap(2)` / `munmap(2)` via raw syscalls — no libc dependency.

    const PROT_READ: usize = 0x1;
    const MAP_PRIVATE: usize = 0x2;
    /// Pre-fault the whole mapping at map time so the first query pass
    /// doesn't pay per-page soft faults (the loader walks the payload
    /// once anyway to verify its checksum).
    const MAP_POPULATE: usize = 0x8000;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
        ret
    }

    /// Kernel convention: errors come back as `-errno` in `[-4095, -1]`.
    fn check(ret: isize) -> std::io::Result<usize> {
        if (-4095..0).contains(&ret) {
            Err(std::io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// Map `len` bytes of `fd` read-only and pre-faulted. `len` must be
    /// non-zero (the kernel rejects zero-length mappings).
    pub(super) fn map_readonly(fd: i32, len: usize) -> std::io::Result<*const u8> {
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len,
                PROT_READ,
                MAP_PRIVATE | MAP_POPULATE,
                fd as usize,
                0,
            )
        };
        check(ret).map(|addr| addr as *const u8)
    }

    pub(super) fn unmap(ptr: *const u8, len: usize) {
        // Failure here would mean the mapping was already gone; there is
        // nothing useful to do with the error in a destructor.
        let _ = check(unsafe { syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0) });
    }
}

enum Repr {
    /// A live kernel mapping; unmapped on drop.
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Mapped { ptr: *const u8, len: usize },
    /// File contents read into an 8-byte-aligned heap buffer (`u64`
    /// storage); `len` is the real byte length, the final word may be
    /// zero-padded.
    Heap { buf: Vec<u64>, len: usize },
}

/// A read-only, 8-byte-aligned view of an index file, shared by every
/// plane borrowed from it.
///
/// Obtain one with [`MmapRegion::map_file`]; it is always returned inside
/// an [`Arc`] because its whole purpose is to outlive the loader and be
/// pinned by borrowed [`crate::plane::Plane`]s.
pub struct MmapRegion {
    repr: Repr,
}

// SAFETY: the region is immutable after construction (PROT_READ mapping
// or an owned buffer nobody writes to), so shared references can cross
// threads freely.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl MmapRegion {
    /// Map `path` read-only. Uses a real `mmap` on Linux
    /// x86_64/aarch64; everywhere else (and for empty files) reads the
    /// file into an 8-byte-aligned heap buffer instead.
    pub fn map_file(path: &Path) -> io::Result<Arc<MmapRegion>> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "index file exceeds the address space",
            ));
        }
        let len = len as usize;

        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            let ptr = sys::map_readonly(file.as_raw_fd(), len)?;
            // The descriptor can close now; the mapping keeps its own
            // reference to the inode.
            return Ok(Arc::new(MmapRegion {
                repr: Repr::Mapped { ptr, len },
            }));
        }

        let mut buf = vec![0u64; len.div_ceil(8)];
        // SAFETY: a `Vec<u64>` of ⌈len/8⌉ words spans at least `len`
        // initialized bytes; viewing them as `u8` is always valid.
        let dst = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
        file.read_exact(dst)?;
        Ok(Arc::new(MmapRegion {
            repr: Repr::Heap { buf, len },
        }))
    }

    /// The full file contents. The returned slice's base address is
    /// 8-byte aligned.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.repr {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Repr::Mapped { ptr, len } => {
                // SAFETY: the mapping covers `len` readable bytes and
                // stays valid until drop.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Repr::Heap { buf, len } => {
                // SAFETY: as in `map_file`, the word buffer spans at
                // least `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len) }
            }
        }
    }

    /// Byte length of the region.
    pub fn len(&self) -> usize {
        match &self.repr {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Repr::Mapped { len, .. } => *len,
            Repr::Heap { len, .. } => *len,
        }
    }

    /// True when the region holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when backed by a live kernel mapping (page-cache sharing);
    /// false for the heap fallback.
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Repr::Mapped { .. } => true,
            Repr::Heap { .. } => false,
        }
    }

    /// Whether [`map_file`](Self::map_file) can produce real mappings on
    /// this target (it still heap-loads empty files).
    pub fn native_mmap_supported() -> bool {
        NATIVE_MMAP
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Repr::Mapped { ptr, len } = self.repr {
            sys::unmap(ptr, len);
        }
    }
}

impl std::fmt::Debug for MmapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapRegion")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "atd_mmap_{tag}_{}_{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = tmp_path("contents");
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &data).unwrap();
        let region = MmapRegion::map_file(&path).unwrap();
        assert_eq!(region.as_bytes(), &data[..]);
        assert_eq!(region.len(), data.len());
        assert_eq!(region.as_bytes().as_ptr() as usize % 8, 0, "8-aligned base");
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        assert!(region.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_heap_loads() {
        let path = tmp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let region = MmapRegion::map_file(&path).unwrap();
        assert!(region.is_empty());
        assert!(!region.is_mapped());
        assert_eq!(region.as_bytes(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = MmapRegion::map_file(Path::new("/definitely/not/here.atdl")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn region_outlives_many_clones_across_threads() {
        let path = tmp_path("threads");
        std::fs::write(&path, vec![7u8; 4096 * 3 + 5]).unwrap();
        let region = MmapRegion::map_file(&path).unwrap();
        std::fs::remove_file(&path).ok(); // mapping keeps the inode alive
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&region);
                std::thread::spawn(move || r.as_bytes().iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        let expect = 7u64 * (4096 * 3 + 5);
        for h in handles {
            assert_eq!(h.join().unwrap(), expect);
        }
    }
}
