//! Versioned on-disk persistence for the hub-label index.
//!
//! The paper's query engine is only fast because the 2-hop cover is
//! already built — yet every process start used to pay a full PLL
//! construction. All four [`LabelStore`] backends are flat arrays plus at
//! most one dictionary table, so a built index serializes to a
//! straightforward little-endian dump that loads orders of magnitude
//! faster than even the parallel rebuild (`O(index bytes)` instead of
//! `O(graph rebuild)` — see `BENCH_pr5.json` and the cold-start section
//! of the README).
//!
//! The format is defensive because a loaded file is the **first untrusted
//! byte stream** the label decoders ever see. The header carries a magic,
//! a format version, the storage tag, a snapshot fingerprint (node count,
//! entry count, and a hash of the graph's edge/weight stream) so stale
//! indexes are rejected, and an FNV-1a checksum over the payload.
//! Loading validates every structural invariant the unchecked hot-path
//! decoders rely on — offsets monotone and in range, varint blocks
//! well-formed (via the checked decoder in `codec.rs`), dictionary codes
//! inside the table — and returns [`PersistError`], **never panics**, on
//! any malformed input. See `crates/distance/src/README.md` for the
//! byte-level format specification.
//!
//! Typical use is the load-or-build cold start
//! (`DiscoveryOptions::pll_index_path` in `atd-core` wires this up
//! end-to-end):
//!
//! ```
//! use atd_distance::{LabelStore, PrunedLandmarkLabeling, VertexOrder};
//! use atd_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! let u = b.add_node(1.0);
//! let v = b.add_node(2.0);
//! b.add_edge(u, v, 0.5).unwrap();
//! let g = b.build().unwrap();
//!
//! let built = PrunedLandmarkLabeling::build(&g);
//! let path = std::env::temp_dir().join("atd-doctest-index.atdl");
//! built.save_to(&path, &g).unwrap();
//! let loaded = PrunedLandmarkLabeling::load_from(&path, &g).unwrap();
//! // Bit-identical labels, hence bit-identical queries.
//! for n in 0..g.num_nodes() {
//!     assert!(built
//!         .labels()
//!         .entries(n)
//!         .eq(loaded.labels().entries(n)));
//! }
//! std::fs::remove_file(&path).unwrap();
//! ```

use std::fmt;
use std::io::Read;
use std::path::Path;
use std::time::{Duration, Instant};

use atd_graph::ExpertGraph;

use crate::codec::{try_read_varint, CompressedLabelSet, LabelStorage, LabelStore, VarintError};
use crate::dict::{CodePlane, CompressedDictLabelSet, DictLabelSet, DistDict};
use crate::label::LabelSet;
use crate::pll::PrunedLandmarkLabeling;

/// File magic, the first four bytes of every index dump.
pub const MAGIC: [u8; 4] = *b"ATDL";

/// Current on-disk format version.
pub const FORMAT_VERSION: u16 = 1;

/// Fixed header length in bytes (see the format spec in
/// `crates/distance/src/README.md`).
pub const HEADER_LEN: usize = 48;

/// Why a save or load failed.
///
/// Every decode-side failure mode is a variant here: loading **returns**
/// these — it never panics, whatever the bytes are (enforced by
/// `tests/proptest_persist.rs`, which flips and truncates files
/// exhaustively).
#[derive(Debug)]
pub enum PersistError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not an index dump.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u16),
    /// The header's storage tag names no known [`LabelStorage`] backend.
    BadStorageTag(u8),
    /// The snapshot fingerprint does not match the graph the caller
    /// supplied — the index was built from a different (stale) snapshot.
    StaleIndex {
        /// Which fingerprint component mismatched (`"nodes"` or
        /// `"graph hash"`).
        what: &'static str,
        /// The value derived from the caller's graph.
        expected: u64,
        /// The value stored in the file.
        found: u64,
    },
    /// The payload checksum does not match the header — bit rot or a
    /// partial write.
    ChecksumMismatch,
    /// The file ended before the structure it promised was complete.
    Truncated,
    /// A structural invariant of the label encoding does not hold; the
    /// message names the violated invariant.
    Corrupt(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index file I/O failed: {e}"),
            PersistError::BadMagic => write!(f, "not an ATDL index file (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported index format version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            PersistError::BadStorageTag(t) => write!(f, "unknown label storage tag {t}"),
            PersistError::StaleIndex {
                what,
                expected,
                found,
            } => write!(
                f,
                "stale index: {what} mismatch (graph has {expected:#x}, file has {found:#x})"
            ),
            PersistError::ChecksumMismatch => write!(f, "index payload checksum mismatch"),
            PersistError::Truncated => write!(f, "index file truncated"),
            PersistError::Corrupt(what) => write!(f, "corrupt index: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<VarintError> for PersistError {
    fn from(e: VarintError) -> Self {
        match e {
            VarintError::Truncated => PersistError::Corrupt("varint block truncated"),
            VarintError::Overflow => PersistError::Corrupt("varint does not fit u32"),
        }
    }
}

impl PersistError {
    /// Whether retrying the same operation could plausibly succeed.
    ///
    /// Only raw I/O failures are transient (a saturated disk, a
    /// momentarily unavailable network mount, an interrupted syscall).
    /// Every structural failure — bad magic, stale fingerprint, checksum
    /// mismatch, corruption — is a property of the *bytes*, so retrying
    /// the read would just decode the same bytes again.
    pub fn is_transient(&self) -> bool {
        matches!(self, PersistError::Io(_))
    }
}

/// Bounded retry with capped exponential backoff for transient
/// persistence I/O.
///
/// Snapshot files are read and written by long-lived services (the
/// load-or-build cold start, the background snapshot-swap thread in
/// `atd-serve`), where a single `EINTR`/`EAGAIN`-class hiccup should not
/// abort a swap or force a full index rebuild. The policy retries **only**
/// failures where [`PersistError::is_transient`] holds; structural errors
/// (stale, corrupt, truncated) fail immediately — re-reading corrupt
/// bytes cannot fix them.
///
/// The sleep between attempts doubles from [`base_delay`] and is capped
/// at [`max_delay`]. Tests inject a recording clock via
/// [`RetryPolicy::run_with_sleep`], so no test ever actually sleeps.
///
/// [`base_delay`]: RetryPolicy::base_delay
/// [`max_delay`]: RetryPolicy::max_delay
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retry).
    pub attempts: u32,
    /// Sleep before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Upper bound on any single sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 10 ms → 20 ms backoff (capped at 200 ms).
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — one attempt, no sleeping.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The backoff slept **after** failed attempt number `attempt`
    /// (1-based): `base_delay · 2^(attempt−1)`, capped at `max_delay`.
    pub fn delay_after(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(20);
        self.base_delay
            .saturating_mul(factor)
            .min(self.max_delay)
            .max(self.base_delay.min(self.max_delay))
    }

    /// Runs `op` under this policy, sleeping with [`std::thread::sleep`]
    /// between attempts. `op` receives the 1-based attempt number.
    pub fn run<T>(
        &self,
        op: impl FnMut(u32) -> Result<T, PersistError>,
    ) -> Result<T, PersistError> {
        self.run_with_sleep(op, std::thread::sleep)
    }

    /// [`RetryPolicy::run`] with an injectable clock: `sleep` is called
    /// with each backoff delay, letting tests record the schedule
    /// instead of waiting it out.
    pub fn run_with_sleep<T>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, PersistError>,
        mut sleep: impl FnMut(Duration),
    ) -> Result<T, PersistError> {
        let attempts = self.attempts.max(1);
        for attempt in 1..=attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < attempts => {
                    sleep(self.delay_after(attempt));
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the final attempt")
    }
}

/// The identity of the snapshot an index was built from, stored in the
/// header so a loaded index is provably the index **of this graph**:
/// node count, label entry count, and a hash of the graph's edge/weight
/// stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotFingerprint {
    /// Indexed node count.
    pub nodes: u64,
    /// Total label entries across all nodes.
    pub entries: u64,
    /// [`graph_fingerprint`] of the edge/weight stream.
    pub graph_hash: u64,
}

impl SnapshotFingerprint {
    /// The fingerprint [`LabelStore::save_to`] writes for `store` built
    /// from `graph`.
    pub fn of(graph: &ExpertGraph, store: &LabelStore) -> SnapshotFingerprint {
        SnapshotFingerprint {
            nodes: store.num_nodes() as u64,
            entries: store.stats().total_entries as u64,
            graph_hash: graph_fingerprint(graph),
        }
    }

    /// Reads the fingerprint out of a dump's header without parsing (or
    /// even reading) the payload — identifies which snapshot a file
    /// belongs to without needing the graph, e.g. for ops tooling
    /// deciding which of several cached indexes to load.
    pub fn read_from_bytes(bytes: &[u8]) -> Result<SnapshotFingerprint, PersistError> {
        if bytes.len() < HEADER_LEN {
            return Err(PersistError::Truncated);
        }
        if bytes[0..4] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        if version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        Ok(SnapshotFingerprint {
            nodes: u64_at(8),
            entries: u64_at(16),
            graph_hash: u64_at(24),
        })
    }

    /// [`SnapshotFingerprint::read_from_bytes`] over a file's first
    /// [`HEADER_LEN`] bytes.
    pub fn read_from(path: &Path) -> Result<SnapshotFingerprint, PersistError> {
        let mut header = [0u8; HEADER_LEN];
        let mut f = std::fs::File::open(path)?;
        f.read_exact(&mut header)
            .map_err(|_| PersistError::Truncated)?;
        SnapshotFingerprint::read_from_bytes(&header)
    }
}

/// FNV-1a 64-bit accumulator — the format's hash for both the graph
/// fingerprint and the payload checksum. Not cryptographic; it guards
/// against stale snapshots and bit rot, not adversarial collisions.
struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// Hash of a graph's edge/weight stream (node count, edge count, then
/// every undirected edge as `(u, v, weight bits)` in canonical order) —
/// the staleness check of the on-disk header. Any change to topology or
/// weights changes this value.
pub fn graph_fingerprint(g: &ExpertGraph) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(g.num_nodes() as u64);
    h.write_u64(g.num_edges() as u64);
    for (u, v, w) in g.edges() {
        h.write_u64(u.index() as u64);
        h.write_u64(v.index() as u64);
        h.write_u64(w.to_bits());
    }
    h.0
}

/// The checksum the format stores over its payload bytes (FNV-1a 64).
/// Public so external tooling — and the corruption tests — can re-seal a
/// patched payload and exercise the structural validation behind it.
pub fn checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(payload);
    h.0
}

// ---------------------------------------------------------------------
// Atomic file publication + orphaned-temp sweep
// ---------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: the data first lands in a
/// uniquely-named sibling temp file (`<name>.tmp.<pid>.<seq>` — pid plus
/// a process-wide sequence counter, so concurrent savers never share a
/// temp path), is fsynced, and is then renamed over `path`. A crash or
/// racing writer never leaves a half-written file at `path`; at worst it
/// orphans a temp file, which [`sweep_orphaned_tmp`] reclaims on the
/// next startup.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Returns `Some(pid)` when `name` is an orphaned-temp name for any final
/// file (`<base>.tmp.<pid>.<seq>` with all-digit pid and seq), i.e. the
/// naming scheme used by [`atomic_write`] and [`LabelStore::save_to`].
fn parse_tmp_pid(name: &str) -> Option<u32> {
    let (rest, seq) = name.rsplit_once('.')?;
    if seq.is_empty() || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let (rest, pid) = rest.rsplit_once('.')?;
    if !rest.ends_with(".tmp") || pid.is_empty() {
        return None;
    }
    pid.parse().ok()
}

/// True when the writer process that owns a temp file can be ruled dead.
/// Our own pid is always considered live (another thread may be mid-save);
/// other pids are probed via `/proc` on Linux. On platforms without
/// `/proc` the check is conservative: foreign temp files are left alone.
fn tmp_owner_is_dead(pid: u32) -> bool {
    if pid == std::process::id() {
        return false;
    }
    #[cfg(target_os = "linux")]
    {
        !Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Removes orphaned temp files that a crashed writer left next to the
/// final file at `path` (the `<name>.tmp.<pid>.<seq>` siblings produced
/// by [`atomic_write`] between temp-write and rename). Only files whose
/// name extends `path`'s own file name are considered, and only when the
/// owning pid is provably dead — live writers in this or another process
/// are never raced. Returns how many files were removed; IO errors while
/// scanning are swallowed (the sweep is best-effort hygiene, never a
/// reason to fail a load).
pub fn sweep_orphaned_tmp(path: &Path) -> usize {
    let Some(dir) = path.parent() else {
        return 0;
    };
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    let Some(base) = path.file_name().and_then(|n| n.to_str()) else {
        return 0;
    };
    sweep_dir_with(dir, |name| {
        name.strip_prefix(base)
            .filter(|rest| rest.starts_with(".tmp."))
            .is_some()
    })
}

/// Removes every provably-orphaned `*.tmp.<pid>.<seq>` file directly
/// inside `dir`, regardless of which final file it was destined for.
/// Same safety rules as [`sweep_orphaned_tmp`]; used by stores that own
/// a whole directory rather than a single index path.
pub fn sweep_orphaned_tmp_dir(dir: &Path) -> usize {
    sweep_dir_with(dir, |_| true)
}

fn sweep_dir_with(dir: &Path, applies: impl Fn(&str) -> bool) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !applies(name) {
            continue;
        }
        let Some(pid) = parse_tmp_pid(name) else {
            continue;
        };
        if tmp_owner_is_dead(pid) && std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

// ---------------------------------------------------------------------
// Payload writer
// ---------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32_slice(out: &mut Vec<u8>, v: &[u32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_u16_slice(out: &mut Vec<u8>, v: &[u16]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_u8_slice(out: &mut Vec<u8>, v: &[u8]) {
    put_u64(out, v.len() as u64);
    out.extend_from_slice(v);
}

fn put_f64_slice(out: &mut Vec<u8>, v: &[f64]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

fn put_dict(out: &mut Vec<u8>, dict: &DistDict) {
    put_f64_slice(out, &dict.table);
    match &dict.codes {
        CodePlane::U8(c) => {
            out.push(1);
            put_u8_slice(out, c);
        }
        CodePlane::U16(c) => {
            out.push(2);
            put_u16_slice(out, c);
        }
        CodePlane::U32(c) => {
            out.push(4);
            put_u32_slice(out, c);
        }
    }
}

// ---------------------------------------------------------------------
// Payload reader (bounds-checked cursor over untrusted bytes)
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.buf.len() {
            return Err(PersistError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.bytes(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a length prefix, refusing counts the remaining bytes cannot
    /// possibly hold — a malicious length field must fail *before* any
    /// allocation, not OOM on it.
    fn len_prefix(&mut self, elem_size: usize) -> Result<usize, PersistError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(elem_size as u64)
            .ok_or(PersistError::Truncated)?
            > remaining
        {
            return Err(PersistError::Truncated);
        }
        Ok(n as usize)
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, PersistError> {
        let n = self.len_prefix(4)?;
        let raw = self.bytes(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }

    fn u16_vec(&mut self) -> Result<Vec<u16>, PersistError> {
        let n = self.len_prefix(2)?;
        let raw = self.bytes(n * 2)?;
        Ok(raw
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().expect("2-byte chunk")))
            .collect())
    }

    fn u8_vec(&mut self) -> Result<Vec<u8>, PersistError> {
        let n = self.len_prefix(1)?;
        Ok(self.bytes(n)?.to_vec())
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.len_prefix(8)?;
        let raw = self.bytes(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
            .collect())
    }

    fn finish(&self) -> Result<(), PersistError> {
        if self.pos != self.buf.len() {
            return Err(PersistError::Corrupt("trailing bytes after payload"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Structural validation
// ---------------------------------------------------------------------

/// Entry-offset invariants every backend shares: `nodes + 1` values,
/// starting at 0, monotone nondecreasing, ending at `entries`.
fn validate_offsets(offsets: &[u32], nodes: usize, entries: usize) -> Result<(), PersistError> {
    if offsets.len() != nodes + 1 {
        return Err(PersistError::Corrupt("offset array length != nodes + 1"));
    }
    if offsets[0] != 0 {
        return Err(PersistError::Corrupt("offset array does not start at 0"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(PersistError::Corrupt("entry offsets not monotone"));
    }
    if offsets[offsets.len() - 1] as usize != entries {
        return Err(PersistError::Corrupt("offset array end != entry count"));
    }
    Ok(())
}

/// Flat-rank invariant: strictly ascending hub ranks within every node's
/// slice (what the merge-join and scatter scans rely on); with a
/// `rank_bound`, additionally every rank `< bound` (ascent means only
/// each slice's last rank needs the comparison).
fn validate_csr_ranks(
    offsets: &[u32],
    ranks: &[u32],
    rank_bound: Option<u32>,
) -> Result<(), PersistError> {
    for v in 0..offsets.len() - 1 {
        let slice = &ranks[offsets[v] as usize..offsets[v + 1] as usize];
        if slice.windows(2).any(|w| w[0] >= w[1]) {
            return Err(PersistError::Corrupt(
                "hub ranks not strictly ascending within a node",
            ));
        }
        if let (Some(bound), Some(&last)) = (rank_bound, slice.last()) {
            if last >= bound {
                return Err(PersistError::Corrupt("hub rank exceeds node count"));
            }
        }
    }
    Ok(())
}

/// Varint-block invariants: byte offsets monotone and in range, every
/// block holding exactly one well-formed varint per entry, consuming
/// exactly its bytes, and decoding to ranks that ascend strictly without
/// wrapping `u32`. Runs the checked decoder — the unchecked hot-path
/// form is only ever fed blocks that passed here.
fn validate_varint_blocks(
    offsets: &[u32],
    byte_offsets: &[u32],
    rank_bytes: &[u8],
    nodes: usize,
    rank_bound: Option<u32>,
) -> Result<(), PersistError> {
    if byte_offsets.len() != nodes + 1 {
        return Err(PersistError::Corrupt(
            "byte-offset array length != nodes + 1",
        ));
    }
    if byte_offsets[0] != 0 {
        return Err(PersistError::Corrupt(
            "byte-offset array does not start at 0",
        ));
    }
    if byte_offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(PersistError::Corrupt("byte offsets not monotone"));
    }
    if byte_offsets[nodes] as usize != rank_bytes.len() {
        return Err(PersistError::Corrupt(
            "byte-offset array end != rank byte count",
        ));
    }
    for v in 0..nodes {
        let block = &rank_bytes[byte_offsets[v] as usize..byte_offsets[v + 1] as usize];
        let count = (offsets[v + 1] - offsets[v]) as usize;
        let mut pos = 0usize;
        // rank_{-1} = -1; rank_i = rank_{i-1} + gap_i + 1, tracked in u64
        // so a stream that would wrap u32 (breaking the strict ascent the
        // decoders assume) is caught here instead.
        let mut rank: u64 = u64::MAX; // wraps to gap_0 on the first add
        for _ in 0..count {
            let gap = try_read_varint(block, &mut pos)?;
            rank = rank.wrapping_add(gap as u64).wrapping_add(1);
            if rank > u32::MAX as u64 {
                return Err(PersistError::Corrupt("decoded hub rank exceeds u32"));
            }
        }
        // Ascent means only the block's last rank needs the bound check.
        if let Some(bound) = rank_bound {
            if count > 0 && rank >= bound as u64 {
                return Err(PersistError::Corrupt("hub rank exceeds node count"));
            }
        }
        if pos != block.len() {
            return Err(PersistError::Corrupt(
                "varint block longer than its entry count",
            ));
        }
    }
    Ok(())
}

/// Dictionary invariants: the value table strictly ascending by bit
/// pattern (finite, non-negative, deduplicated — bit order is numeric
/// order), the code plane at the canonical width for the table size, and
/// every code inside the table.
fn validate_dict(dict: &DistDict, entries: usize) -> Result<(), PersistError> {
    let table = &dict.table;
    // -0.0 is rejected too: its sign bit would break the sorted-by-bits
    // = sorted-numeric equivalence the encoder relies on.
    if table.iter().any(|d| !d.is_finite() || d.is_sign_negative()) {
        return Err(PersistError::Corrupt(
            "dictionary table value not finite and non-negative",
        ));
    }
    if table.windows(2).any(|w| w[0].to_bits() >= w[1].to_bits()) {
        return Err(PersistError::Corrupt(
            "dictionary table not strictly ascending",
        ));
    }
    let expected_width = if table.len() <= 1 << 8 {
        1
    } else if table.len() <= 1 << 16 {
        2
    } else {
        4
    };
    let (width, len, max_code) = match &dict.codes {
        CodePlane::U8(c) => (1, c.len(), c.iter().map(|&x| x as usize).max()),
        CodePlane::U16(c) => (2, c.len(), c.iter().map(|&x| x as usize).max()),
        CodePlane::U32(c) => (4, c.len(), c.iter().map(|&x| x as usize).max()),
    };
    if width != expected_width {
        return Err(PersistError::Corrupt(
            "code width not canonical for table size",
        ));
    }
    if len != entries {
        return Err(PersistError::Corrupt("code count != entry count"));
    }
    if let Some(max) = max_code {
        if max >= table.len() {
            return Err(PersistError::Corrupt("dictionary code out of range"));
        }
    }
    Ok(())
}

fn read_code_plane(cur: &mut Cursor<'_>) -> Result<CodePlane, PersistError> {
    match cur.u8()? {
        1 => Ok(CodePlane::U8(cur.u8_vec()?)),
        2 => Ok(CodePlane::U16(cur.u16_vec()?)),
        4 => Ok(CodePlane::U32(cur.u32_vec()?)),
        _ => Err(PersistError::Corrupt("unknown code width")),
    }
}

// ---------------------------------------------------------------------
// LabelStore serialization
// ---------------------------------------------------------------------

impl LabelStore {
    /// Serializes this store into the versioned on-disk byte format,
    /// stamping `graph_hash` (see [`graph_fingerprint`]) into the header
    /// fingerprint. The inverse of [`LabelStore::from_bytes`].
    pub fn to_bytes(&self, graph_hash: u64) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            LabelStore::Csr(l) => {
                put_u32_slice(&mut payload, &l.offsets);
                put_u32_slice(&mut payload, &l.hub_ranks);
                put_f64_slice(&mut payload, &l.dists);
            }
            LabelStore::Compressed(l) => {
                put_u32_slice(&mut payload, &l.offsets);
                put_u32_slice(&mut payload, &l.byte_offsets);
                put_u8_slice(&mut payload, &l.rank_bytes);
                put_f64_slice(&mut payload, &l.dists);
            }
            LabelStore::CsrDict(l) => {
                put_u32_slice(&mut payload, &l.offsets);
                put_u32_slice(&mut payload, &l.hub_ranks);
                put_dict(&mut payload, &l.dists);
            }
            LabelStore::CompressedDict(l) => {
                put_u32_slice(&mut payload, &l.offsets);
                put_u32_slice(&mut payload, &l.byte_offsets);
                put_u8_slice(&mut payload, &l.rank_bytes);
                put_dict(&mut payload, &l.dists);
            }
        }
        let stats = self.stats();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(self.storage() as u8);
        out.push(0); // reserved
        put_u64(&mut out, stats.nodes as u64);
        put_u64(&mut out, stats.total_entries as u64);
        put_u64(&mut out, graph_hash);
        put_u64(&mut out, payload.len() as u64);
        put_u64(&mut out, checksum(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a store from untrusted bytes, validating the header
    /// against the caller's snapshot (`expected_nodes`,
    /// `expected_graph_hash`) and every structural invariant of the
    /// stored backend before any decoder touches the data.
    ///
    /// Returns `Err` — never panics — on any malformed, truncated,
    /// corrupt, or stale input.
    pub fn from_bytes(
        bytes: &[u8],
        expected_nodes: usize,
        expected_graph_hash: u64,
    ) -> Result<LabelStore, PersistError> {
        Self::from_bytes_impl(bytes, expected_nodes, expected_graph_hash, false)
    }

    /// [`LabelStore::from_bytes`] plus, when `ranks_are_vertex_ranks`,
    /// the PLL-level invariant that every hub rank is `< nodes` —
    /// checked inside the single validation pass over the rank planes,
    /// so the load path never decodes the labels twice.
    pub(crate) fn from_bytes_impl(
        bytes: &[u8],
        expected_nodes: usize,
        expected_graph_hash: u64,
        ranks_are_vertex_ranks: bool,
    ) -> Result<LabelStore, PersistError> {
        let fp = SnapshotFingerprint::read_from_bytes(bytes)?;
        let (header, payload) = bytes.split_at(HEADER_LEN);
        let tag = header[6];
        let storage = *LabelStorage::ALL
            .get(tag as usize)
            .ok_or(PersistError::BadStorageTag(tag))?;
        if header[7] != 0 {
            return Err(PersistError::Corrupt("reserved header byte not zero"));
        }
        let mut h = Cursor::new(&header[32..]);
        let payload_len = h.u64()?;
        let stored_checksum = h.u64()?;

        if fp.nodes != expected_nodes as u64 {
            return Err(PersistError::StaleIndex {
                what: "nodes",
                expected: expected_nodes as u64,
                found: fp.nodes,
            });
        }
        if fp.graph_hash != expected_graph_hash {
            return Err(PersistError::StaleIndex {
                what: "graph hash",
                expected: expected_graph_hash,
                found: fp.graph_hash,
            });
        }
        // Offsets are u32, so both counts must fit.
        if fp.nodes >= u32::MAX as u64 || fp.entries > u32::MAX as u64 {
            return Err(PersistError::Corrupt("node or entry count exceeds u32"));
        }
        if payload_len != payload.len() as u64 {
            return Err(if payload_len > payload.len() as u64 {
                PersistError::Truncated
            } else {
                PersistError::Corrupt("trailing bytes after payload")
            });
        }
        if checksum(payload) != stored_checksum {
            return Err(PersistError::ChecksumMismatch);
        }

        let nodes = fp.nodes as usize;
        let entries = fp.entries as usize;
        let rank_bound = ranks_are_vertex_ranks.then_some(fp.nodes as u32);
        let mut cur = Cursor::new(payload);
        let store = match storage {
            LabelStorage::Csr => {
                let offsets = cur.u32_vec()?;
                let hub_ranks = cur.u32_vec()?;
                let dists = cur.f64_vec()?;
                cur.finish()?;
                if hub_ranks.len() != entries || dists.len() != entries {
                    return Err(PersistError::Corrupt("plane length != entry count"));
                }
                validate_offsets(&offsets, nodes, entries)?;
                validate_csr_ranks(&offsets, &hub_ranks, rank_bound)?;
                LabelStore::Csr(LabelSet {
                    offsets,
                    hub_ranks,
                    dists,
                })
            }
            LabelStorage::Compressed => {
                let offsets = cur.u32_vec()?;
                let byte_offsets = cur.u32_vec()?;
                let rank_bytes = cur.u8_vec()?;
                let dists = cur.f64_vec()?;
                cur.finish()?;
                if dists.len() != entries {
                    return Err(PersistError::Corrupt("plane length != entry count"));
                }
                validate_offsets(&offsets, nodes, entries)?;
                validate_varint_blocks(&offsets, &byte_offsets, &rank_bytes, nodes, rank_bound)?;
                LabelStore::Compressed(CompressedLabelSet {
                    offsets,
                    byte_offsets,
                    rank_bytes,
                    dists,
                })
            }
            LabelStorage::CsrDict => {
                let offsets = cur.u32_vec()?;
                let hub_ranks = cur.u32_vec()?;
                let table = cur.f64_vec()?;
                let codes = read_code_plane(&mut cur)?;
                cur.finish()?;
                if hub_ranks.len() != entries {
                    return Err(PersistError::Corrupt("plane length != entry count"));
                }
                validate_offsets(&offsets, nodes, entries)?;
                validate_csr_ranks(&offsets, &hub_ranks, rank_bound)?;
                let dists = DistDict { table, codes };
                validate_dict(&dists, entries)?;
                LabelStore::CsrDict(DictLabelSet {
                    offsets,
                    hub_ranks,
                    dists,
                })
            }
            LabelStorage::CompressedDict => {
                let offsets = cur.u32_vec()?;
                let byte_offsets = cur.u32_vec()?;
                let rank_bytes = cur.u8_vec()?;
                let table = cur.f64_vec()?;
                let codes = read_code_plane(&mut cur)?;
                cur.finish()?;
                validate_offsets(&offsets, nodes, entries)?;
                validate_varint_blocks(&offsets, &byte_offsets, &rank_bytes, nodes, rank_bound)?;
                let dists = DistDict { table, codes };
                validate_dict(&dists, entries)?;
                LabelStore::CompressedDict(CompressedDictLabelSet {
                    offsets,
                    byte_offsets,
                    rank_bytes,
                    dists,
                })
            }
        };
        Ok(store)
    }

    /// Saves this store to `path` as a versioned dump fingerprinted with
    /// `graph` (the graph the index was built from). The write goes
    /// through [`atomic_write`]: a uniquely-named sibling temp file
    /// (extension appended, pid + sequence suffixed — concurrent savers
    /// never share a temp path) and an atomic rename, so a crashed or
    /// racing save never leaves a half-written index at `path`.
    pub fn save_to(&self, path: &Path, graph: &ExpertGraph) -> Result<(), PersistError> {
        let bytes = self.to_bytes(graph_fingerprint(graph));
        atomic_write(path, &bytes).map_err(PersistError::Io)
    }

    /// Loads a store from `path`, rejecting files whose fingerprint does
    /// not match `graph` (see [`LabelStore::from_bytes`] for the
    /// validation guarantees).
    pub fn load_from(path: &Path, graph: &ExpertGraph) -> Result<LabelStore, PersistError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        LabelStore::from_bytes(&bytes, graph.num_nodes(), graph_fingerprint(graph))
    }

    /// [`LabelStore::save_to`] under a [`RetryPolicy`]: transient I/O
    /// failures are retried with capped backoff; structural failures
    /// cannot occur on save.
    pub fn save_to_with_retry(
        &self,
        path: &Path,
        graph: &ExpertGraph,
        retry: &RetryPolicy,
    ) -> Result<(), PersistError> {
        retry.run(|_| self.save_to(path, graph))
    }

    /// [`LabelStore::load_from`] under a [`RetryPolicy`]: transient I/O
    /// failures are retried with capped backoff; a stale, corrupt, or
    /// truncated file fails immediately (re-reading cannot fix bytes).
    pub fn load_from_with_retry(
        path: &Path,
        graph: &ExpertGraph,
        retry: &RetryPolicy,
    ) -> Result<LabelStore, PersistError> {
        retry.run(|_| LabelStore::load_from(path, graph))
    }
}

impl PrunedLandmarkLabeling {
    /// Persists this index to `path`; see [`LabelStore::save_to`].
    pub fn save_to(&self, path: &Path, graph: &ExpertGraph) -> Result<(), PersistError> {
        self.labels().save_to(path, graph)
    }

    /// Loads a previously saved index for `graph` from `path` — the fast
    /// half of the load-or-build cold start. On top of the store-level
    /// validation this requires every hub rank to be a valid vertex rank
    /// (`< num_nodes`), which is what lets [`SourceScatter`] scratch
    /// arrays stay direct-indexed and unchecked.
    ///
    /// The loaded index answers every query bit-identically to the build
    /// that produced the file; its build profile is empty and
    /// `build_time` reports the load wall time.
    ///
    /// [`SourceScatter`]: crate::scatter::SourceScatter
    pub fn load_from(
        path: &Path,
        graph: &ExpertGraph,
    ) -> Result<PrunedLandmarkLabeling, PersistError> {
        let start = Instant::now();
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        // The rank bound rides inside the one structural validation pass
        // — the load path never decodes the labels a second time.
        let store =
            LabelStore::from_bytes_impl(&bytes, graph.num_nodes(), graph_fingerprint(graph), true)?;
        Ok(PrunedLandmarkLabeling::from_loaded_store(
            store,
            start.elapsed(),
        ))
    }

    /// [`PrunedLandmarkLabeling::save_to`] under a [`RetryPolicy`] —
    /// see [`LabelStore::save_to_with_retry`].
    pub fn save_to_with_retry(
        &self,
        path: &Path,
        graph: &ExpertGraph,
        retry: &RetryPolicy,
    ) -> Result<(), PersistError> {
        retry.run(|_| self.save_to(path, graph))
    }

    /// [`PrunedLandmarkLabeling::load_from`] under a [`RetryPolicy`] —
    /// see [`LabelStore::load_from_with_retry`]. This is the load half
    /// used by both the `DiscoveryOptions::pll_index_path` cold start
    /// and the background snapshot-swap thread in `atd-serve`.
    pub fn load_from_with_retry(
        path: &Path,
        graph: &ExpertGraph,
        retry: &RetryPolicy,
    ) -> Result<PrunedLandmarkLabeling, PersistError> {
        retry.run(|_| PrunedLandmarkLabeling::load_from(path, graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelEntry;

    fn e(hub_rank: u32, dist: f64) -> LabelEntry {
        LabelEntry { hub_rank, dist }
    }

    fn lists() -> Vec<Vec<LabelEntry>> {
        vec![
            vec![e(0, 0.25), e(1, 1.5), e(3, 2.0)],
            vec![],
            vec![e(2, 0.25), e(3, 1.5)],
        ]
    }

    fn stores() -> Vec<LabelStore> {
        let l = lists();
        vec![
            LabelStore::from(LabelSet::from_lists(&l)),
            LabelStore::from(CompressedLabelSet::from_lists(&l)),
            LabelStore::from(DictLabelSet::from_lists(&l)),
            LabelStore::from(CompressedDictLabelSet::from_lists(&l)),
        ]
    }

    const HASH: u64 = 0xfeed_f00d;

    #[test]
    fn roundtrips_every_backend_bit_identically() {
        for store in stores() {
            let bytes = store.to_bytes(HASH);
            let loaded = LabelStore::from_bytes(&bytes, store.num_nodes(), HASH)
                .unwrap_or_else(|err| panic!("{:?}: {err}", store.storage()));
            assert_eq!(loaded.storage(), store.storage());
            assert_eq!(loaded.stats(), store.stats());
            for v in 0..store.num_nodes() {
                let a: Vec<LabelEntry> = store.entries(v).collect();
                let b: Vec<LabelEntry> = loaded.entries(v).collect();
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.hub_rank, y.hub_rank);
                    assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                }
            }
        }
    }

    #[test]
    fn stale_fingerprints_are_rejected() {
        let store = &stores()[0];
        let bytes = store.to_bytes(HASH);
        assert!(matches!(
            LabelStore::from_bytes(&bytes, store.num_nodes(), HASH + 1),
            Err(PersistError::StaleIndex {
                what: "graph hash",
                ..
            })
        ));
        assert!(matches!(
            LabelStore::from_bytes(&bytes, store.num_nodes() + 1, HASH),
            Err(PersistError::StaleIndex { what: "nodes", .. })
        ));
    }

    #[test]
    fn graph_fingerprint_tracks_edges_and_weights() {
        use atd_graph::GraphBuilder;
        let build = |w: f64, extra: bool| {
            let mut b = GraphBuilder::new();
            let u = b.add_node(1.0);
            let v = b.add_node(2.0);
            let x = b.add_node(3.0);
            b.add_edge(u, v, w).unwrap();
            if extra {
                b.add_edge(v, x, 1.0).unwrap();
            }
            b.build().unwrap()
        };
        let base = graph_fingerprint(&build(0.5, false));
        assert_eq!(base, graph_fingerprint(&build(0.5, false)), "deterministic");
        assert_ne!(base, graph_fingerprint(&build(0.75, false)), "weight");
        assert_ne!(base, graph_fingerprint(&build(0.5, true)), "topology");
    }

    #[test]
    fn header_fingerprint_matches_snapshot_fingerprint_of() {
        use atd_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let u = b.add_node(1.0);
        let v = b.add_node(2.0);
        b.add_edge(u, v, 0.5).unwrap();
        let g = b.build().unwrap();
        let store = LabelStore::from(LabelSet::from_lists(&[vec![e(0, 0.0)], vec![e(0, 0.5)]]));
        let bytes = store.to_bytes(graph_fingerprint(&g));
        let read = SnapshotFingerprint::read_from_bytes(&bytes).unwrap();
        assert_eq!(read, SnapshotFingerprint::of(&g, &store));
        assert_eq!(read.nodes, 2);
        assert_eq!(read.entries, 2);
        assert!(matches!(
            SnapshotFingerprint::read_from_bytes(&bytes[..HEADER_LEN - 1]),
            Err(PersistError::Truncated)
        ));
    }

    #[test]
    fn empty_stores_roundtrip() {
        for store in [
            LabelStore::from(LabelSet::new(0)),
            LabelStore::from(LabelSet::new(3)),
            LabelStore::from(CompressedLabelSet::new(3)),
            LabelStore::from(DictLabelSet::from_lists(&[vec![], vec![]])),
            LabelStore::from(CompressedDictLabelSet::from_lists(&[vec![]])),
        ] {
            let bytes = store.to_bytes(0);
            let loaded = LabelStore::from_bytes(&bytes, store.num_nodes(), 0).expect("roundtrip");
            assert_eq!(loaded.stats(), store.stats());
        }
    }

    fn io_err() -> PersistError {
        PersistError::Io(std::io::Error::other("disk hiccup"))
    }

    #[test]
    fn only_io_errors_are_transient() {
        assert!(io_err().is_transient());
        for e in [
            PersistError::BadMagic,
            PersistError::UnsupportedVersion(9),
            PersistError::BadStorageTag(7),
            PersistError::ChecksumMismatch,
            PersistError::Truncated,
            PersistError::Corrupt("x"),
        ] {
            assert!(!e.is_transient(), "{e}");
        }
    }

    #[test]
    fn retry_recovers_from_transient_failures_with_backoff() {
        let policy = RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(25),
        };
        let mut slept = Vec::new();
        let result = policy.run_with_sleep(
            |attempt| {
                if attempt < 3 {
                    Err(io_err())
                } else {
                    Ok(attempt)
                }
            },
            |d| slept.push(d),
        );
        assert_eq!(result.unwrap(), 3, "third attempt succeeds");
        // Exponential, capped: 10 ms, then 20 ms (2^1·10), cap 25 never hit.
        assert_eq!(
            slept,
            vec![Duration::from_millis(10), Duration::from_millis(20)]
        );
    }

    #[test]
    fn retry_caps_backoff_and_gives_up_after_attempts() {
        let policy = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(15),
        };
        let mut slept = Vec::new();
        let mut calls = 0u32;
        let result: Result<(), _> = policy.run_with_sleep(
            |_| {
                calls += 1;
                Err(io_err())
            },
            |d| slept.push(d),
        );
        assert!(result.is_err());
        assert_eq!(calls, 5, "every attempt consumed");
        assert_eq!(slept.len(), 4, "no sleep after the final failure");
        // 10, then capped at 15 forever.
        assert_eq!(slept[0], Duration::from_millis(10));
        for &d in &slept[1..] {
            assert_eq!(d, Duration::from_millis(15));
        }
    }

    #[test]
    fn retry_does_not_retry_structural_errors() {
        let mut calls = 0u32;
        let result: Result<(), _> = RetryPolicy::default().run_with_sleep(
            |_| {
                calls += 1;
                Err(PersistError::ChecksumMismatch)
            },
            |_| panic!("structural errors must not sleep"),
        );
        assert!(matches!(result, Err(PersistError::ChecksumMismatch)));
        assert_eq!(calls, 1, "corrupt bytes are not retried");
    }

    #[test]
    fn retry_none_is_a_single_attempt() {
        let mut calls = 0u32;
        let result: Result<(), _> = RetryPolicy::none().run_with_sleep(
            |_| {
                calls += 1;
                Err(io_err())
            },
            |_| panic!("no sleeping"),
        );
        assert!(result.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn load_with_retry_survives_missing_then_present_file() {
        // End-to-end: the file "appears" between attempts (as when a
        // concurrent save's rename lands), and the retried load succeeds.
        use atd_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let u = b.add_node(1.0);
        let v = b.add_node(2.0);
        b.add_edge(u, v, 0.5).unwrap();
        let g = b.build().unwrap();
        let store = LabelStore::from(LabelSet::from_lists(&[vec![e(0, 0.0)], vec![e(0, 0.5)]]));
        let dir = std::env::temp_dir().join(format!("atd_retry_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("late.atdl");
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
        };
        let mut sleeps = 0u32;
        let loaded = policy
            .run_with_sleep(
                |_| {
                    let r = LabelStore::load_from(&path, &g);
                    if r.is_err() {
                        // Save so the *next* attempt sees the file.
                        store.save_to(&path, &g).unwrap();
                    }
                    r
                },
                |_| sleeps += 1,
            )
            .expect("second attempt loads");
        assert_eq!(sleeps, 1);
        assert_eq!(loaded.stats(), store.stats());
        std::fs::remove_dir_all(&dir).ok();
    }
}
