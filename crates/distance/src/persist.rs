//! Versioned on-disk persistence for the hub-label index.
//!
//! The paper's query engine is only fast because the 2-hop cover is
//! already built — yet every process start used to pay a full PLL
//! construction. All four [`LabelStore`] backends are flat arrays plus at
//! most one dictionary table, so a built index serializes to a
//! straightforward little-endian dump that loads orders of magnitude
//! faster than even the parallel rebuild (`O(index bytes)` instead of
//! `O(graph rebuild)` — see `BENCH_pr5.json` and the cold-start section
//! of the README).
//!
//! The format is defensive because a loaded file is the **first untrusted
//! byte stream** the label decoders ever see. The header carries a magic,
//! a format version, the storage tag, a snapshot fingerprint (node count,
//! entry count, and a hash of the graph's edge/weight stream) so stale
//! indexes are rejected, and an FNV-1a checksum over the payload.
//! Loading validates every structural invariant the unchecked hot-path
//! decoders rely on — offsets monotone and in range, varint blocks
//! well-formed (via the checked decoder in `codec.rs`), dictionary codes
//! inside the table — and returns [`PersistError`], **never panics**, on
//! any malformed input. See `crates/distance/src/README.md` for the
//! byte-level format specification.
//!
//! Format **v2** lays every plane out 8-byte-aligned (length-prefixed,
//! zero-padded, with a leading `max_rank` word and a word-lane payload
//! checksum) so that [`LabelStore::load_mmap`] /
//! [`PrunedLandmarkLabeling::load_mmap`] can memory-map a file and
//! borrow the planes in place — zero decode, zero copy, bit-identical
//! queries ([`IndexLoadMode`] selects between the two load paths).
//! v1 files remain readable through the owned decode path.
//!
//! Typical use is the load-or-build cold start
//! (`DiscoveryOptions::pll_index_path` in `atd-core` wires this up
//! end-to-end):
//!
//! ```
//! use atd_distance::{LabelStore, PrunedLandmarkLabeling, VertexOrder};
//! use atd_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! let u = b.add_node(1.0);
//! let v = b.add_node(2.0);
//! b.add_edge(u, v, 0.5).unwrap();
//! let g = b.build().unwrap();
//!
//! let built = PrunedLandmarkLabeling::build(&g);
//! let path = std::env::temp_dir().join("atd-doctest-index.atdl");
//! built.save_to(&path, &g).unwrap();
//! let loaded = PrunedLandmarkLabeling::load_from(&path, &g).unwrap();
//! // Bit-identical labels, hence bit-identical queries.
//! for n in 0..g.num_nodes() {
//!     assert!(built
//!         .labels()
//!         .entries(n)
//!         .eq(loaded.labels().entries(n)));
//! }
//! std::fs::remove_file(&path).unwrap();
//! ```

use std::fmt;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use atd_graph::ExpertGraph;

use crate::codec::{try_read_varint, CompressedLabelSet, LabelStorage, LabelStore, VarintError};
use crate::dict::{CodePlane, CompressedDictLabelSet, DictLabelSet, DistDict};
use crate::label::LabelSet;
use crate::mmap::MmapRegion;
use crate::plane::{Plane, PlanePod};
use crate::pll::PrunedLandmarkLabeling;

/// File magic, the first four bytes of every index dump.
pub const MAGIC: [u8; 4] = *b"ATDL";

/// Current on-disk format version: 8-byte-aligned planes and a word-lane
/// checksum, the layout [`LabelStore::load_mmap`] borrows in place.
pub const FORMAT_VERSION: u16 = 2;

/// The unaligned byte-packed v1 layout. Still readable (decoded into
/// owned storage, never borrowed); no longer written except by the
/// hidden legacy writer the compatibility tests use.
pub const LEGACY_FORMAT_VERSION: u16 = 1;

/// Fixed header length in bytes (see the format spec in
/// `crates/distance/src/README.md`). A multiple of 8, so v2 payload
/// offsets are file offsets modulo alignment.
pub const HEADER_LEN: usize = 48;

/// How `DiscoveryOptions::pll_index_path`-style cold starts materialize
/// a persisted index in memory.
///
/// Both modes produce bit-identical query results; they differ only in
/// where the label planes live and what loading costs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum IndexLoadMode {
    /// Decode the file into owned `Vec` planes
    /// ([`PrunedLandmarkLabeling::load_from`]), running the full
    /// structural validation suite. Portable, defensive, `O(payload)`
    /// decode work.
    #[default]
    Owned,
    /// Memory-map the file and borrow every plane straight from the page
    /// cache ([`PrunedLandmarkLabeling::load_mmap`]) — zero decode, zero
    /// copy for format-v2 files. Validation is the payload checksum plus
    /// `O(nodes)` metadata checks; v1 files fall back to the owned
    /// decode path. First-touch page-ins are charged to queries instead
    /// of load time.
    Mmap,
}

/// Why a save or load failed.
///
/// Every decode-side failure mode is a variant here: loading **returns**
/// these — it never panics, whatever the bytes are (enforced by
/// `tests/proptest_persist.rs`, which flips and truncates files
/// exhaustively).
#[derive(Debug)]
pub enum PersistError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not an index dump.
    BadMagic,
    /// The file's format version is newer than [`FORMAT_VERSION`] (or
    /// zero) — this build reads versions 1 and 2 only.
    UnsupportedVersion(u16),
    /// The header's storage tag names no known [`LabelStorage`] backend.
    BadStorageTag(u8),
    /// The snapshot fingerprint does not match the graph the caller
    /// supplied — the index was built from a different (stale) snapshot.
    StaleIndex {
        /// Which fingerprint component mismatched (`"nodes"` or
        /// `"graph hash"`).
        what: &'static str,
        /// The value derived from the caller's graph.
        expected: u64,
        /// The value stored in the file.
        found: u64,
    },
    /// The payload checksum does not match the header — bit rot or a
    /// partial write.
    ChecksumMismatch,
    /// The file ended before the structure it promised was complete.
    Truncated,
    /// A structural invariant of the label encoding does not hold; the
    /// message names the violated invariant.
    Corrupt(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index file I/O failed: {e}"),
            PersistError::BadMagic => write!(f, "not an ATDL index file (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported index format version {v} (this build reads \
                     {LEGACY_FORMAT_VERSION}..={FORMAT_VERSION})"
                )
            }
            PersistError::BadStorageTag(t) => write!(f, "unknown label storage tag {t}"),
            PersistError::StaleIndex {
                what,
                expected,
                found,
            } => write!(
                f,
                "stale index: {what} mismatch (graph has {expected:#x}, file has {found:#x})"
            ),
            PersistError::ChecksumMismatch => write!(f, "index payload checksum mismatch"),
            PersistError::Truncated => write!(f, "index file truncated"),
            PersistError::Corrupt(what) => write!(f, "corrupt index: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<VarintError> for PersistError {
    fn from(e: VarintError) -> Self {
        match e {
            VarintError::Truncated => PersistError::Corrupt("varint block truncated"),
            VarintError::Overflow => PersistError::Corrupt("varint does not fit u32"),
        }
    }
}

impl PersistError {
    /// Whether retrying the same operation could plausibly succeed.
    ///
    /// Only raw I/O failures are transient (a saturated disk, a
    /// momentarily unavailable network mount, an interrupted syscall).
    /// Every structural failure — bad magic, stale fingerprint, checksum
    /// mismatch, corruption — is a property of the *bytes*, so retrying
    /// the read would just decode the same bytes again.
    pub fn is_transient(&self) -> bool {
        matches!(self, PersistError::Io(_))
    }
}

/// Bounded retry with capped exponential backoff for transient
/// persistence I/O.
///
/// Snapshot files are read and written by long-lived services (the
/// load-or-build cold start, the background snapshot-swap thread in
/// `atd-serve`), where a single `EINTR`/`EAGAIN`-class hiccup should not
/// abort a swap or force a full index rebuild. The policy retries **only**
/// failures where [`PersistError::is_transient`] holds; structural errors
/// (stale, corrupt, truncated) fail immediately — re-reading corrupt
/// bytes cannot fix them.
///
/// The sleep between attempts doubles from [`base_delay`] and is capped
/// at [`max_delay`]. Tests inject a recording clock via
/// [`RetryPolicy::run_with_sleep`], so no test ever actually sleeps.
///
/// [`base_delay`]: RetryPolicy::base_delay
/// [`max_delay`]: RetryPolicy::max_delay
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retry).
    pub attempts: u32,
    /// Sleep before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Upper bound on any single sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 10 ms → 20 ms backoff (capped at 200 ms).
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — one attempt, no sleeping.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The backoff slept **after** failed attempt number `attempt`
    /// (1-based): `base_delay · 2^(attempt−1)`, capped at `max_delay`.
    pub fn delay_after(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(20);
        self.base_delay
            .saturating_mul(factor)
            .min(self.max_delay)
            .max(self.base_delay.min(self.max_delay))
    }

    /// Runs `op` under this policy, sleeping with [`std::thread::sleep`]
    /// between attempts. `op` receives the 1-based attempt number.
    pub fn run<T>(
        &self,
        op: impl FnMut(u32) -> Result<T, PersistError>,
    ) -> Result<T, PersistError> {
        self.run_with_sleep(op, std::thread::sleep)
    }

    /// [`RetryPolicy::run`] with an injectable clock: `sleep` is called
    /// with each backoff delay, letting tests record the schedule
    /// instead of waiting it out.
    pub fn run_with_sleep<T>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, PersistError>,
        mut sleep: impl FnMut(Duration),
    ) -> Result<T, PersistError> {
        let attempts = self.attempts.max(1);
        for attempt in 1..=attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < attempts => {
                    sleep(self.delay_after(attempt));
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the final attempt")
    }
}

/// The identity of the snapshot an index was built from, stored in the
/// header so a loaded index is provably the index **of this graph**:
/// node count, label entry count, and a hash of the graph's edge/weight
/// stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotFingerprint {
    /// Indexed node count.
    pub nodes: u64,
    /// Total label entries across all nodes.
    pub entries: u64,
    /// [`graph_fingerprint`] of the edge/weight stream.
    pub graph_hash: u64,
}

impl SnapshotFingerprint {
    /// The fingerprint [`LabelStore::save_to`] writes for `store` built
    /// from `graph`.
    pub fn of(graph: &ExpertGraph, store: &LabelStore) -> SnapshotFingerprint {
        SnapshotFingerprint {
            nodes: store.num_nodes() as u64,
            entries: store.stats().total_entries as u64,
            graph_hash: graph_fingerprint(graph),
        }
    }

    /// Reads the fingerprint out of a dump's header without parsing (or
    /// even reading) the payload — identifies which snapshot a file
    /// belongs to without needing the graph, e.g. for ops tooling
    /// deciding which of several cached indexes to load.
    pub fn read_from_bytes(bytes: &[u8]) -> Result<SnapshotFingerprint, PersistError> {
        if bytes.len() < HEADER_LEN {
            return Err(PersistError::Truncated);
        }
        if bytes[0..4] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        if !(LEGACY_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        Ok(SnapshotFingerprint {
            nodes: u64_at(8),
            entries: u64_at(16),
            graph_hash: u64_at(24),
        })
    }

    /// [`SnapshotFingerprint::read_from_bytes`] over a file's first
    /// [`HEADER_LEN`] bytes.
    pub fn read_from(path: &Path) -> Result<SnapshotFingerprint, PersistError> {
        let mut header = [0u8; HEADER_LEN];
        let mut f = std::fs::File::open(path)?;
        f.read_exact(&mut header)
            .map_err(|_| PersistError::Truncated)?;
        SnapshotFingerprint::read_from_bytes(&header)
    }
}

/// FNV-1a 64-bit accumulator — the format's hash for both the graph
/// fingerprint and the payload checksum. Not cryptographic; it guards
/// against stale snapshots and bit rot, not adversarial collisions.
struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Word-at-a-time absorption: one xor + multiply per `u64` instead
    /// of eight. Distinct from (and incompatible with) the byte-wise
    /// [`write`](Self::write) — used where the hash is only ever
    /// compared against values computed by this same code (the graph
    /// fingerprint, the v2 checksum fold), never against a byte stream.
    #[inline]
    fn absorb_u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }
}

/// Hash of a graph's edge/weight stream (node count, edge count, then
/// every undirected edge as `(u, v, weight bits)` in canonical order) —
/// the staleness check of the on-disk header. Any change to topology or
/// weights changes this value.
///
/// Memoized per graph instance (the graph is immutable after
/// construction): the first call hashes the CSR arrays, later calls on
/// the same instance are a load. The hash sits on every index load —
/// owned and zero-copy — and on every durable journal append, so both
/// the first computation and the repeat lookups matter.
pub fn graph_fingerprint(g: &ExpertGraph) -> u64 {
    g.fingerprint_or_init(compute_graph_fingerprint)
}

fn compute_graph_fingerprint(g: &ExpertGraph) -> u64 {
    // Word-at-a-time FNV lanes straight over the canonical CSR arrays
    // (offsets, targets, weights each hashed separately), folded at
    // the end. The arrays fully determine topology and weights, and the
    // builder's layout is canonical, so two equal graphs always hash
    // equal. The fingerprint sits on every load path — including the
    // zero-copy one, where the old per-edge iterator walk would be a
    // large fraction of the total — and on every durable append, so
    // branch-free bulk absorption matters. The value is always
    // recomputed by this same code before comparison, never parsed from
    // foreign bytes.
    // Each array is absorbed through four interleaved lanes (element i
    // goes to lane i mod 4) so the xor-multiply recurrences of adjacent
    // elements are independent and pipeline past the multiplier's
    // latency; a single lane per array is latency-bound at ~3 cycles
    // per element.
    #[inline]
    fn striped<T: Copy>(vals: &[T], to: impl Fn(T) -> u64) -> u64 {
        let mut lanes = [Fnv64::new(), Fnv64::new(), Fnv64::new(), Fnv64::new()];
        let mut chunks = vals.chunks_exact(4);
        for c in &mut chunks {
            lanes[0].absorb_u64(to(c[0]));
            lanes[1].absorb_u64(to(c[1]));
            lanes[2].absorb_u64(to(c[2]));
            lanes[3].absorb_u64(to(c[3]));
        }
        for (lane, &v) in lanes.iter_mut().zip(chunks.remainder()) {
            lane.absorb_u64(to(v));
        }
        let mut h = Fnv64::new();
        for lane in lanes {
            h.absorb_u64(lane.0);
        }
        h.0
    }
    let (offsets, targets, weights) = g.csr_parts();
    let ho = striped(offsets, |o| o as u64);
    let ht = striped(targets, |t| t.index() as u64);
    let hw = striped(weights, |w| w.to_bits());
    let mut h = Fnv64::new();
    h.absorb_u64(g.num_nodes() as u64);
    h.absorb_u64(g.num_edges() as u64);
    h.absorb_u64(ho);
    h.absorb_u64(ht);
    h.absorb_u64(hw);
    h.0
}

/// The checksum format v2 stores over its payload bytes: eight
/// interleaved lanes over 512-byte blocks, each lane absorbing eight
/// little-endian `u64` words — one through the FNV xor-multiply step,
/// seven through xor at distinct rotations — folded together with the
/// tail bytes and the payload length through the FNV step. The v1
/// checksum pays one multiply per *byte*; this pays one per 64 bytes
/// per lane, which takes the mmap load path's single full-payload pass
/// from multiply-throughput bound to memory-bandwidth bound. Every
/// absorption is bijective in the lane state, so corrupting any single
/// byte (or truncating anywhere) changes the final value
/// deterministically — the property the corruption suite drives
/// byte-by-byte; multi-byte bit rot is caught with high probability
/// (this is an integrity code, not a cryptographic hash). Public so
/// external tooling — and the corruption tests — can re-seal a patched
/// payload and exercise the structural validation behind it.
pub fn checksum(payload: &[u8]) -> u64 {
    #[inline(always)]
    fn word(block: &[u8], at: usize) -> u64 {
        u64::from_le_bytes(block[at..at + 8].try_into().expect("8-byte word"))
    }
    let mut lanes = [Fnv64::OFFSET; 8];
    let mut blocks = payload.chunks_exact(512);
    for block in &mut blocks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let base = i * 64;
            *lane = (*lane ^ word(block, base)).wrapping_mul(Fnv64::PRIME)
                ^ word(block, base + 8).rotate_left(5)
                ^ word(block, base + 16).rotate_left(13)
                ^ word(block, base + 24).rotate_left(21)
                ^ word(block, base + 32).rotate_left(29)
                ^ word(block, base + 40).rotate_left(37)
                ^ word(block, base + 48).rotate_left(45)
                ^ word(block, base + 56).rotate_left(53);
        }
    }
    let mut tail = Fnv64::new();
    tail.write(blocks.remainder());
    let mut h = Fnv64::new();
    for lane in lanes {
        h.absorb_u64(lane);
    }
    h.absorb_u64(tail.0);
    h.absorb_u64(payload.len() as u64);
    h.0
}

/// The byte-wise FNV-1a-64 checksum format v1 stored; kept so legacy
/// files still verify (and so the hidden v1 writer can seal them).
fn checksum_v1(payload: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(payload);
    h.0
}

// ---------------------------------------------------------------------
// Atomic file publication + orphaned-temp sweep
// ---------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: the data first lands in a
/// uniquely-named sibling temp file (`<name>.tmp.<pid>.<seq>` — pid plus
/// a process-wide sequence counter, so concurrent savers never share a
/// temp path), is fsynced, and is then renamed over `path`. A crash or
/// racing writer never leaves a half-written file at `path`; at worst it
/// orphans a temp file, which [`sweep_orphaned_tmp`] reclaims on the
/// next startup.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Returns `Some(pid)` when `name` is an orphaned-temp name for any final
/// file (`<base>.tmp.<pid>.<seq>` with all-digit pid and seq), i.e. the
/// naming scheme used by [`atomic_write`] and [`LabelStore::save_to`].
fn parse_tmp_pid(name: &str) -> Option<u32> {
    let (rest, seq) = name.rsplit_once('.')?;
    if seq.is_empty() || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let (rest, pid) = rest.rsplit_once('.')?;
    if !rest.ends_with(".tmp") || pid.is_empty() {
        return None;
    }
    pid.parse().ok()
}

/// True when the writer process that owns a temp file can be ruled dead.
/// Our own pid is always considered live (another thread may be mid-save);
/// other pids are probed via `/proc` on Linux. On platforms without
/// `/proc` the check is conservative: foreign temp files are left alone.
fn tmp_owner_is_dead(pid: u32) -> bool {
    if pid == std::process::id() {
        return false;
    }
    #[cfg(target_os = "linux")]
    {
        !Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Removes orphaned temp files that a crashed writer left next to the
/// final file at `path` (the `<name>.tmp.<pid>.<seq>` siblings produced
/// by [`atomic_write`] between temp-write and rename). Only files whose
/// name extends `path`'s own file name are considered, and only when the
/// owning pid is provably dead — live writers in this or another process
/// are never raced. Returns how many files were removed; IO errors while
/// scanning are swallowed (the sweep is best-effort hygiene, never a
/// reason to fail a load).
pub fn sweep_orphaned_tmp(path: &Path) -> usize {
    let Some(dir) = path.parent() else {
        return 0;
    };
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    let Some(base) = path.file_name().and_then(|n| n.to_str()) else {
        return 0;
    };
    sweep_dir_with(dir, |name| {
        name.strip_prefix(base)
            .filter(|rest| rest.starts_with(".tmp."))
            .is_some()
    })
}

/// Removes every provably-orphaned `*.tmp.<pid>.<seq>` file directly
/// inside `dir`, regardless of which final file it was destined for.
/// Same safety rules as [`sweep_orphaned_tmp`]; used by stores that own
/// a whole directory rather than a single index path.
pub fn sweep_orphaned_tmp_dir(dir: &Path) -> usize {
    sweep_dir_with(dir, |_| true)
}

fn sweep_dir_with(dir: &Path, applies: impl Fn(&str) -> bool) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !applies(name) {
            continue;
        }
        let Some(pid) = parse_tmp_pid(name) else {
            continue;
        };
        if tmp_owner_is_dead(pid) && std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

// ---------------------------------------------------------------------
// Payload writer
// ---------------------------------------------------------------------

/// Serializes planes as `[len: u64][data]`, zero-padding each plane's
/// data to the next 8-byte boundary when `aligned` (format v2 — what
/// lets the mmap loader reinterpret planes in place). With `aligned`
/// off it reproduces the byte-packed v1 layout exactly.
struct PayloadWriter {
    out: Vec<u8>,
    aligned: bool,
}

impl PayloadWriter {
    fn new(aligned: bool) -> PayloadWriter {
        PayloadWriter {
            out: Vec::new(),
            aligned,
        }
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Pads to the next 8-byte payload boundary (v2 only). The header is
    /// itself [`HEADER_LEN`] = 48 bytes, so payload-relative alignment
    /// is absolute file alignment.
    fn pad(&mut self) {
        if self.aligned {
            while !self.out.len().is_multiple_of(8) {
                self.out.push(0);
            }
        }
    }

    fn u32_slice(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.out.extend_from_slice(&x.to_le_bytes());
        }
        self.pad();
    }

    fn u16_slice(&mut self, v: &[u16]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.out.extend_from_slice(&x.to_le_bytes());
        }
        self.pad();
    }

    fn u8_slice(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.out.extend_from_slice(v);
        self.pad();
    }

    fn f64_slice(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        self.pad();
    }

    fn dict(&mut self, dict: &DistDict) {
        self.f64_slice(&dict.table);
        let width: u8 = match &dict.codes {
            CodePlane::U8(_) => 1,
            CodePlane::U16(_) => 2,
            CodePlane::U32(_) => 4,
        };
        // v1 spent a single byte on the code width; v2 spends a whole
        // word so the code plane's length prefix stays aligned.
        if self.aligned {
            self.u64(width as u64);
        } else {
            self.out.push(width);
        }
        match &dict.codes {
            CodePlane::U8(c) => self.u8_slice(c),
            CodePlane::U16(c) => self.u16_slice(c),
            CodePlane::U32(c) => self.u32_slice(c),
        }
    }
}

// ---------------------------------------------------------------------
// Payload reader (bounds-checked cursor over untrusted bytes)
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Format v2: every plane's data is zero-padded to the next 8-byte
    /// boundary, skipped (and checked) after each slice read.
    aligned: bool,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], aligned: bool) -> Cursor<'a> {
        Cursor {
            buf,
            pos: 0,
            aligned,
        }
    }

    /// Consumes the zero padding a v2 writer emitted after a plane; a
    /// nonzero pad byte means the file was not produced by our writer.
    fn skip_pad(&mut self) -> Result<(), PersistError> {
        if self.aligned && !self.pos.is_multiple_of(8) {
            let pad = self.bytes(8 - self.pos % 8)?;
            if pad.iter().any(|&b| b != 0) {
                return Err(PersistError::Corrupt("nonzero plane padding byte"));
            }
        }
        Ok(())
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.buf.len() {
            return Err(PersistError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.bytes(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a length prefix, refusing counts the remaining bytes cannot
    /// possibly hold — a malicious length field must fail *before* any
    /// allocation, not OOM on it.
    fn len_prefix(&mut self, elem_size: usize) -> Result<usize, PersistError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(elem_size as u64)
            .ok_or(PersistError::Truncated)?
            > remaining
        {
            return Err(PersistError::Truncated);
        }
        Ok(n as usize)
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, PersistError> {
        let n = self.len_prefix(4)?;
        let raw = self.bytes(n * 4)?;
        let v = raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        self.skip_pad()?;
        Ok(v)
    }

    fn u16_vec(&mut self) -> Result<Vec<u16>, PersistError> {
        let n = self.len_prefix(2)?;
        let raw = self.bytes(n * 2)?;
        let v = raw
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().expect("2-byte chunk")))
            .collect();
        self.skip_pad()?;
        Ok(v)
    }

    fn u8_vec(&mut self) -> Result<Vec<u8>, PersistError> {
        let n = self.len_prefix(1)?;
        let v = self.bytes(n)?.to_vec();
        self.skip_pad()?;
        Ok(v)
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.len_prefix(8)?;
        let raw = self.bytes(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
            .collect())
    }

    fn finish(&self) -> Result<(), PersistError> {
        if self.pos != self.buf.len() {
            return Err(PersistError::Corrupt("trailing bytes after payload"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Structural validation
// ---------------------------------------------------------------------

/// Entry-offset invariants every backend shares: `nodes + 1` values,
/// starting at 0, monotone nondecreasing, ending at `entries`.
fn validate_offsets(offsets: &[u32], nodes: usize, entries: usize) -> Result<(), PersistError> {
    if offsets.len() != nodes + 1 {
        return Err(PersistError::Corrupt("offset array length != nodes + 1"));
    }
    if offsets[0] != 0 {
        return Err(PersistError::Corrupt("offset array does not start at 0"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(PersistError::Corrupt("entry offsets not monotone"));
    }
    if offsets[offsets.len() - 1] as usize != entries {
        return Err(PersistError::Corrupt("offset array end != entry count"));
    }
    Ok(())
}

/// Flat-rank invariant: strictly ascending hub ranks within every node's
/// slice (what the merge-join and scatter scans rely on). Returns the
/// maximum rank seen (`None` when there are no entries) — ascent means
/// only each slice's last rank competes — so the caller can enforce the
/// vertex-rank bound and the v2 `max_rank` header field in the same
/// pass.
fn validate_csr_ranks(offsets: &[u32], ranks: &[u32]) -> Result<Option<u32>, PersistError> {
    let mut max: Option<u32> = None;
    for v in 0..offsets.len() - 1 {
        let slice = &ranks[offsets[v] as usize..offsets[v + 1] as usize];
        if slice.windows(2).any(|w| w[0] >= w[1]) {
            return Err(PersistError::Corrupt(
                "hub ranks not strictly ascending within a node",
            ));
        }
        if let Some(&last) = slice.last() {
            max = Some(max.map_or(last, |m| m.max(last)));
        }
    }
    Ok(max)
}

/// Byte-offset invariants of the varint backends: `nodes + 1` values,
/// starting at 0, monotone nondecreasing, ending at the byte-stream
/// length. `O(nodes)` with no decoding — this is the part of the varint
/// validation the zero-copy load path keeps.
fn validate_byte_offsets(
    byte_offsets: &[u32],
    nodes: usize,
    rank_bytes_len: usize,
) -> Result<(), PersistError> {
    if byte_offsets.len() != nodes + 1 {
        return Err(PersistError::Corrupt(
            "byte-offset array length != nodes + 1",
        ));
    }
    if byte_offsets[0] != 0 {
        return Err(PersistError::Corrupt(
            "byte-offset array does not start at 0",
        ));
    }
    if byte_offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(PersistError::Corrupt("byte offsets not monotone"));
    }
    if byte_offsets[nodes] as usize != rank_bytes_len {
        return Err(PersistError::Corrupt(
            "byte-offset array end != rank byte count",
        ));
    }
    Ok(())
}

/// Varint-block invariants: byte offsets monotone and in range, every
/// block holding exactly one well-formed varint per entry, consuming
/// exactly its bytes, and decoding to ranks that ascend strictly without
/// wrapping `u32`. Runs the checked decoder — the unchecked hot-path
/// form is only ever fed blocks that passed here. Returns the maximum
/// decoded rank, as [`validate_csr_ranks`] does.
fn validate_varint_blocks(
    offsets: &[u32],
    byte_offsets: &[u32],
    rank_bytes: &[u8],
    nodes: usize,
) -> Result<Option<u32>, PersistError> {
    validate_byte_offsets(byte_offsets, nodes, rank_bytes.len())?;
    let mut max: Option<u32> = None;
    for v in 0..nodes {
        let block = &rank_bytes[byte_offsets[v] as usize..byte_offsets[v + 1] as usize];
        let count = (offsets[v + 1] - offsets[v]) as usize;
        let mut pos = 0usize;
        // rank_{-1} = -1; rank_i = rank_{i-1} + gap_i + 1, tracked in u64
        // so a stream that would wrap u32 (breaking the strict ascent the
        // decoders assume) is caught here instead.
        let mut rank: u64 = u64::MAX; // wraps to gap_0 on the first add
        for _ in 0..count {
            let gap = try_read_varint(block, &mut pos)?;
            rank = rank.wrapping_add(gap as u64).wrapping_add(1);
            if rank > u32::MAX as u64 {
                return Err(PersistError::Corrupt("decoded hub rank exceeds u32"));
            }
        }
        // Ascent means only the block's last rank competes for the max.
        if count > 0 {
            let last = rank as u32;
            max = Some(max.map_or(last, |m| m.max(last)));
        }
        if pos != block.len() {
            return Err(PersistError::Corrupt(
                "varint block longer than its entry count",
            ));
        }
    }
    Ok(max)
}

/// The caller-side half of the rank checks: the PLL-level vertex-rank
/// bound (`max < nodes`, when the caller asked for it) and, on v2 files,
/// the cross-check that the header's O(1) `max_rank` field agrees with
/// the ranks actually decoded — keeping the field honest for the mmap
/// path, which trusts it without decoding.
fn check_max_rank(
    computed: Option<u32>,
    stored: Option<u64>,
    rank_bound: Option<u32>,
) -> Result<(), PersistError> {
    if let Some(stored) = stored {
        if stored != computed.map_or(0, |m| m as u64) {
            return Err(PersistError::Corrupt(
                "max-rank field does not match label planes",
            ));
        }
    }
    if let (Some(bound), Some(max)) = (rank_bound, computed) {
        if max >= bound {
            return Err(PersistError::Corrupt("hub rank exceeds node count"));
        }
    }
    Ok(())
}

/// The `O(1)` dictionary invariants: the code plane at the canonical
/// width for the table size, and code count == entry count. This is all
/// the zero-copy load path runs — the table-value scan and the per-code
/// range scan ride on the v2 checksum there (a corrupt table behind a
/// checksum collision yields a wrong distance or a clean bounds panic
/// at query time, never unsoundness) — while the owned path layers the
/// full scans on top ([`validate_dict`]).
fn validate_dict_shape(dict: &DistDict, entries: usize) -> Result<(), PersistError> {
    let expected_width = if dict.table.len() <= 1 << 8 {
        1
    } else if dict.table.len() <= 1 << 16 {
        2
    } else {
        4
    };
    let (width, len) = match &dict.codes {
        CodePlane::U8(c) => (1, c.len()),
        CodePlane::U16(c) => (2, c.len()),
        CodePlane::U32(c) => (4, c.len()),
    };
    if width != expected_width {
        return Err(PersistError::Corrupt(
            "code width not canonical for table size",
        ));
    }
    if len != entries {
        return Err(PersistError::Corrupt("code count != entry count"));
    }
    Ok(())
}

/// Full dictionary invariants: [`validate_dict_shape`] plus the value
/// table (finite, non-negative, strictly ascending by bit pattern —
/// bit order is numeric order, so this also rejects duplicates) and
/// every code inside the table (`O(table + entries)`).
fn validate_dict(dict: &DistDict, entries: usize) -> Result<(), PersistError> {
    validate_dict_shape(dict, entries)?;
    let table: &[f64] = &dict.table;
    // -0.0 is rejected too: its sign bit would break the sorted-by-bits
    // = sorted-numeric equivalence the encoder relies on.
    if table.iter().any(|d| !d.is_finite() || d.is_sign_negative()) {
        return Err(PersistError::Corrupt(
            "dictionary table value not finite and non-negative",
        ));
    }
    if table.windows(2).any(|w| w[0].to_bits() >= w[1].to_bits()) {
        return Err(PersistError::Corrupt(
            "dictionary table not strictly ascending",
        ));
    }
    let max_code = match &dict.codes {
        CodePlane::U8(c) => c.iter().map(|&x| x as usize).max(),
        CodePlane::U16(c) => c.iter().map(|&x| x as usize).max(),
        CodePlane::U32(c) => c.iter().map(|&x| x as usize).max(),
    };
    if let Some(max) = max_code {
        if max >= dict.table.len() {
            return Err(PersistError::Corrupt("dictionary code out of range"));
        }
    }
    Ok(())
}

fn read_code_plane(cur: &mut Cursor<'_>) -> Result<CodePlane, PersistError> {
    // v1 spent one byte on the width tag; v2 spends an aligned word.
    let width = if cur.aligned {
        cur.u64()?
    } else {
        cur.u8()? as u64
    };
    match width {
        1 => Ok(CodePlane::U8(cur.u8_vec()?.into())),
        2 => Ok(CodePlane::U16(cur.u16_vec()?.into())),
        4 => Ok(CodePlane::U32(cur.u32_vec()?.into())),
        _ => Err(PersistError::Corrupt("unknown code width")),
    }
}

/// Plane reader for the zero-copy load path: walks a checksummed v2
/// payload exactly like [`Cursor`] in aligned mode, but instead of
/// copying each plane out it hands back a [`Plane::borrowed`] view into
/// the backing [`MmapRegion`]. Bounds come from the same length
/// prefixes; alignment is guaranteed by the v2 writer's padding and
/// re-checked by `Plane::borrowed` anyway.
struct BorrowCursor<'a> {
    region: &'a Arc<MmapRegion>,
    payload_len: usize,
    /// Payload-relative position; the plane's absolute byte offset is
    /// `HEADER_LEN + pos`.
    pos: usize,
}

impl<'a> BorrowCursor<'a> {
    fn new(region: &'a Arc<MmapRegion>) -> BorrowCursor<'a> {
        BorrowCursor {
            region,
            payload_len: region.as_bytes().len() - HEADER_LEN,
            pos: 0,
        }
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        let end = self.pos.checked_add(8).ok_or(PersistError::Truncated)?;
        if end > self.payload_len {
            return Err(PersistError::Truncated);
        }
        let b = &self.region.as_bytes()[HEADER_LEN + self.pos..HEADER_LEN + end];
        self.pos = end;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads one `[len: u64][data][pad8]` plane as a borrow into the
    /// region.
    fn plane<T: PlanePod>(&mut self) -> Result<Plane<T>, PersistError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| PersistError::Truncated)?;
        let data_len = n
            .checked_mul(std::mem::size_of::<T>())
            .ok_or(PersistError::Truncated)?;
        let end = self
            .pos
            .checked_add(data_len)
            .ok_or(PersistError::Truncated)?;
        let padded = end
            .checked_add(end.wrapping_neg() % 8)
            .ok_or(PersistError::Truncated)?;
        if padded > self.payload_len {
            return Err(PersistError::Truncated);
        }
        let plane = Plane::borrowed(self.region, HEADER_LEN + self.pos, n)
            .ok_or(PersistError::Corrupt("plane misaligned in mapped file"))?;
        self.pos = padded;
        Ok(plane)
    }

    fn finish(&self) -> Result<(), PersistError> {
        if self.pos != self.payload_len {
            return Err(PersistError::Corrupt("trailing bytes after payload"));
        }
        Ok(())
    }
}

fn borrow_code_plane(cur: &mut BorrowCursor<'_>) -> Result<CodePlane, PersistError> {
    match cur.u64()? {
        1 => Ok(CodePlane::U8(cur.plane()?)),
        2 => Ok(CodePlane::U16(cur.plane()?)),
        4 => Ok(CodePlane::U32(cur.plane()?)),
        _ => Err(PersistError::Corrupt("unknown code width")),
    }
}

/// The fixed header, parsed and cross-checked against the caller's
/// snapshot — every check both load paths (owned decode and zero-copy
/// borrow) run before touching a single payload byte.
struct Header {
    version: u16,
    storage: LabelStorage,
    fp: SnapshotFingerprint,
    stored_checksum: u64,
}

impl Header {
    fn read(
        bytes: &[u8],
        expected_nodes: usize,
        expected_graph_hash: u64,
    ) -> Result<Header, PersistError> {
        // Checks length >= HEADER_LEN, magic, and version range.
        let fp = SnapshotFingerprint::read_from_bytes(bytes)?;
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        let tag = bytes[6];
        let storage = *LabelStorage::ALL
            .get(tag as usize)
            .ok_or(PersistError::BadStorageTag(tag))?;
        if bytes[7] != 0 {
            return Err(PersistError::Corrupt("reserved header byte not zero"));
        }
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let payload_len = u64_at(32);
        let stored_checksum = u64_at(40);
        if fp.nodes != expected_nodes as u64 {
            return Err(PersistError::StaleIndex {
                what: "nodes",
                expected: expected_nodes as u64,
                found: fp.nodes,
            });
        }
        if fp.graph_hash != expected_graph_hash {
            return Err(PersistError::StaleIndex {
                what: "graph hash",
                expected: expected_graph_hash,
                found: fp.graph_hash,
            });
        }
        // Offsets are u32, so both counts must fit.
        if fp.nodes >= u32::MAX as u64 || fp.entries > u32::MAX as u64 {
            return Err(PersistError::Corrupt("node or entry count exceeds u32"));
        }
        let actual = (bytes.len() - HEADER_LEN) as u64;
        if payload_len != actual {
            return Err(if payload_len > actual {
                PersistError::Truncated
            } else {
                PersistError::Corrupt("trailing bytes after payload")
            });
        }
        Ok(Header {
            version,
            storage,
            fp,
            stored_checksum,
        })
    }

    fn verify_checksum(&self, payload: &[u8]) -> Result<(), PersistError> {
        let sum = if self.version >= FORMAT_VERSION {
            checksum(payload)
        } else {
            checksum_v1(payload)
        };
        if sum != self.stored_checksum {
            return Err(PersistError::ChecksumMismatch);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// LabelStore serialization
// ---------------------------------------------------------------------

impl LabelStore {
    /// Serializes this store into the current (v2) on-disk byte format —
    /// `max_rank` word first, then 8-byte-aligned planes — stamping
    /// `graph_hash` (see [`graph_fingerprint`]) into the header
    /// fingerprint. The inverse of [`LabelStore::from_bytes`], and the
    /// layout [`LabelStore::load_mmap`] borrows without decoding.
    pub fn to_bytes(&self, graph_hash: u64) -> Vec<u8> {
        self.encode(graph_hash, FORMAT_VERSION)
    }

    /// Writes the legacy byte-packed v1 layout. Only the backward-
    /// compatibility tests should need this; new files are always v2.
    #[doc(hidden)]
    pub fn to_bytes_v1(&self, graph_hash: u64) -> Vec<u8> {
        self.encode(graph_hash, LEGACY_FORMAT_VERSION)
    }

    /// The maximum hub rank across every node's label list (`None` when
    /// the store has no entries) — the v2 header's O(1) substitute for
    /// decoding the rank planes on the mmap load path.
    fn max_hub_rank(&self) -> Option<u32> {
        // Ranks ascend within a node, so each list's last entry competes.
        (0..self.num_nodes())
            .filter_map(|v| self.entries(v).last())
            .map(|e| e.hub_rank)
            .max()
    }

    fn encode(&self, graph_hash: u64, version: u16) -> Vec<u8> {
        let mut w = PayloadWriter::new(version >= FORMAT_VERSION);
        if w.aligned {
            w.u64(self.max_hub_rank().map_or(0, |m| m as u64));
        }
        match self {
            LabelStore::Csr(l) => {
                w.u32_slice(&l.offsets);
                w.u32_slice(&l.hub_ranks);
                w.f64_slice(&l.dists);
            }
            LabelStore::Compressed(l) => {
                w.u32_slice(&l.offsets);
                w.u32_slice(&l.byte_offsets);
                w.u8_slice(&l.rank_bytes);
                w.f64_slice(&l.dists);
            }
            LabelStore::CsrDict(l) => {
                w.u32_slice(&l.offsets);
                w.u32_slice(&l.hub_ranks);
                w.dict(&l.dists);
            }
            LabelStore::CompressedDict(l) => {
                w.u32_slice(&l.offsets);
                w.u32_slice(&l.byte_offsets);
                w.u8_slice(&l.rank_bytes);
                w.dict(&l.dists);
            }
        }
        let payload = w.out;
        let stats = self.stats();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.push(self.storage() as u8);
        out.push(0); // reserved
        out.extend_from_slice(&(stats.nodes as u64).to_le_bytes());
        out.extend_from_slice(&(stats.total_entries as u64).to_le_bytes());
        out.extend_from_slice(&graph_hash.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let sum = if version >= FORMAT_VERSION {
            checksum(&payload)
        } else {
            checksum_v1(&payload)
        };
        out.extend_from_slice(&sum.to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a store from untrusted bytes, validating the header
    /// against the caller's snapshot (`expected_nodes`,
    /// `expected_graph_hash`) and every structural invariant of the
    /// stored backend before any decoder touches the data.
    ///
    /// Returns `Err` — never panics — on any malformed, truncated,
    /// corrupt, or stale input.
    pub fn from_bytes(
        bytes: &[u8],
        expected_nodes: usize,
        expected_graph_hash: u64,
    ) -> Result<LabelStore, PersistError> {
        Self::from_bytes_impl(bytes, expected_nodes, expected_graph_hash, false)
    }

    /// [`LabelStore::from_bytes`] plus, when `ranks_are_vertex_ranks`,
    /// the PLL-level invariant that every hub rank is `< nodes` —
    /// checked inside the single validation pass over the rank planes,
    /// so the load path never decodes the labels twice.
    pub(crate) fn from_bytes_impl(
        bytes: &[u8],
        expected_nodes: usize,
        expected_graph_hash: u64,
        ranks_are_vertex_ranks: bool,
    ) -> Result<LabelStore, PersistError> {
        let header = Header::read(bytes, expected_nodes, expected_graph_hash)?;
        let payload = &bytes[HEADER_LEN..];
        header.verify_checksum(payload)?;

        let nodes = header.fp.nodes as usize;
        let entries = header.fp.entries as usize;
        let rank_bound = ranks_are_vertex_ranks.then_some(header.fp.nodes as u32);
        let aligned = header.version >= FORMAT_VERSION;
        let mut cur = Cursor::new(payload, aligned);
        // v2 leads with the max-rank word; cross-checked below against
        // the ranks actually decoded, so the mmap path can trust it.
        let stored_max_rank = if aligned { Some(cur.u64()?) } else { None };
        let store = match header.storage {
            LabelStorage::Csr => {
                let offsets = cur.u32_vec()?;
                let hub_ranks = cur.u32_vec()?;
                let dists = cur.f64_vec()?;
                cur.finish()?;
                if hub_ranks.len() != entries || dists.len() != entries {
                    return Err(PersistError::Corrupt("plane length != entry count"));
                }
                validate_offsets(&offsets, nodes, entries)?;
                let max = validate_csr_ranks(&offsets, &hub_ranks)?;
                check_max_rank(max, stored_max_rank, rank_bound)?;
                LabelStore::Csr(LabelSet {
                    offsets: offsets.into(),
                    hub_ranks: hub_ranks.into(),
                    dists: dists.into(),
                })
            }
            LabelStorage::Compressed => {
                let offsets = cur.u32_vec()?;
                let byte_offsets = cur.u32_vec()?;
                let rank_bytes = cur.u8_vec()?;
                let dists = cur.f64_vec()?;
                cur.finish()?;
                if dists.len() != entries {
                    return Err(PersistError::Corrupt("plane length != entry count"));
                }
                validate_offsets(&offsets, nodes, entries)?;
                let max = validate_varint_blocks(&offsets, &byte_offsets, &rank_bytes, nodes)?;
                check_max_rank(max, stored_max_rank, rank_bound)?;
                LabelStore::Compressed(CompressedLabelSet {
                    offsets: offsets.into(),
                    byte_offsets: byte_offsets.into(),
                    rank_bytes: rank_bytes.into(),
                    dists: dists.into(),
                })
            }
            LabelStorage::CsrDict => {
                let offsets = cur.u32_vec()?;
                let hub_ranks = cur.u32_vec()?;
                let table = cur.f64_vec()?;
                let codes = read_code_plane(&mut cur)?;
                cur.finish()?;
                if hub_ranks.len() != entries {
                    return Err(PersistError::Corrupt("plane length != entry count"));
                }
                validate_offsets(&offsets, nodes, entries)?;
                let max = validate_csr_ranks(&offsets, &hub_ranks)?;
                check_max_rank(max, stored_max_rank, rank_bound)?;
                let dists = DistDict {
                    table: table.into(),
                    codes,
                };
                validate_dict(&dists, entries)?;
                LabelStore::CsrDict(DictLabelSet {
                    offsets: offsets.into(),
                    hub_ranks: hub_ranks.into(),
                    dists,
                })
            }
            LabelStorage::CompressedDict => {
                let offsets = cur.u32_vec()?;
                let byte_offsets = cur.u32_vec()?;
                let rank_bytes = cur.u8_vec()?;
                let table = cur.f64_vec()?;
                let codes = read_code_plane(&mut cur)?;
                cur.finish()?;
                validate_offsets(&offsets, nodes, entries)?;
                let max = validate_varint_blocks(&offsets, &byte_offsets, &rank_bytes, nodes)?;
                check_max_rank(max, stored_max_rank, rank_bound)?;
                let dists = DistDict {
                    table: table.into(),
                    codes,
                };
                validate_dict(&dists, entries)?;
                LabelStore::CompressedDict(CompressedDictLabelSet {
                    offsets: offsets.into(),
                    byte_offsets: byte_offsets.into(),
                    rank_bytes: rank_bytes.into(),
                    dists,
                })
            }
        };
        Ok(store)
    }

    /// Zero-copy decode of a mapped index file: validates the header,
    /// the payload checksum, and the `O(nodes)` structural metadata,
    /// then borrows every plane straight out of `region` — no per-entry
    /// decode, no copies. v1 (or any pre-v2) files fall back to the
    /// owned decode path, since their planes are unaligned.
    ///
    /// The trust model differs from [`LabelStore::from_bytes`]: the
    /// per-entry invariant scans (rank ascent, varint well-formedness,
    /// dictionary-code range) are vouched for by the payload checksum —
    /// written by the same validated writer — instead of being re-proven
    /// element by element. Loading still never panics on any input, and
    /// every query path is bounds-checked safe Rust, so even an
    /// adversarial file that engineered a checksum collision could only
    /// cause a query-time panic or wrong distance, never unsoundness.
    /// For untrusted bytes, use the owned path.
    pub fn from_region(
        region: &Arc<MmapRegion>,
        expected_nodes: usize,
        expected_graph_hash: u64,
    ) -> Result<LabelStore, PersistError> {
        Self::from_region_impl(region, expected_nodes, expected_graph_hash, false)
    }

    /// [`LabelStore::from_region`] plus, when `ranks_are_vertex_ranks`,
    /// the PLL-level vertex-rank bound — enforced in O(1) via the v2
    /// header's `max_rank` word instead of decoding the rank planes.
    pub(crate) fn from_region_impl(
        region: &Arc<MmapRegion>,
        expected_nodes: usize,
        expected_graph_hash: u64,
        ranks_are_vertex_ranks: bool,
    ) -> Result<LabelStore, PersistError> {
        let bytes = region.as_bytes();
        let header = Header::read(bytes, expected_nodes, expected_graph_hash)?;
        if header.version < FORMAT_VERSION {
            // Legacy layout: unaligned planes, byte-wise checksum, no
            // max-rank word — decode into owned storage instead.
            return LabelStore::from_bytes_impl(
                bytes,
                expected_nodes,
                expected_graph_hash,
                ranks_are_vertex_ranks,
            );
        }
        header.verify_checksum(&bytes[HEADER_LEN..])?;

        let nodes = header.fp.nodes as usize;
        let entries = header.fp.entries as usize;
        let mut cur = BorrowCursor::new(region);
        // The v2 max-rank word is the O(1) stand-in for decoding the
        // rank planes (the owned path cross-checks it at write/load
        // time, so it is as trustworthy as the planes themselves).
        let max_rank = cur.u64()?;
        if ranks_are_vertex_ranks && entries > 0 && max_rank >= header.fp.nodes {
            return Err(PersistError::Corrupt("hub rank exceeds node count"));
        }
        let store = match header.storage {
            LabelStorage::Csr => {
                let offsets: Plane<u32> = cur.plane()?;
                let hub_ranks: Plane<u32> = cur.plane()?;
                let dists: Plane<f64> = cur.plane()?;
                cur.finish()?;
                if hub_ranks.len() != entries || dists.len() != entries {
                    return Err(PersistError::Corrupt("plane length != entry count"));
                }
                validate_offsets(&offsets, nodes, entries)?;
                LabelStore::Csr(LabelSet {
                    offsets,
                    hub_ranks,
                    dists,
                })
            }
            LabelStorage::Compressed => {
                let offsets: Plane<u32> = cur.plane()?;
                let byte_offsets: Plane<u32> = cur.plane()?;
                let rank_bytes: Plane<u8> = cur.plane()?;
                let dists: Plane<f64> = cur.plane()?;
                cur.finish()?;
                if dists.len() != entries {
                    return Err(PersistError::Corrupt("plane length != entry count"));
                }
                validate_offsets(&offsets, nodes, entries)?;
                validate_byte_offsets(&byte_offsets, nodes, rank_bytes.len())?;
                LabelStore::Compressed(CompressedLabelSet {
                    offsets,
                    byte_offsets,
                    rank_bytes,
                    dists,
                })
            }
            LabelStorage::CsrDict => {
                let offsets: Plane<u32> = cur.plane()?;
                let hub_ranks: Plane<u32> = cur.plane()?;
                let table: Plane<f64> = cur.plane()?;
                let codes = borrow_code_plane(&mut cur)?;
                cur.finish()?;
                if hub_ranks.len() != entries {
                    return Err(PersistError::Corrupt("plane length != entry count"));
                }
                validate_offsets(&offsets, nodes, entries)?;
                let dists = DistDict { table, codes };
                validate_dict_shape(&dists, entries)?;
                LabelStore::CsrDict(DictLabelSet {
                    offsets,
                    hub_ranks,
                    dists,
                })
            }
            LabelStorage::CompressedDict => {
                let offsets: Plane<u32> = cur.plane()?;
                let byte_offsets: Plane<u32> = cur.plane()?;
                let rank_bytes: Plane<u8> = cur.plane()?;
                let table: Plane<f64> = cur.plane()?;
                let codes = borrow_code_plane(&mut cur)?;
                cur.finish()?;
                validate_offsets(&offsets, nodes, entries)?;
                validate_byte_offsets(&byte_offsets, nodes, rank_bytes.len())?;
                let dists = DistDict { table, codes };
                validate_dict_shape(&dists, entries)?;
                LabelStore::CompressedDict(CompressedDictLabelSet {
                    offsets,
                    byte_offsets,
                    rank_bytes,
                    dists,
                })
            }
        };
        Ok(store)
    }

    /// Memory-maps the index at `path` and borrows every label plane in
    /// place — the zero-copy counterpart of [`LabelStore::load_from`].
    /// Same staleness and checksum guarantees; see
    /// [`LabelStore::from_region`] for what per-entry validation is
    /// traded for the checksum, and [`IndexLoadMode`] for when to pick
    /// which. The returned store pins the mapping for as long as it (or
    /// anything cloned from it) lives; [`LabelStore::is_zero_copy`]
    /// reports whether borrowing actually happened (a v1 file loads via
    /// the owned fallback).
    pub fn load_mmap(path: &Path, graph: &ExpertGraph) -> Result<LabelStore, PersistError> {
        let region = MmapRegion::map_file(path)?;
        LabelStore::from_region(&region, graph.num_nodes(), graph_fingerprint(graph))
    }

    /// Saves this store to `path` as a versioned dump fingerprinted with
    /// `graph` (the graph the index was built from). The write goes
    /// through [`atomic_write`]: a uniquely-named sibling temp file
    /// (extension appended, pid + sequence suffixed — concurrent savers
    /// never share a temp path) and an atomic rename, so a crashed or
    /// racing save never leaves a half-written index at `path`.
    pub fn save_to(&self, path: &Path, graph: &ExpertGraph) -> Result<(), PersistError> {
        let bytes = self.to_bytes(graph_fingerprint(graph));
        atomic_write(path, &bytes).map_err(PersistError::Io)
    }

    /// Loads a store from `path`, rejecting files whose fingerprint does
    /// not match `graph` (see [`LabelStore::from_bytes`] for the
    /// validation guarantees).
    pub fn load_from(path: &Path, graph: &ExpertGraph) -> Result<LabelStore, PersistError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        LabelStore::from_bytes(&bytes, graph.num_nodes(), graph_fingerprint(graph))
    }

    /// [`LabelStore::save_to`] under a [`RetryPolicy`]: transient I/O
    /// failures are retried with capped backoff; structural failures
    /// cannot occur on save.
    pub fn save_to_with_retry(
        &self,
        path: &Path,
        graph: &ExpertGraph,
        retry: &RetryPolicy,
    ) -> Result<(), PersistError> {
        retry.run(|_| self.save_to(path, graph))
    }

    /// [`LabelStore::load_from`] under a [`RetryPolicy`]: transient I/O
    /// failures are retried with capped backoff; a stale, corrupt, or
    /// truncated file fails immediately (re-reading cannot fix bytes).
    pub fn load_from_with_retry(
        path: &Path,
        graph: &ExpertGraph,
        retry: &RetryPolicy,
    ) -> Result<LabelStore, PersistError> {
        retry.run(|_| LabelStore::load_from(path, graph))
    }
}

impl PrunedLandmarkLabeling {
    /// Persists this index to `path`; see [`LabelStore::save_to`].
    pub fn save_to(&self, path: &Path, graph: &ExpertGraph) -> Result<(), PersistError> {
        self.labels().save_to(path, graph)
    }

    /// Loads a previously saved index for `graph` from `path` — the fast
    /// half of the load-or-build cold start. On top of the store-level
    /// validation this requires every hub rank to be a valid vertex rank
    /// (`< num_nodes`), which is what lets [`SourceScatter`] scratch
    /// arrays stay direct-indexed and unchecked.
    ///
    /// The loaded index answers every query bit-identically to the build
    /// that produced the file; its build profile is empty and
    /// `build_time` reports the load wall time.
    ///
    /// [`SourceScatter`]: crate::scatter::SourceScatter
    pub fn load_from(
        path: &Path,
        graph: &ExpertGraph,
    ) -> Result<PrunedLandmarkLabeling, PersistError> {
        let start = Instant::now();
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        // The rank bound rides inside the one structural validation pass
        // — the load path never decodes the labels a second time.
        let store =
            LabelStore::from_bytes_impl(&bytes, graph.num_nodes(), graph_fingerprint(graph), true)?;
        Ok(PrunedLandmarkLabeling::from_loaded_store(
            store,
            start.elapsed(),
        ))
    }

    /// Memory-maps a previously saved index for `graph` — the zero-copy
    /// counterpart of [`PrunedLandmarkLabeling::load_from`], selected by
    /// [`IndexLoadMode::Mmap`]. Format-v2 planes are borrowed straight
    /// from the page cache (no decode, no copy; see
    /// [`LabelStore::load_mmap`]); v1 files fall back to the owned
    /// decode. The PLL-level vertex-rank bound is enforced in O(1) via
    /// the v2 header's `max_rank` field, which the owned write/load
    /// paths keep cross-checked against the actual label planes.
    ///
    /// Queries are bit-identical to [`PrunedLandmarkLabeling::load_from`]
    /// and to the build that produced the file.
    pub fn load_mmap(
        path: &Path,
        graph: &ExpertGraph,
    ) -> Result<PrunedLandmarkLabeling, PersistError> {
        let start = Instant::now();
        let region = MmapRegion::map_file(path)?;
        let store = LabelStore::from_region_impl(
            &region,
            graph.num_nodes(),
            graph_fingerprint(graph),
            true,
        )?;
        Ok(PrunedLandmarkLabeling::from_loaded_store(
            store,
            start.elapsed(),
        ))
    }

    /// [`PrunedLandmarkLabeling::load_mmap`] under a [`RetryPolicy`] —
    /// transient I/O failures retried, structural failures immediate,
    /// exactly like [`PrunedLandmarkLabeling::load_from_with_retry`].
    pub fn load_mmap_with_retry(
        path: &Path,
        graph: &ExpertGraph,
        retry: &RetryPolicy,
    ) -> Result<PrunedLandmarkLabeling, PersistError> {
        retry.run(|_| PrunedLandmarkLabeling::load_mmap(path, graph))
    }

    /// [`PrunedLandmarkLabeling::save_to`] under a [`RetryPolicy`] —
    /// see [`LabelStore::save_to_with_retry`].
    pub fn save_to_with_retry(
        &self,
        path: &Path,
        graph: &ExpertGraph,
        retry: &RetryPolicy,
    ) -> Result<(), PersistError> {
        retry.run(|_| self.save_to(path, graph))
    }

    /// [`PrunedLandmarkLabeling::load_from`] under a [`RetryPolicy`] —
    /// see [`LabelStore::load_from_with_retry`]. This is the load half
    /// used by both the `DiscoveryOptions::pll_index_path` cold start
    /// and the background snapshot-swap thread in `atd-serve`.
    pub fn load_from_with_retry(
        path: &Path,
        graph: &ExpertGraph,
        retry: &RetryPolicy,
    ) -> Result<PrunedLandmarkLabeling, PersistError> {
        retry.run(|_| PrunedLandmarkLabeling::load_from(path, graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelEntry;

    fn e(hub_rank: u32, dist: f64) -> LabelEntry {
        LabelEntry { hub_rank, dist }
    }

    fn lists() -> Vec<Vec<LabelEntry>> {
        vec![
            vec![e(0, 0.25), e(1, 1.5), e(3, 2.0)],
            vec![],
            vec![e(2, 0.25), e(3, 1.5)],
        ]
    }

    fn stores() -> Vec<LabelStore> {
        let l = lists();
        vec![
            LabelStore::from(LabelSet::from_lists(&l)),
            LabelStore::from(CompressedLabelSet::from_lists(&l)),
            LabelStore::from(DictLabelSet::from_lists(&l)),
            LabelStore::from(CompressedDictLabelSet::from_lists(&l)),
        ]
    }

    const HASH: u64 = 0xfeed_f00d;

    #[test]
    fn roundtrips_every_backend_bit_identically() {
        for store in stores() {
            let bytes = store.to_bytes(HASH);
            let loaded = LabelStore::from_bytes(&bytes, store.num_nodes(), HASH)
                .unwrap_or_else(|err| panic!("{:?}: {err}", store.storage()));
            assert_eq!(loaded.storage(), store.storage());
            assert_eq!(loaded.stats(), store.stats());
            for v in 0..store.num_nodes() {
                let a: Vec<LabelEntry> = store.entries(v).collect();
                let b: Vec<LabelEntry> = loaded.entries(v).collect();
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.hub_rank, y.hub_rank);
                    assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                }
            }
        }
    }

    #[test]
    fn stale_fingerprints_are_rejected() {
        let store = &stores()[0];
        let bytes = store.to_bytes(HASH);
        assert!(matches!(
            LabelStore::from_bytes(&bytes, store.num_nodes(), HASH + 1),
            Err(PersistError::StaleIndex {
                what: "graph hash",
                ..
            })
        ));
        assert!(matches!(
            LabelStore::from_bytes(&bytes, store.num_nodes() + 1, HASH),
            Err(PersistError::StaleIndex { what: "nodes", .. })
        ));
    }

    #[test]
    fn graph_fingerprint_tracks_edges_and_weights() {
        use atd_graph::GraphBuilder;
        let build = |w: f64, extra: bool| {
            let mut b = GraphBuilder::new();
            let u = b.add_node(1.0);
            let v = b.add_node(2.0);
            let x = b.add_node(3.0);
            b.add_edge(u, v, w).unwrap();
            if extra {
                b.add_edge(v, x, 1.0).unwrap();
            }
            b.build().unwrap()
        };
        let base = graph_fingerprint(&build(0.5, false));
        assert_eq!(base, graph_fingerprint(&build(0.5, false)), "deterministic");
        assert_ne!(base, graph_fingerprint(&build(0.75, false)), "weight");
        assert_ne!(base, graph_fingerprint(&build(0.5, true)), "topology");
    }

    #[test]
    fn header_fingerprint_matches_snapshot_fingerprint_of() {
        use atd_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let u = b.add_node(1.0);
        let v = b.add_node(2.0);
        b.add_edge(u, v, 0.5).unwrap();
        let g = b.build().unwrap();
        let store = LabelStore::from(LabelSet::from_lists(&[vec![e(0, 0.0)], vec![e(0, 0.5)]]));
        let bytes = store.to_bytes(graph_fingerprint(&g));
        let read = SnapshotFingerprint::read_from_bytes(&bytes).unwrap();
        assert_eq!(read, SnapshotFingerprint::of(&g, &store));
        assert_eq!(read.nodes, 2);
        assert_eq!(read.entries, 2);
        assert!(matches!(
            SnapshotFingerprint::read_from_bytes(&bytes[..HEADER_LEN - 1]),
            Err(PersistError::Truncated)
        ));
    }

    #[test]
    fn empty_stores_roundtrip() {
        for store in [
            LabelStore::from(LabelSet::new(0)),
            LabelStore::from(LabelSet::new(3)),
            LabelStore::from(CompressedLabelSet::new(3)),
            LabelStore::from(DictLabelSet::from_lists(&[vec![], vec![]])),
            LabelStore::from(CompressedDictLabelSet::from_lists(&[vec![]])),
        ] {
            let bytes = store.to_bytes(0);
            let loaded = LabelStore::from_bytes(&bytes, store.num_nodes(), 0).expect("roundtrip");
            assert_eq!(loaded.stats(), store.stats());
        }
    }

    fn io_err() -> PersistError {
        PersistError::Io(std::io::Error::other("disk hiccup"))
    }

    #[test]
    fn only_io_errors_are_transient() {
        assert!(io_err().is_transient());
        for e in [
            PersistError::BadMagic,
            PersistError::UnsupportedVersion(9),
            PersistError::BadStorageTag(7),
            PersistError::ChecksumMismatch,
            PersistError::Truncated,
            PersistError::Corrupt("x"),
        ] {
            assert!(!e.is_transient(), "{e}");
        }
    }

    #[test]
    fn retry_recovers_from_transient_failures_with_backoff() {
        let policy = RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(25),
        };
        let mut slept = Vec::new();
        let result = policy.run_with_sleep(
            |attempt| {
                if attempt < 3 {
                    Err(io_err())
                } else {
                    Ok(attempt)
                }
            },
            |d| slept.push(d),
        );
        assert_eq!(result.unwrap(), 3, "third attempt succeeds");
        // Exponential, capped: 10 ms, then 20 ms (2^1·10), cap 25 never hit.
        assert_eq!(
            slept,
            vec![Duration::from_millis(10), Duration::from_millis(20)]
        );
    }

    #[test]
    fn retry_caps_backoff_and_gives_up_after_attempts() {
        let policy = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(15),
        };
        let mut slept = Vec::new();
        let mut calls = 0u32;
        let result: Result<(), _> = policy.run_with_sleep(
            |_| {
                calls += 1;
                Err(io_err())
            },
            |d| slept.push(d),
        );
        assert!(result.is_err());
        assert_eq!(calls, 5, "every attempt consumed");
        assert_eq!(slept.len(), 4, "no sleep after the final failure");
        // 10, then capped at 15 forever.
        assert_eq!(slept[0], Duration::from_millis(10));
        for &d in &slept[1..] {
            assert_eq!(d, Duration::from_millis(15));
        }
    }

    #[test]
    fn retry_does_not_retry_structural_errors() {
        let mut calls = 0u32;
        let result: Result<(), _> = RetryPolicy::default().run_with_sleep(
            |_| {
                calls += 1;
                Err(PersistError::ChecksumMismatch)
            },
            |_| panic!("structural errors must not sleep"),
        );
        assert!(matches!(result, Err(PersistError::ChecksumMismatch)));
        assert_eq!(calls, 1, "corrupt bytes are not retried");
    }

    #[test]
    fn retry_none_is_a_single_attempt() {
        let mut calls = 0u32;
        let result: Result<(), _> = RetryPolicy::none().run_with_sleep(
            |_| {
                calls += 1;
                Err(io_err())
            },
            |_| panic!("no sleeping"),
        );
        assert!(result.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn load_with_retry_survives_missing_then_present_file() {
        // End-to-end: the file "appears" between attempts (as when a
        // concurrent save's rename lands), and the retried load succeeds.
        use atd_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let u = b.add_node(1.0);
        let v = b.add_node(2.0);
        b.add_edge(u, v, 0.5).unwrap();
        let g = b.build().unwrap();
        let store = LabelStore::from(LabelSet::from_lists(&[vec![e(0, 0.0)], vec![e(0, 0.5)]]));
        let dir = std::env::temp_dir().join(format!("atd_retry_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("late.atdl");
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
        };
        let mut sleeps = 0u32;
        let loaded = policy
            .run_with_sleep(
                |_| {
                    let r = LabelStore::load_from(&path, &g);
                    if r.is_err() {
                        // Save so the *next* attempt sees the file.
                        store.save_to(&path, &g).unwrap();
                    }
                    r
                },
                |_| sleeps += 1,
            )
            .expect("second attempt loads");
        assert_eq!(sleeps, 1);
        assert_eq!(loaded.stats(), store.stats());
        std::fs::remove_dir_all(&dir).ok();
    }
}
