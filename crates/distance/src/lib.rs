#![warn(missing_docs)]

//! # atd-distance — shortest-path distance oracles
//!
//! Algorithm 1 of *Authority-Based Team Discovery in Social Networks*
//! evaluates `DIST(root, v)` for every candidate root × every holder of
//! every required skill. The paper answers these queries in (near) constant
//! time with *distance labeling / 2-hop cover* — specifically **pruned
//! landmark labeling** (Akiba, Iwata, Yoshida; SIGMOD 2013, the paper's
//! reference \[1\]). This crate implements:
//!
//! * [`PrunedLandmarkLabeling`] — a weighted-graph PLL index: for each node
//!   a small sorted list of `(hub, distance)` labels such that every
//!   shortest path is covered by some common hub. Labels live in a
//!   [`LabelStore`] whose backend is two orthogonal planes — flat CSR
//!   ([`LabelSet`]) or delta+varint ([`CompressedLabelSet`]) hub ranks ×
//!   flat `f64` or dictionary-coded ([`DistDict`]) distances — selected
//!   by [`BuildConfig::storage`]; pairwise queries are a merge-join over
//!   two label streams and are bit-identical across backends. Construction is
//!   a batch-synchronous parallel build ([`BuildConfig`]) whose output is
//!   bit-identical to the sequential algorithm for every thread count and
//!   batch size (see `src/README.md`, which also carries the compressed
//!   format spec).
//! * [`SourceScatter`] — the one-to-many query engine: scatter a source's
//!   label once, then answer each target in `O(|label(target)|)` with no
//!   merge. This is what makes Algorithm 1's root scan fast — one scatter
//!   per candidate root, `t·|C(s)|` direct-indexed lookups.
//! * [`DijkstraOracle`] — the ground-truth oracle (memoized single-source
//!   Dijkstra), used for validation, benchmarks and as a fallback for
//!   workloads with few distinct roots.
//! * [`DistanceOracle`] — the trait both implement, which the team-formation
//!   crate is generic over.
//! * [`persist`] — versioned on-disk persistence for a built index:
//!   `save_to` / `load_from` with a snapshot fingerprint and hardened
//!   untrusted-byte validation, so restart cost is `O(index bytes)`
//!   instead of `O(graph rebuild)`. [`RetryPolicy`] wraps both sides
//!   with bounded, capped-backoff retry of transient I/O failures for
//!   long-lived callers (the load-or-build cold start, background
//!   snapshot swaps).
//!
//! Vertex ordering matters enormously for PLL label sizes; [`order`]
//! provides the degree-descending heuristic recommended by Akiba et al. for
//! social networks.

pub mod codec;
pub mod dict;
pub mod dijkstra_oracle;
pub mod incremental;
pub mod label;
pub mod mmap;
pub mod oracle;
pub mod order;
pub mod persist;
pub mod plane;
pub mod pll;
pub mod scatter;

pub use codec::{CompressedLabelSet, LabelDecoder, LabelEntries, LabelStorage, LabelStore};
pub use dict::{CompressedDictLabelSet, DictDecoder, DictEntries, DictLabelSet, DistDict};
pub use dijkstra_oracle::DijkstraOracle;
pub use incremental::{refresh, IncrementalError, IncrementalReport};
pub use label::{
    JournalCursor, JournalShard, LabelEntry, LabelRef, LabelSet, LabelSetBuilder, LabelStats,
    ShardedJournal,
};
pub use mmap::MmapRegion;
pub use oracle::DistanceOracle;
pub use order::{degree_descending_order, VertexOrder};
pub use persist::{
    atomic_write, graph_fingerprint, sweep_orphaned_tmp, sweep_orphaned_tmp_dir, IndexLoadMode,
    PersistError, RetryPolicy, SnapshotFingerprint,
};
pub use plane::{Plane, PlanePod};
pub use pll::{BatchProfile, BuildConfig, BuildProfile, PrunedLandmarkLabeling};
pub use scatter::SourceScatter;
