//! Incremental maintenance of a built PLL index under graph deltas.
//!
//! `DurableService::publish_mutation` used to rebuild the whole PLL index
//! per mutation — O(rebuild) swap latency regardless of how small the
//! delta was. This module turns that into O(affected): given the old
//! index, the old graph, and the new graph, [`refresh`] re-runs the
//! pruned search for only the hubs whose label plane can have changed,
//! diffs each re-searched plane against the stored one, and patches the
//! touched per-node labels in place across every
//! [`LabelStorage`](crate::codec::LabelStorage) backend.
//!
//! ## Bit-identical by construction
//!
//! The crate-wide contract is that the refreshed index is **bit-identical**
//! to a from-scratch sequential build on the new graph — not merely a
//! correct 2-hop cover. The argument (spelled out in
//! `crates/distance/src/README.md` § Incremental maintenance):
//!
//! 1. Affected hubs are processed in **ascending rank** off a min-heap, so
//!    when hub `r` is re-searched every label of rank `< r` is already
//!    final. The re-search runs the exact `run_pruned_search` loop
//!    against a rank-bounded view of the final labels — the same state the
//!    sequential build sees at step `r`, hence the same emissions to the
//!    bit.
//! 2. The **seed set** (hubs of both endpoints' labels plus the endpoints'
//!    own ranks, per changed edge) and the **propagation rule** (for every
//!    node whose label changed at rank `r`: its own rank, the hubs of its
//!    label, and the hubs of all its new-graph neighbours' labels, ranks
//!    `> r` only) together cover every hub whose sequential plane differs:
//!    any divergence in a hub's search first manifests at a node it
//!    settled identically before, and that node (or its emitted
//!    predecessor) pins the hub into one of the enqueued sets.
//! 3. Unqueued hubs therefore keep planes identical to the sequential
//!    build, and the per-backend `patched` hooks re-encode exactly the
//!    dirty nodes through the same single write paths construction uses.
//!
//! Deltas the scheme cannot replay cheaply (node additions, edge
//! removals, weight increases, vertex-order changes, or blast radii past
//! [`BuildConfig::incremental_hub_budget`]) return an [`IncrementalError`]
//! and the caller falls back to a full rebuild — the serving layer counts
//! both paths (`ServeStats::incremental_applied` /
//! `full_rebuild_fallbacks`).

use std::time::Instant;

use atd_graph::{ExpertGraph, NodeId};

use crate::codec::LabelStore;
use crate::label::LabelEntry;
use crate::oracle::DistanceOracle;
use crate::order::{compute_order, VertexOrder};
use crate::pll::{
    pruned_dijkstra, BuildConfig, PruneLabels, PrunedLandmarkLabeling, SearchScratch,
};
use crate::scatter::SourceScatter;

/// Why an incremental refresh refused the delta; callers fall back to a
/// full rebuild.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncrementalError {
    /// The node set grew or shrank; label planes are indexed by node.
    NodeCountChanged,
    /// An edge vanished — distances may increase, which pruned-search
    /// replay cannot express.
    EdgeRemoved,
    /// An edge weight rose — same problem as removal.
    WeightIncreased,
    /// The vertex order of the new graph differs from the old one, so hub
    /// ranks (and with them every label) shift wholesale.
    OrderChanged,
    /// The normalization scale changed, rescaling every edge weight
    /// (detected by the caller that owns normalization, e.g.
    /// `Discovery::try_incremental`).
    ScaleChanged,
    /// The delta's blast radius exceeded
    /// [`BuildConfig::incremental_hub_budget`]: `affected` hubs were
    /// queued against a budget of `budget`.
    HubBudgetExceeded {
        /// Affected hubs counted before bailing.
        affected: usize,
        /// The configured budget.
        budget: usize,
    },
}

impl std::fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncrementalError::NodeCountChanged => write!(f, "node count changed"),
            IncrementalError::EdgeRemoved => write!(f, "an edge was removed"),
            IncrementalError::WeightIncreased => write!(f, "an edge weight increased"),
            IncrementalError::OrderChanged => write!(f, "vertex order changed"),
            IncrementalError::ScaleChanged => write!(f, "normalization scale changed"),
            IncrementalError::HubBudgetExceeded { affected, budget } => write!(
                f,
                "delta affects {affected} hubs, over the incremental budget of {budget}"
            ),
        }
    }
}

impl std::error::Error for IncrementalError {}

/// What an accepted incremental refresh did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalReport {
    /// Hubs whose pruned search was re-run.
    pub affected_hubs: usize,
    /// Nodes whose label was patched.
    pub patched_nodes: usize,
    /// True when the delta left every label untouched (metadata-only, or
    /// re-searches that reproduced every stored plane).
    pub unchanged: bool,
}

/// The label view an incremental re-search prunes against: the decoded
/// final label lists, truncated to ranks strictly below the hub being
/// re-searched — exactly the state the sequential build's
/// [`LabelSetBuilder`](crate::label::LabelSetBuilder) holds at that step.
struct RankBounded<'a> {
    lists: &'a [Vec<LabelEntry>],
    bound: u32,
}

impl PruneLabels for RankBounded<'_> {
    fn load_scatter(&self, scatter: &mut SourceScatter, hub: usize) {
        scatter.load_entries(
            hub,
            self.lists[hub]
                .iter()
                .take_while(|e| e.hub_rank < self.bound)
                .copied(),
        );
    }

    fn covered(&self, scatter: &SourceScatter, node: usize) -> f64 {
        let mut covered = f64::INFINITY;
        for e in self.lists[node]
            .iter()
            .take_while(|e| e.hub_rank < self.bound)
        {
            let via = scatter.hub_distance(e.hub_rank) + e.dist;
            if via < covered {
                covered = via;
            }
        }
        covered
    }
}

/// Ascending-rank work queue over hub ranks, deduplicated.
struct HubQueue {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>>,
    queued: Vec<bool>,
}

impl HubQueue {
    fn new(n: usize) -> Self {
        HubQueue {
            heap: std::collections::BinaryHeap::new(),
            queued: vec![false; n],
        }
    }

    #[inline]
    fn push(&mut self, rank: u32) {
        if !self.queued[rank as usize] {
            self.queued[rank as usize] = true;
            self.heap.push(std::cmp::Reverse(rank));
        }
    }

    /// Enqueues every rank `> above` that `node`'s current label carries.
    #[inline]
    fn push_label_hubs(&mut self, work: &[Vec<LabelEntry>], node: usize, above: u32) {
        for e in &work[node] {
            if e.hub_rank > above {
                self.push(e.hub_rank);
            }
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<u32> {
        self.heap.pop().map(|std::cmp::Reverse(r)| r)
    }
}

/// Classifies the edge-level difference between the two graphs.
/// `changed` collects edges whose weight bits differ (necessarily
/// decreases) plus brand-new edges, as endpoint pairs.
fn diff_edges(
    old_graph: &ExpertGraph,
    new_graph: &ExpertGraph,
) -> Result<(Vec<(NodeId, NodeId)>, bool), IncrementalError> {
    let mut changed = Vec::new();
    let mut structural = false;
    let mut old_it = old_graph.edges().peekable();
    let mut new_it = new_graph.edges().peekable();
    loop {
        match (old_it.peek().copied(), new_it.peek().copied()) {
            (None, None) => break,
            (Some(_), None) => return Err(IncrementalError::EdgeRemoved),
            (None, Some((u, v, _))) => {
                structural = true;
                changed.push((u, v));
                new_it.next();
            }
            (Some((ou, ov, ow)), Some((nu, nv, nw))) => {
                let okey = (ou, ov);
                let nkey = (nu, nv);
                match okey.cmp(&nkey) {
                    std::cmp::Ordering::Less => return Err(IncrementalError::EdgeRemoved),
                    std::cmp::Ordering::Greater => {
                        structural = true;
                        changed.push((nu, nv));
                        new_it.next();
                    }
                    std::cmp::Ordering::Equal => {
                        if nw.to_bits() != ow.to_bits() {
                            if nw > ow {
                                return Err(IncrementalError::WeightIncreased);
                            }
                            changed.push((nu, nv));
                        }
                        old_it.next();
                        new_it.next();
                    }
                }
            }
        }
    }
    Ok((changed, structural))
}

/// The hub budget used when [`BuildConfig::incremental_hub_budget`] is
/// `None`: patching a hub costs about as much as building it, so the
/// incremental path wins whenever fewer than ~half the hubs are touched.
/// (An earlier `max(16, n / 4)` default pushed realistic single-edge
/// relaxes — ≈840 affected hubs on the 2270-node DBLP testbed — to a
/// needless full rebuild.)
///
/// [`BuildConfig::incremental_hub_budget`]: crate::BuildConfig::incremental_hub_budget
pub fn default_hub_budget(n: usize) -> usize {
    (n / 2).max(64)
}

/// Refreshes `pll` (built on `old_graph` with `order_kind`) to index
/// `new_graph`, re-searching only affected hubs and patching only dirty
/// node labels. The result is bit-identical to
/// [`PrunedLandmarkLabeling::build_with_config`] on `new_graph` — same
/// entries, same storage bytes — or an [`IncrementalError`] when the
/// delta is outside the scheme (caller rebuilds).
///
/// `new_graph` may only add edges or lower weights relative to
/// `old_graph`; authorities are free to change (labels never read them,
/// though an authority-driven `order_kind` will trip
/// [`IncrementalError::OrderChanged`]).
pub fn refresh(
    pll: &PrunedLandmarkLabeling,
    old_graph: &ExpertGraph,
    new_graph: &ExpertGraph,
    order_kind: VertexOrder,
    config: &BuildConfig,
) -> Result<(PrunedLandmarkLabeling, IncrementalReport), IncrementalError> {
    let start = Instant::now();
    let n = old_graph.num_nodes();
    if new_graph.num_nodes() != n || pll.num_nodes() != n {
        return Err(IncrementalError::NodeCountChanged);
    }

    let (changed_edges, _structural) = diff_edges(old_graph, new_graph)?;
    if changed_edges.is_empty() {
        // Metadata-only delta (e.g. authority updates): labels are a pure
        // function of the weighted edge set, so the old store is already
        // the answer.
        return Ok((
            PrunedLandmarkLabeling::from_loaded_store(pll.labels().clone(), start.elapsed()),
            IncrementalReport {
                affected_hubs: 0,
                patched_nodes: 0,
                unchanged: true,
            },
        ));
    }

    // Hub ranks must be stable: labels store ranks, so any reordering
    // invalidates every plane at once. (Weight-only deltas keep degrees,
    // but added edges — or authority-driven orders — can reshuffle.)
    let order = compute_order(old_graph, order_kind);
    if order != compute_order(new_graph, order_kind) {
        return Err(IncrementalError::OrderChanged);
    }
    let mut rank_of = vec![0u32; n];
    for (k, h) in order.iter().enumerate() {
        rank_of[h.index()] = k as u32;
    }

    // Decode every label once; `work` is mutated into the final state.
    // `planes[r]` is hub r's stored emission plane, sorted by node
    // (ascending-v decode order keeps it sorted for free).
    let mut work: Vec<Vec<LabelEntry>> =
        (0..n).map(|v| pll.labels().entries(v).collect()).collect();
    let mut planes: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for (v, list) in work.iter().enumerate() {
        for e in list {
            planes[e.hub_rank as usize].push((v as u32, e.dist));
        }
    }

    let mut queue = HubQueue::new(n);
    for &(u, v) in &changed_edges {
        queue.push_label_hubs(&work, u.index(), 0);
        queue.push_label_hubs(&work, v.index(), 0);
        // Rank 0 is excluded by the `> above` filter but is a legitimate
        // seed; and a node covered at distance zero may not carry itself.
        if let Some(e) = work[u.index()].first() {
            queue.push(e.hub_rank);
        }
        if let Some(e) = work[v.index()].first() {
            queue.push(e.hub_rank);
        }
        queue.push(rank_of[u.index()]);
        queue.push(rank_of[v.index()]);
    }

    let budget = config
        .incremental_hub_budget
        .unwrap_or_else(|| default_hub_budget(n));
    let mut scratch = SearchScratch::new(n);
    let mut emitted: Vec<(u32, f64)> = Vec::new();
    let mut dirty_mark = vec![false; n];
    let mut dirty_nodes: Vec<usize> = Vec::new();
    let mut touched_this_hub: Vec<u32> = Vec::new();
    let mut processed = 0usize;

    while let Some(r) = queue.pop() {
        processed += 1;
        if processed > budget {
            return Err(IncrementalError::HubBudgetExceeded {
                affected: processed + queue.heap.len(),
                budget,
            });
        }
        let hub = order[r as usize];

        // Re-run hub r's full pruned search on the new graph against the
        // final rank-<r labels — bit-for-bit the sequential build's step.
        emitted.clear();
        {
            let view = RankBounded {
                lists: &work,
                bound: r,
            };
            pruned_dijkstra(new_graph, hub, &view, &mut scratch, |node, _parent, d| {
                emitted.push((node, d));
            });
        }
        // Emissions arrive in settle order; the diff below merge-joins by
        // node against the stored plane.
        emitted.sort_unstable_by_key(|&(node, _)| node);

        // Diff the re-searched plane against the stored one and patch
        // every differing node's label in place.
        touched_this_hub.clear();
        let old_plane = std::mem::take(&mut planes[r as usize]);
        let (mut i, mut j) = (0usize, 0usize);
        while i < old_plane.len() || j < emitted.len() {
            let old_node = old_plane.get(i).map(|&(x, _)| x);
            let new_node = emitted.get(j).map(|&(x, _)| x);
            if let Some(x) = old_node.filter(|&x| new_node.is_none_or(|y| x < y)) {
                // Entry vanished: the new search prunes this node.
                patch_label(&mut work[x as usize], r, None);
                touched_this_hub.push(x);
                i += 1;
            } else if new_node.is_some() && (old_node.is_none() || new_node < old_node) {
                // Entry appeared: the node is newly labeled by hub r.
                let (y, nd) = emitted[j];
                patch_label(&mut work[y as usize], r, Some(nd));
                touched_this_hub.push(y);
                j += 1;
            } else {
                let (x, od) = old_plane[i];
                let (_, nd) = emitted[j];
                if od.to_bits() != nd.to_bits() {
                    patch_label(&mut work[x as usize], r, Some(nd));
                    touched_this_hub.push(x);
                }
                i += 1;
                j += 1;
            }
        }
        planes[r as usize] = emitted.clone();

        // Propagate: a changed label at node x can flip prune tests of any
        // later hub whose search reaches x — all such hubs appear in x's
        // label, in a new-graph neighbour's label, or are x itself.
        for &x in &touched_this_hub {
            let xi = x as usize;
            if !dirty_mark[xi] {
                dirty_mark[xi] = true;
                dirty_nodes.push(xi);
            }
            if rank_of[xi] > r {
                queue.push(rank_of[xi]);
            }
            queue.push_label_hubs(&work, xi, r);
            for (y, _) in new_graph.neighbors(NodeId::from_index(xi)) {
                queue.push_label_hubs(&work, y.index(), r);
            }
        }
    }

    if dirty_nodes.is_empty() {
        return Ok((
            PrunedLandmarkLabeling::from_loaded_store(pll.labels().clone(), start.elapsed()),
            IncrementalReport {
                affected_hubs: processed,
                patched_nodes: 0,
                unchanged: true,
            },
        ));
    }

    dirty_nodes.sort_unstable();
    let store = match pll.labels() {
        LabelStore::Csr(l) => LabelStore::Csr(l.patched(&work, &dirty_nodes)),
        LabelStore::Compressed(l) => LabelStore::Compressed(l.patched(&work, &dirty_nodes)),
        LabelStore::CsrDict(l) => LabelStore::CsrDict(l.patched(&work, &dirty_nodes)),
        LabelStore::CompressedDict(l) => LabelStore::CompressedDict(l.patched(&work, &dirty_nodes)),
    };
    Ok((
        PrunedLandmarkLabeling::from_loaded_store(store, start.elapsed()),
        IncrementalReport {
            affected_hubs: processed,
            patched_nodes: dirty_nodes.len(),
            unchanged: false,
        },
    ))
}

/// Inserts, replaces, or removes (`dist == None`) the rank-`r` entry of
/// one node's label list, keeping it rank-ascending.
fn patch_label(list: &mut Vec<LabelEntry>, r: u32, dist: Option<f64>) {
    let pos = list.partition_point(|e| e.hub_rank < r);
    let present = list.get(pos).is_some_and(|e| e.hub_rank == r);
    match dist {
        Some(d) => {
            if present {
                list[pos].dist = d;
            } else {
                list.insert(
                    pos,
                    LabelEntry {
                        hub_rank: r,
                        dist: d,
                    },
                );
            }
        }
        None => {
            debug_assert!(present, "removing a label entry that is not there");
            if present {
                list.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::LabelStorage;
    use atd_graph::GraphBuilder;

    fn grid(rows: usize, cols: usize) -> ExpertGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..rows * cols).map(|_| b.add_node(1.0)).collect();
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    b.add_edge(ids[i], ids[i + 1], 1.0 + (i % 3) as f64 * 0.5)
                        .unwrap();
                }
                if r + 1 < rows {
                    b.add_edge(ids[i], ids[i + cols], 1.0 + (i % 2) as f64)
                        .unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    /// Rebuilds `g` with one edge's weight replaced.
    fn reweighted(g: &ExpertGraph, eu: NodeId, ev: NodeId, w: f64) -> ExpertGraph {
        let mut b = GraphBuilder::new();
        for v in g.nodes() {
            b.add_node(g.authority(v));
        }
        for (u, v, ow) in g.edges() {
            let nw = if (u, v) == (eu, ev) { w } else { ow };
            b.add_edge(u, v, nw).unwrap();
        }
        b.build().unwrap()
    }

    fn assert_stores_identical(a: &PrunedLandmarkLabeling, b: &PrunedLandmarkLabeling, ctx: &str) {
        assert_eq!(a.num_nodes(), b.num_nodes(), "{ctx}: node counts");
        for v in 0..a.num_nodes() {
            let la: Vec<LabelEntry> = a.labels().entries(v).collect();
            let lb: Vec<LabelEntry> = b.labels().entries(v).collect();
            assert_eq!(la.len(), lb.len(), "{ctx}: label lens at {v}");
            for (x, y) in la.iter().zip(&lb) {
                assert_eq!(x.hub_rank, y.hub_rank, "{ctx}: rank at {v}");
                assert_eq!(
                    x.dist.to_bits(),
                    y.dist.to_bits(),
                    "{ctx}: dist bits at {v}"
                );
            }
        }
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(sa.bytes, sb.bytes, "{ctx}: storage bytes");
    }

    #[test]
    fn lowered_edge_is_bit_identical_on_all_backends() {
        let old = grid(5, 5);
        let new = reweighted(&old, NodeId(0), NodeId(1), 0.25);
        for storage in LabelStorage::ALL {
            let config = BuildConfig {
                storage,
                ..BuildConfig::sequential()
            };
            let pll = PrunedLandmarkLabeling::build_with_config(
                &old,
                VertexOrder::DegreeDescending,
                &config,
            );
            let (inc, report) =
                refresh(&pll, &old, &new, VertexOrder::DegreeDescending, &config).unwrap();
            let scratch = PrunedLandmarkLabeling::build_with_config(
                &new,
                VertexOrder::DegreeDescending,
                &config,
            );
            assert!(report.affected_hubs > 0);
            assert!(!report.unchanged);
            assert_eq!(inc.storage(), storage);
            assert_stores_identical(&inc, &scratch, storage.name());
        }
    }

    #[test]
    fn metadata_only_delta_is_a_clone() {
        let g = grid(4, 4);
        let config = BuildConfig::sequential();
        let pll =
            PrunedLandmarkLabeling::build_with_config(&g, VertexOrder::DegreeDescending, &config);
        let (inc, report) = refresh(&pll, &g, &g, VertexOrder::DegreeDescending, &config).unwrap();
        assert!(report.unchanged);
        assert_eq!(report.affected_hubs, 0);
        assert_stores_identical(&inc, &pll, "identical graph");
    }

    #[test]
    fn node_count_change_is_rejected() {
        let old = grid(3, 3);
        let new = grid(3, 4);
        let config = BuildConfig::sequential();
        let pll =
            PrunedLandmarkLabeling::build_with_config(&old, VertexOrder::DegreeDescending, &config);
        assert_eq!(
            refresh(&pll, &old, &new, VertexOrder::DegreeDescending, &config).unwrap_err(),
            IncrementalError::NodeCountChanged
        );
    }

    #[test]
    fn weight_increase_and_removal_are_rejected() {
        let old = grid(3, 3);
        let config = BuildConfig::sequential();
        let pll =
            PrunedLandmarkLabeling::build_with_config(&old, VertexOrder::DegreeDescending, &config);

        let raised = reweighted(&old, NodeId(0), NodeId(1), 99.0);
        assert_eq!(
            refresh(&pll, &old, &raised, VertexOrder::DegreeDescending, &config).unwrap_err(),
            IncrementalError::WeightIncreased
        );

        let mut b = GraphBuilder::new();
        for v in old.nodes() {
            b.add_node(old.authority(v));
        }
        for (u, v, w) in old.edges().skip(1) {
            b.add_edge(u, v, w).unwrap();
        }
        let removed = b.build().unwrap();
        assert_eq!(
            refresh(&pll, &old, &removed, VertexOrder::DegreeDescending, &config).unwrap_err(),
            IncrementalError::EdgeRemoved
        );
    }

    #[test]
    fn order_change_is_rejected() {
        // Adding edges to a low-degree node reshuffles the degree order.
        let old = grid(3, 3);
        let mut b = GraphBuilder::new();
        for v in old.nodes() {
            b.add_node(old.authority(v));
        }
        for (u, v, w) in old.edges() {
            b.add_edge(u, v, w).unwrap();
        }
        for far in [2u32, 5, 6, 7, 8] {
            b.add_edge(NodeId(0), NodeId(far), 3.0).unwrap();
        }
        let new = b.build().unwrap();
        let config = BuildConfig::sequential();
        let pll =
            PrunedLandmarkLabeling::build_with_config(&old, VertexOrder::DegreeDescending, &config);
        assert_eq!(
            refresh(&pll, &old, &new, VertexOrder::DegreeDescending, &config).unwrap_err(),
            IncrementalError::OrderChanged
        );
    }

    #[test]
    fn zero_budget_forces_fallback() {
        let old = grid(4, 4);
        let new = reweighted(&old, NodeId(0), NodeId(1), 0.25);
        let config = BuildConfig {
            incremental_hub_budget: Some(0),
            ..BuildConfig::sequential()
        };
        let pll =
            PrunedLandmarkLabeling::build_with_config(&old, VertexOrder::DegreeDescending, &config);
        match refresh(&pll, &old, &new, VertexOrder::DegreeDescending, &config) {
            Err(IncrementalError::HubBudgetExceeded { budget: 0, .. }) => {}
            other => panic!("expected HubBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn added_edge_with_stable_order_is_bit_identical() {
        // Two stars whose centers are the unique top-2 by degree with a
        // margin; bridging the centers bumps both degrees by one without
        // disturbing the degree-descending order, so the refresh accepts
        // the added edge.
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..9).map(|_| b.add_node(1.0)).collect();
        for (leaf, w) in [(2usize, 1.0), (3, 1.25), (4, 1.5), (5, 1.0)] {
            b.add_edge(ids[0], ids[leaf], w).unwrap();
        }
        for (leaf, w) in [(6usize, 1.0), (7, 1.25), (8, 1.5)] {
            b.add_edge(ids[1], ids[leaf], w).unwrap();
        }
        b.add_edge(ids[5], ids[6], 2.0).unwrap();
        let old = b.build().unwrap();

        let mut b = GraphBuilder::new();
        for v in old.nodes() {
            b.add_node(old.authority(v));
        }
        for (u, v, w) in old.edges() {
            b.add_edge(u, v, w).unwrap();
        }
        b.add_edge(ids[0], ids[1], 0.5).unwrap();
        let new = b.build().unwrap();

        let config = BuildConfig::sequential();
        let pll =
            PrunedLandmarkLabeling::build_with_config(&old, VertexOrder::DegreeDescending, &config);
        match refresh(&pll, &old, &new, VertexOrder::DegreeDescending, &config) {
            Ok((inc, report)) => {
                let scratch = PrunedLandmarkLabeling::build_with_config(
                    &new,
                    VertexOrder::DegreeDescending,
                    &config,
                );
                assert!(!report.unchanged);
                assert_stores_identical(&inc, &scratch, "added chord");
            }
            Err(IncrementalError::OrderChanged) => {
                panic!("bridging the top-2 degree nodes should keep the order")
            }
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn repeated_refreshes_compose() {
        let g0 = grid(4, 5);
        let config = BuildConfig {
            storage: LabelStorage::CompressedDict,
            ..BuildConfig::sequential()
        };
        let mut pll =
            PrunedLandmarkLabeling::build_with_config(&g0, VertexOrder::DegreeDescending, &config);
        let mut cur = g0;
        for (step, (u, v, w)) in [
            (NodeId(0), NodeId(1), 0.75),
            (NodeId(5), NodeId(10), 0.5),
            (NodeId(0), NodeId(1), 0.25),
        ]
        .into_iter()
        .enumerate()
        {
            let next = reweighted(&cur, u, v, w);
            let (inc, _) =
                refresh(&pll, &cur, &next, VertexOrder::DegreeDescending, &config).unwrap();
            let scratch = PrunedLandmarkLabeling::build_with_config(
                &next,
                VertexOrder::DegreeDescending,
                &config,
            );
            assert_stores_identical(&inc, &scratch, &format!("step {step}"));
            pll = inc;
            cur = next;
        }
    }

    /// Pins the default-budget policy to the measurement that motivated
    /// it: a single-edge relax on the 2270-node DBLP testbed touches
    /// ≈840 hubs, which must resolve to the incremental path — not a
    /// full rebuild — under the `None` default.
    #[test]
    fn default_budget_keeps_testbed_single_relax_incremental() {
        assert_eq!(default_hub_budget(2270), 1135);
        assert!(
            default_hub_budget(2270) > 840,
            "an 840-hub single-edge relax on n=2270 must fit the default budget"
        );
        // Floor for tiny graphs, where a relax can touch every hub.
        assert_eq!(default_hub_budget(0), 64);
        assert_eq!(default_hub_budget(100), 64);
        assert_eq!(default_hub_budget(10_000), 5_000);
    }
}
