//! Pruned landmark labeling (2-hop cover) for weighted graphs.
//!
//! Construction (Akiba et al., SIGMOD 2013, generalized to non-negative
//! edge weights): process vertices in a centrality order; for the vertex
//! `h` of rank `k`, run a **pruned Dijkstra** from `h`. When a node `u` is
//! settled at distance `d`, first ask the labels built so far whether some
//! earlier hub already certifies `dist(h, u) <= d`; if so, prune (neither
//! label `u` nor expand it). Otherwise append `(k, d)` to `u`'s label and
//! expand. The resulting labels form a 2-hop cover: for every pair
//! `(u, v)`, some hub on a shortest `u`–`v` path appears in both labels, so
//! the merge-join query returns the exact distance.
//!
//! ## Batch-synchronous parallel construction
//!
//! Within one hub's search, pruning only ever consults labels of *strictly
//! lower* rank — a hub's own entries are invisible to its own prune tests.
//! The parallel builder exploits this: the vertex order is cut into rank
//! batches; within a batch every worker thread runs pruned Dijkstras for
//! its round-robin share of hubs against a **frozen snapshot** of the
//! labels committed by earlier batches, journaling surviving `(node, dist)`
//! candidates into a per-thread [`ShardedJournal`] shard. Because the
//! snapshot is missing same-batch lower-rank labels, each search prunes
//! *less* than the sequential build would — candidate lists are supersets
//! with never-larger distances.
//!
//! At the batch barrier the shards are merged in rank order: each hub's
//! candidates are **replayed** in settle order against the live merged
//! labels, re-evaluating the exact prune test the sequential build would
//! have run. Each candidate also carries its search-tree parent, which
//! makes the replay surgical:
//!
//! * parent clean → the candidate's settle distance is provably what the
//!   sequential search computes, so the prune test is exact: it either
//!   **commits** (clean) or is **dropped in place** (pruned — a leaf-side
//!   invalidation by a same-batch lower-rank hub, the common case);
//! * parent pruned or dirty → the candidate's true distance may differ
//!   (its recorded shortest path was cut), so it is marked **dirty**; the
//!   hub then runs a **repair search** — the same settle/prune/expand loop
//!   as the sequential build, but seeded from the clean frontier with
//!   clean and pruned nodes pre-settled, so it recomputes only the dirty
//!   region instead of re-running the whole hub.
//!
//! The repair search settles exactly the nodes the sequential search
//! would have settled beyond the clean set, at bitwise-identical
//! distances (every seeded relaxation is a sequential relaxation and
//! vice versa), so the final label set is **bit-identical to the
//! sequential build for every thread count and batch size** — enforced by
//! `tests/proptest_pll_parallel.rs`.
//!
//! Batch sizes ramp `1, 2, 4, …` up to [`BuildConfig::batch_size`] so the
//! earliest, most label-shaping hubs commit before wide batches begin —
//! keeping repairs (and their serial re-search cost) rare.

use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use atd_graph::{ExpertGraph, MinHeapEntry, NodeId, TotalF64};

use crate::codec::{LabelStorage, LabelStore};
use crate::label::{LabelEntry, LabelSetBuilder, LabelStats, ShardedJournal};
use crate::oracle::DistanceOracle;
use crate::order::{compute_order, VertexOrder};
use crate::scatter::SourceScatter;

/// Construction settings for the batch-synchronous parallel builder.
///
/// Mirrors the root scan's `DiscoveryOptions::threads` pattern: `None`
/// means available parallelism, `Some(1)` is the exact sequential
/// algorithm (the degenerate case the parallel paths are differentially
/// tested against).
///
/// ```
/// use atd_distance::{BuildConfig, LabelStorage};
/// // Sequential build that keeps its labels compressed:
/// let config = BuildConfig {
///     storage: LabelStorage::Compressed,
///     ..BuildConfig::sequential()
/// };
/// assert_eq!(config.threads, Some(1));
/// assert_eq!(BuildConfig::default().storage, LabelStorage::Csr);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildConfig {
    /// Worker threads for batch searches (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Upper bound on hubs per rank batch; batches ramp `1, 2, 4, …` up to
    /// this cap.
    pub batch_size: usize,
    /// Physical label representation the built index keeps — flat CSR or
    /// delta+varint ranks × flat `f64` or dictionary-coded distances
    /// (see [`LabelStorage`]). Queries are bit-identical for every
    /// backend; this trades memory footprint against per-entry decode
    /// work.
    pub storage: LabelStorage,
    /// Maximum affected hubs an incremental refresh
    /// ([`crate::incremental::refresh`]) may re-search before bailing out
    /// to a full rebuild. `None` picks `max(64, n / 2)` — per-hub patch
    /// cost tracks per-hub build cost, so incremental wins below roughly
    /// half the hubs (a single-edge relax on the 2270-node DBLP testbed
    /// touches ≈840 hubs and must stay on the incremental path).
    /// `Some(0)` forces the fallback for every label-touching delta.
    pub incremental_hub_budget: Option<usize>,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            threads: None,
            batch_size: 64,
            storage: LabelStorage::Csr,
            incremental_hub_budget: None,
        }
    }
}

impl BuildConfig {
    /// The single-threaded configuration: the exact sequential algorithm,
    /// with no snapshot/journal machinery on the hot path.
    pub fn sequential() -> Self {
        BuildConfig {
            threads: Some(1),
            ..BuildConfig::default()
        }
    }

    fn resolved_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
            .max(1)
    }
}

/// Timings and counters for one rank batch of the build.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchProfile {
    /// Hubs processed in this batch.
    pub hubs: usize,
    /// Candidate entries journaled by the (frozen-snapshot) searches.
    pub journaled: usize,
    /// Entries actually committed after the merge re-prune.
    pub committed: usize,
    /// Hubs whose candidate tree was cut by a same-batch lower-rank hub
    /// and needed a repair search over the dirty region.
    pub repairs: usize,
    /// Wall-clock of the search phase (parallel across workers).
    pub search: Duration,
    /// Wall-clock of the rank-order merge (replay + repair searches).
    pub merge: Duration,
}

/// Aggregate construction profile: what the build spent where.
#[derive(Clone, Debug, Default)]
pub struct BuildProfile {
    /// Resolved worker thread count.
    pub threads: usize,
    /// Configured batch-size cap.
    pub batch_size: usize,
    /// Per-batch timings, in batch order (a single entry for the
    /// sequential path).
    pub batches: Vec<BatchProfile>,
    /// Total hubs that needed a repair search.
    pub repaired_hubs: usize,
    /// Total candidates journaled across all batches.
    pub journaled_entries: usize,
    /// Total entries committed (= final label entry count).
    pub committed_entries: usize,
    /// Total search-phase wall-clock.
    pub search_time: Duration,
    /// Total merge-phase wall-clock.
    pub merge_time: Duration,
}

impl BuildProfile {
    fn record(&mut self, batch: BatchProfile) {
        self.repaired_hubs += batch.repairs;
        self.journaled_entries += batch.journaled;
        self.committed_entries += batch.committed;
        self.search_time += batch.search;
        self.merge_time += batch.merge;
        self.batches.push(batch);
    }
}

/// Reusable per-worker Dijkstra state: tentative distances, settled marks,
/// touched list, heap, and the hub-label scatter for prune queries.
pub(crate) struct SearchScratch {
    pub(crate) dist: Vec<f64>,
    pub(crate) parent: Vec<u32>,
    pub(crate) settled: Vec<bool>,
    pub(crate) touched: Vec<usize>,
    pub(crate) heap: BinaryHeap<MinHeapEntry>,
    pub(crate) scatter: SourceScatter,
}

impl SearchScratch {
    pub(crate) fn new(n: usize) -> Self {
        SearchScratch {
            dist: vec![f64::INFINITY; n],
            parent: vec![0; n],
            settled: vec![false; n],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
            scatter: SourceScatter::new(n),
        }
    }

    /// Restores `dist`/`settled` to their pristine state (only the
    /// entries the last search touched).
    pub(crate) fn reset(&mut self) {
        for &t in &self.touched {
            self.dist[t] = f64::INFINITY;
            self.settled[t] = false;
        }
        self.touched.clear();
    }
}

/// The label state a pruned search consults: loading one hub's label into
/// the scatter, and evaluating the prune test's cover distance for a
/// settled node. The build paths implement this on [`LabelSetBuilder`];
/// the incremental refresh ([`crate::incremental`]) implements it on a
/// rank-bounded view of decoded labels. Both must evaluate the **exact
/// same float expressions** — `min over entries of
/// `scatter.hub_distance(rank) + dist`` — since this is the float-critical
/// core of the bit-identical contract (min accumulation is pure
/// comparison, so entry iteration order is free).
pub(crate) trait PruneLabels {
    /// Loads `hub`'s current label into `scatter` for O(1) rank lookups.
    fn load_scatter(&self, scatter: &mut SourceScatter, hub: usize);
    /// The tightest distance an already-committed hub certifies between
    /// the scattered hub and `node` (`f64::INFINITY` when uncovered).
    fn covered(&self, scatter: &SourceScatter, node: usize) -> f64;
}

impl PruneLabels for LabelSetBuilder {
    #[inline]
    fn load_scatter(&self, scatter: &mut SourceScatter, hub: usize) {
        scatter.load_entries(hub, self.entries(hub));
    }

    #[inline]
    fn covered(&self, scatter: &SourceScatter, node: usize) -> f64 {
        let mut covered = f64::INFINITY;
        for e in self.entries(node) {
            let via = scatter.hub_distance(e.hub_rank) + e.dist;
            if via < covered {
                covered = via;
            }
        }
        covered
    }
}

/// One pruned Dijkstra from `hub` against the label state in `labels`,
/// emitting surviving `(node, parent, dist)` candidates in settle order
/// (`parent` = the node's predecessor in the search tree, itself for the
/// hub).
///
/// This is the algorithm's float-critical core: the sequential build, the
/// parallel batch phase (frozen snapshot), and the merge repair all run
/// this exact routine, so every path evaluates identical expressions over
/// identical values — the root of the bit-identical guarantee.
pub(crate) fn pruned_dijkstra<L: PruneLabels>(
    g: &ExpertGraph,
    hub: NodeId,
    labels: &L,
    scratch: &mut SearchScratch,
    emit: impl FnMut(u32, u32, f64),
) {
    // Scatter the hub's current label for O(|label(u)|) prune queries.
    labels.load_scatter(&mut scratch.scatter, hub.index());

    scratch.heap.clear();
    scratch.dist[hub.index()] = 0.0;
    scratch.parent[hub.index()] = hub.index() as u32;
    scratch.touched.push(hub.index());
    scratch.heap.push(MinHeapEntry {
        dist: TotalF64::ZERO,
        node: hub,
    });

    run_pruned_search(g, labels, scratch, emit);
    scratch.reset();
}

/// The settle → prune-test → expand loop over a pre-seeded scratch (heap,
/// tentative distances, settled marks, and the hub scatter must already
/// be set up). Shared by the full search ([`pruned_dijkstra`]) and the
/// batch-merge repair search, which seeds it from the clean frontier
/// instead of the hub. Does NOT reset the scratch.
pub(crate) fn run_pruned_search<L: PruneLabels>(
    g: &ExpertGraph,
    labels: &L,
    scratch: &mut SearchScratch,
    mut emit: impl FnMut(u32, u32, f64),
) {
    let SearchScratch {
        dist,
        parent,
        settled,
        touched,
        heap,
        scatter,
    } = scratch;

    while let Some(MinHeapEntry { dist: d, node: u }) = heap.pop() {
        let ui = u.index();
        if settled[ui] {
            continue;
        }
        settled[ui] = true;
        let d = d.get();

        // Prune: if an earlier hub already certifies a distance <= d
        // between `hub` and `u`, this entry is redundant.
        if labels.covered(scatter, ui) <= d {
            continue;
        }

        emit(ui as u32, parent[ui], d);

        for (v, w) in g.neighbors(u) {
            let vi = v.index();
            if settled[vi] {
                continue;
            }
            let nd = d + w;
            if nd < dist[vi] {
                if !dist[vi].is_finite() {
                    touched.push(vi);
                }
                dist[vi] = nd;
                parent[vi] = ui as u32;
                heap.push(MinHeapEntry {
                    dist: TotalF64::expect(nd),
                    node: v,
                });
            }
        }
    }
}

/// A built pruned-landmark-labeling index.
///
/// Queries are exact shortest-path distances; see
/// [`PrunedLandmarkLabeling::build`] for construction.
#[derive(Debug)]
pub struct PrunedLandmarkLabeling {
    labels: LabelStore,
    num_nodes: usize,
    build_time: Duration,
    profile: BuildProfile,
}

impl PrunedLandmarkLabeling {
    /// Builds the index with the default (degree-descending) vertex order
    /// and default [`BuildConfig`] (all available cores).
    pub fn build(g: &ExpertGraph) -> Self {
        Self::build_with_order(g, VertexOrder::DegreeDescending)
    }

    /// Builds the index with an explicit vertex order and the default
    /// [`BuildConfig`].
    pub fn build_with_order(g: &ExpertGraph, order_kind: VertexOrder) -> Self {
        Self::build_with_config(g, order_kind, &BuildConfig::default())
    }

    /// Builds the index with explicit order and construction settings.
    ///
    /// The result is bit-identical for every `threads` / `batch_size`
    /// combination (see the module docs for why).
    pub fn build_with_config(
        g: &ExpertGraph,
        order_kind: VertexOrder,
        config: &BuildConfig,
    ) -> Self {
        let start = Instant::now();
        let n = g.num_nodes();
        let order = compute_order(g, order_kind);
        let threads = config.resolved_threads().clamp(1, n.max(1));
        let cap = config.batch_size.max(1);

        // Labels grow grouped by hub; the builder journals them into flat
        // arenas and converts to CSR at the end (no per-node Vecs).
        let mut labels = LabelSetBuilder::new(n);
        let mut profile = BuildProfile {
            threads,
            batch_size: cap,
            ..BuildProfile::default()
        };

        if threads == 1 || cap == 1 || n < 2 {
            Self::build_sequential(g, &order, &mut labels, &mut profile);
        } else {
            Self::build_batched(g, &order, threads, cap, &mut labels, &mut profile);
        }

        // The journaled labels convert straight into the configured
        // storage — the compressed paths never materialize the CSR
        // arrays, and the dict paths never materialize the flat f64
        // distance array.
        let labels = match config.storage {
            LabelStorage::Csr => LabelStore::Csr(labels.finish()),
            LabelStorage::Compressed => LabelStore::Compressed(labels.finish_compressed()),
            LabelStorage::CsrDict => LabelStore::CsrDict(labels.finish_csr_dict()),
            LabelStorage::CompressedDict => {
                LabelStore::CompressedDict(labels.finish_compressed_dict())
            }
        };
        PrunedLandmarkLabeling {
            labels,
            num_nodes: n,
            build_time: start.elapsed(),
            profile,
        }
    }

    /// Wraps a label store deserialized by `persist.rs` (which has
    /// already validated it against the graph): no construction happened,
    /// so the profile is empty and `build_time` records the load wall
    /// time.
    pub(crate) fn from_loaded_store(
        labels: LabelStore,
        load_time: Duration,
    ) -> PrunedLandmarkLabeling {
        PrunedLandmarkLabeling {
            num_nodes: labels.num_nodes(),
            labels,
            build_time: load_time,
            profile: BuildProfile::default(),
        }
    }

    /// The exact sequential algorithm: one pruned Dijkstra per hub in rank
    /// order, each committing before the next begins.
    fn build_sequential(
        g: &ExpertGraph,
        order: &[NodeId],
        labels: &mut LabelSetBuilder,
        profile: &mut BuildProfile,
    ) {
        let t0 = Instant::now();
        let mut scratch = SearchScratch::new(g.num_nodes());
        let mut journal: Vec<(u32, f64)> = Vec::new();
        let mut total = 0usize;
        for (k, &hub) in order.iter().enumerate() {
            journal.clear();
            pruned_dijkstra(g, hub, labels, &mut scratch, |node, _parent, d| {
                journal.push((node, d));
            });
            for &(node, d) in &journal {
                labels.push(
                    node as usize,
                    LabelEntry {
                        hub_rank: k as u32,
                        dist: d,
                    },
                );
            }
            total += journal.len();
        }
        profile.record(BatchProfile {
            hubs: order.len(),
            journaled: total,
            committed: total,
            repairs: 0,
            search: t0.elapsed(),
            merge: Duration::ZERO,
        });
    }

    /// The batch-synchronous parallel algorithm (see module docs).
    fn build_batched(
        g: &ExpertGraph,
        order: &[NodeId],
        threads: usize,
        cap: usize,
        labels: &mut LabelSetBuilder,
        profile: &mut BuildProfile,
    ) {
        /// Replay states per node while merging one hub's candidates.
        const NOT_SEEN: u8 = 0;
        const CLEAN: u8 = 1;
        const PRUNED: u8 = 2;

        let n = g.num_nodes();
        let mut journal = ShardedJournal::new(threads);
        let mut scratches: Vec<SearchScratch> =
            (0..threads).map(|_| SearchScratch::new(n)).collect();
        let mut refill: Vec<(u32, f64)> = Vec::new();
        let mut keep: Vec<(u32, f64)> = Vec::new();
        let mut dirt: Vec<u32> = Vec::new();
        let mut state: Vec<u8> = vec![NOT_SEEN; n];

        let mut start_rank = 0usize;
        let mut ramp = 1usize;
        while start_rank < order.len() {
            let size = ramp.min(cap).min(order.len() - start_rank);
            let batch = &order[start_rank..start_rank + size];
            let t_search = Instant::now();

            if size == 1 {
                // Ramp-up batch: search against the live labels directly;
                // trivially identical to the sequential step.
                let hub = batch[0];
                refill.clear();
                pruned_dijkstra(g, hub, labels, &mut scratches[0], |node, _parent, d| {
                    refill.push((node, d));
                });
                let search = t_search.elapsed();
                let t_merge = Instant::now();
                for &(node, d) in &refill {
                    labels.push(
                        node as usize,
                        LabelEntry {
                            hub_rank: start_rank as u32,
                            dist: d,
                        },
                    );
                }
                profile.record(BatchProfile {
                    hubs: 1,
                    journaled: refill.len(),
                    committed: refill.len(),
                    repairs: 0,
                    search,
                    merge: t_merge.elapsed(),
                });
            } else {
                // Search phase: every worker runs its round-robin share of
                // hubs against the frozen snapshot (immutable borrow).
                journal.clear();
                let frozen = &*labels;
                std::thread::scope(|scope| {
                    for (t, (shard, scratch)) in journal
                        .shards_mut()
                        .iter_mut()
                        .zip(scratches.iter_mut())
                        .enumerate()
                    {
                        scope.spawn(move || {
                            let mut i = t;
                            while i < size {
                                shard.begin_hub(i as u32);
                                pruned_dijkstra(g, batch[i], frozen, scratch, |node, parent, d| {
                                    shard.push(node, parent, d);
                                });
                                i += threads;
                            }
                        });
                    }
                });
                let search = t_search.elapsed();
                let journaled = journal.total_entries();

                // Merge phase: replay each hub's candidates in rank order
                // against the live labels. A candidate whose search-tree
                // parent stayed clean settles at provably the same
                // distance in the sequential build, so the replayed prune
                // test is exact — it commits or drops the candidate in
                // place. Candidates whose recorded shortest path got cut
                // (parent pruned or dirty) form the dirty region; a
                // repair search seeded from the clean frontier recomputes
                // exactly that region.
                let t_merge = Instant::now();
                let mut repairs = 0usize;
                let mut committed = 0usize;
                let mut cursor = journal.cursor();
                for (bi, &hub) in batch.iter().enumerate() {
                    let k32 = (start_rank + bi) as u32;
                    let cand = cursor.next_hub().expect("one journal span per batch hub");
                    debug_assert_eq!(cand.batch_idx as usize, bi);

                    let batch_base = start_rank as u32;
                    let scratch = &mut scratches[0];
                    // The frozen-snapshot search already proved every
                    // candidate uncovered by pre-batch labels, so the
                    // replay only has to test entries committed by
                    // same-batch lower-rank hubs — the rank >= batch_base
                    // prefix of the builder's newest-first chains. Load
                    // just that slice of the hub's label (the full label
                    // is reloaded if a repair search is needed).
                    scratch.scatter.load_entries(
                        hub.index(),
                        labels
                            .entries(hub.index())
                            .take_while(|e| e.hub_rank >= batch_base),
                    );
                    keep.clear();
                    dirt.clear();
                    for ((&node, &par), &d) in cand.nodes.iter().zip(cand.parents).zip(cand.dists) {
                        let ni = node as usize;
                        // Parents settle before children, so `state[par]`
                        // is already decided (the hub is its own parent).
                        if par != node && state[par as usize] != CLEAN {
                            dirt.push(node);
                            continue;
                        }
                        // Same-batch slice of the exact prune test
                        // `run_pruned_search` runs: `covered <= d` over
                        // the merged labels iff some same-batch entry
                        // certifies a path of length <= d (the frozen
                        // part was already proven > d).
                        let mut covered_by_batch = false;
                        for e in labels.entries(ni) {
                            if e.hub_rank < batch_base {
                                break;
                            }
                            if scratch.scatter.hub_distance(e.hub_rank) + e.dist <= d {
                                covered_by_batch = true;
                                break;
                            }
                        }
                        if covered_by_batch {
                            state[ni] = PRUNED;
                            scratch.settled[ni] = true;
                            scratch.touched.push(ni);
                        } else {
                            state[ni] = CLEAN;
                            scratch.settled[ni] = true;
                            scratch.dist[ni] = d;
                            scratch.touched.push(ni);
                            keep.push((node, d));
                        }
                    }

                    // Commit the clean part. Rank-k entries are invisible
                    // to later prune tests (a node settles at most once
                    // per hub), so committing before the repair is safe.
                    for &(node, d) in &keep {
                        labels.push(
                            node as usize,
                            LabelEntry {
                                hub_rank: k32,
                                dist: d,
                            },
                        );
                    }
                    committed += keep.len();

                    if !dirt.is_empty() {
                        // Repair: re-run the sequential settle loop with
                        // clean and pruned nodes pre-settled. Only dirty
                        // candidates can ever be expanded or labeled here
                        // (anything else the parallel search settled gets
                        // re-pruned unconditionally), and any sequential
                        // path into the dirty region first leaves the
                        // clean set by an edge into a dirty candidate —
                        // so seeding every clean→dirty relaxation, read
                        // off each dirty candidate's clean-settled
                        // neighbors, dominates all entry paths. Each seed
                        // is a relaxation the sequential search performs.
                        repairs += 1;
                        // The repair's prune tests walk full labels, so
                        // it needs the hub's full scatter.
                        scratch
                            .scatter
                            .load_entries(hub.index(), labels.entries(hub.index()));
                        scratch.heap.clear();
                        for &x in &dirt {
                            let xi = x as usize;
                            for (y, w) in g.neighbors(NodeId::from_index(xi)) {
                                let yi = y.index();
                                // Clean-settled neighbors carry exact
                                // distances; pruned ones stay INFINITY.
                                let nd = scratch.dist[yi] + w;
                                if scratch.settled[yi] && nd < scratch.dist[xi] {
                                    if !scratch.dist[xi].is_finite() {
                                        scratch.touched.push(xi);
                                    }
                                    scratch.dist[xi] = nd;
                                    scratch.parent[xi] = yi as u32;
                                    scratch.heap.push(MinHeapEntry {
                                        dist: TotalF64::expect(nd),
                                        node: NodeId::from_index(xi),
                                    });
                                }
                            }
                        }
                        refill.clear();
                        run_pruned_search(g, labels, scratch, |node, _parent, d| {
                            refill.push((node, d));
                        });
                        for &(node, d) in &refill {
                            labels.push(
                                node as usize,
                                LabelEntry {
                                    hub_rank: k32,
                                    dist: d,
                                },
                            );
                        }
                        committed += refill.len();
                    }

                    // Clear replay marks and Dijkstra scratch.
                    for &node in cand.nodes {
                        state[node as usize] = NOT_SEEN;
                    }
                    scratch.reset();
                }
                profile.record(BatchProfile {
                    hubs: size,
                    journaled,
                    committed,
                    repairs,
                    search,
                    merge: t_merge.elapsed(),
                });
            }

            start_rank += size;
            ramp = ramp.saturating_mul(2).min(cap);
        }
    }

    /// Label statistics (index size diagnostics).
    pub fn stats(&self) -> LabelStats {
        self.labels.stats()
    }

    /// Wall-clock construction time.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Per-batch construction profile (search/merge split, journaled vs
    /// committed entries, repair counts).
    pub fn build_profile(&self) -> &BuildProfile {
        &self.profile
    }

    /// Raw query returning `f64::INFINITY` for disconnected pairs.
    #[inline]
    pub fn query_raw(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 0.0;
        }
        self.labels.query(u.index(), v.index())
    }

    /// The underlying label store — CSR or compressed, per
    /// [`BuildConfig::storage`] — for scatter queries and diagnostics.
    #[inline]
    pub fn labels(&self) -> &LabelStore {
        &self.labels
    }

    /// The physical storage backend this index was built with.
    #[inline]
    pub fn storage(&self) -> LabelStorage {
        self.labels.storage()
    }

    /// A one-to-many query scratch sized for this index. Allocate one per
    /// worker thread and reuse it across sources.
    pub fn scatter(&self) -> SourceScatter {
        SourceScatter::for_labels(&self.labels)
    }

    /// Loads `source` into `scatter`, after which
    /// [`query_one_to_many`](Self::query_one_to_many) answers
    /// `distance(source, ·)` in `O(|label(target)|)` each.
    #[inline]
    pub fn load_source(&self, scatter: &mut SourceScatter, source: NodeId) {
        scatter.load(&self.labels, source.index());
    }

    /// Distance from the loaded source to `target`; semantics identical to
    /// [`DistanceOracle::distance`] (`None` when disconnected, `Some(0.0)`
    /// when `target` is the loaded source).
    #[inline]
    pub fn query_one_to_many(&self, scatter: &SourceScatter, target: NodeId) -> Option<f64> {
        if scatter.source() == Some(target.index()) {
            return Some(0.0);
        }
        let d = scatter.distance(&self.labels, target.index());
        d.is_finite().then_some(d)
    }
}

impl DistanceOracle for PrunedLandmarkLabeling {
    #[inline]
    fn distance(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let d = self.query_raw(u, v);
        d.is_finite().then_some(d)
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atd_graph::{dijkstra, GraphBuilder};

    fn grid(rows: usize, cols: usize) -> ExpertGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..rows * cols).map(|_| b.add_node(1.0)).collect();
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    b.add_edge(ids[i], ids[i + 1], 1.0 + (i % 3) as f64 * 0.5)
                        .unwrap();
                }
                if r + 1 < rows {
                    b.add_edge(ids[i], ids[i + cols], 1.0 + (i % 2) as f64)
                        .unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    /// Asserts two indices carry bitwise-equal label sets (regardless of
    /// each index's physical storage backend).
    fn assert_bit_identical(a: &PrunedLandmarkLabeling, b: &PrunedLandmarkLabeling, ctx: &str) {
        assert_eq!(a.num_nodes(), b.num_nodes(), "{ctx}: node counts differ");
        for v in 0..a.num_nodes() {
            let la: Vec<_> = a.labels().entries(v).collect();
            let lb: Vec<_> = b.labels().entries(v).collect();
            assert_eq!(la.len(), lb.len(), "{ctx}: lens differ at {v}");
            for (x, y) in la.iter().zip(&lb) {
                assert_eq!(x.hub_rank, y.hub_rank, "{ctx}: ranks differ at {v}");
                assert_eq!(
                    x.dist.to_bits(),
                    y.dist.to_bits(),
                    "{ctx}: dist bits differ at node {v} ({} vs {})",
                    x.dist,
                    y.dist
                );
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_grid() {
        let g = grid(5, 5);
        let pll = PrunedLandmarkLabeling::build(&g);
        for s in [NodeId(0), NodeId(7), NodeId(24)] {
            let sp = dijkstra(&g, s);
            for v in g.nodes() {
                let expect = sp.distance(v);
                let got = pll.distance(s, v);
                match (expect, got) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-9, "dist({s},{v}) expected {a}, got {b}")
                    }
                    (a, b) => assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn self_distance_is_zero() {
        let g = grid(3, 3);
        let pll = PrunedLandmarkLabeling::build(&g);
        assert_eq!(pll.distance(NodeId(4), NodeId(4)), Some(0.0));
    }

    #[test]
    fn disconnected_pairs_are_none() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0);
        let c = b.add_node(1.0);
        let d = b.add_node(1.0);
        b.add_edge(a, c, 1.0).unwrap();
        let g = b.build().unwrap();
        let pll = PrunedLandmarkLabeling::build(&g);
        assert_eq!(pll.distance(a, d), None);
        assert!(!pll.connected(a, d));
        assert_eq!(pll.distance(a, c), Some(1.0));
    }

    #[test]
    fn all_orders_agree() {
        let g = grid(4, 4);
        let base = PrunedLandmarkLabeling::build_with_order(&g, VertexOrder::DegreeDescending);
        for order in [VertexOrder::IdAscending, VertexOrder::AuthorityDescending] {
            let other = PrunedLandmarkLabeling::build_with_order(&g, order);
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        base.distance(u, v),
                        other.distance(u, v),
                        "order {order:?} disagrees on ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_on_grids() {
        for (rows, cols) in [(4, 4), (6, 5)] {
            let g = grid(rows, cols);
            let seq = PrunedLandmarkLabeling::build_with_config(
                &g,
                VertexOrder::DegreeDescending,
                &BuildConfig::sequential(),
            );
            for threads in [2usize, 4] {
                for batch_size in [2usize, 3, 8, 64] {
                    let par = PrunedLandmarkLabeling::build_with_config(
                        &g,
                        VertexOrder::DegreeDescending,
                        &BuildConfig {
                            threads: Some(threads),
                            batch_size,
                            ..BuildConfig::default()
                        },
                    );
                    assert_bit_identical(
                        &seq,
                        &par,
                        &format!("{rows}x{cols} t={threads} b={batch_size}"),
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_with_zero_weight_edges() {
        // Zero-weight edges create distance ties and zero-distance hub
        // pairs — the nastiest case for the merge replay (a same-batch
        // hub can cover another hub's root at distance 0).
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..12).map(|_| b.add_node(1.0)).collect();
        for i in 0..11 {
            b.add_edge(ids[i], ids[i + 1], if i % 3 == 0 { 0.0 } else { 1.0 })
                .unwrap();
        }
        b.add_edge(ids[0], ids[6], 0.0).unwrap();
        b.add_edge(ids[3], ids[9], 2.0).unwrap();
        let g = b.build().unwrap();
        let seq = PrunedLandmarkLabeling::build_with_config(
            &g,
            VertexOrder::DegreeDescending,
            &BuildConfig::sequential(),
        );
        for threads in [2usize, 4] {
            for batch_size in [2usize, 4, 12] {
                let par = PrunedLandmarkLabeling::build_with_config(
                    &g,
                    VertexOrder::DegreeDescending,
                    &BuildConfig {
                        threads: Some(threads),
                        batch_size,
                        ..BuildConfig::default()
                    },
                );
                assert_bit_identical(&seq, &par, &format!("zero-w t={threads} b={batch_size}"));
            }
        }
    }

    #[test]
    fn build_profile_is_populated() {
        let g = grid(5, 5);
        let par = PrunedLandmarkLabeling::build_with_config(
            &g,
            VertexOrder::DegreeDescending,
            &BuildConfig {
                threads: Some(2),
                batch_size: 8,
                ..BuildConfig::default()
            },
        );
        let p = par.build_profile();
        assert_eq!(p.threads, 2);
        assert_eq!(p.batch_size, 8);
        // Ramp: 1 + 2 + 4 + 8 + 8 + 2 = 25 hubs.
        assert_eq!(p.batches.iter().map(|b| b.hubs).sum::<usize>(), 25);
        assert!(p.batches.len() >= 4, "ramp should produce several batches");
        assert_eq!(p.committed_entries, par.stats().total_entries);
        assert!(
            p.journaled_entries >= p.committed_entries,
            "frozen-snapshot searches journal a superset"
        );

        let seq = PrunedLandmarkLabeling::build_with_config(
            &g,
            VertexOrder::DegreeDescending,
            &BuildConfig::sequential(),
        );
        let sp = seq.build_profile();
        assert_eq!(sp.threads, 1);
        assert_eq!(sp.batches.len(), 1);
        assert_eq!(sp.repaired_hubs, 0);
        assert_eq!(sp.committed_entries, seq.stats().total_entries);
    }

    #[test]
    fn degree_order_produces_smaller_labels_than_id_order_on_star() {
        // On a star the hub must be labeled first for O(1) labels; id order
        // labels everything through the leaves.
        let mut b = GraphBuilder::new();
        let leaves: Vec<NodeId> = (0..20).map(|_| b.add_node(1.0)).collect();
        let hub = b.add_node(1.0);
        for &l in &leaves {
            b.add_edge(hub, l, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let good = PrunedLandmarkLabeling::build_with_order(&g, VertexOrder::DegreeDescending);
        let bad = PrunedLandmarkLabeling::build_with_order(&g, VertexOrder::IdAscending);
        assert!(
            good.stats().total_entries <= bad.stats().total_entries,
            "degree order should not be worse on a star: {:?} vs {:?}",
            good.stats(),
            bad.stats()
        );
    }

    #[test]
    fn every_storage_is_bit_identical_and_compression_is_smaller() {
        let g = grid(6, 6);
        let csr = PrunedLandmarkLabeling::build(&g);
        assert_eq!(csr.storage(), LabelStorage::Csr);
        let a = csr.stats();
        for storage in &LabelStorage::ALL[1..] {
            let other = PrunedLandmarkLabeling::build_with_config(
                &g,
                VertexOrder::DegreeDescending,
                &BuildConfig {
                    storage: *storage,
                    ..BuildConfig::default()
                },
            );
            assert_eq!(other.storage(), *storage);
            assert_bit_identical(&csr, &other, storage.name());
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        csr.query_raw(u, v).to_bits(),
                        other.query_raw(u, v).to_bits(),
                        "{} query ({u},{v})",
                        storage.name()
                    );
                }
            }
            let b = other.stats();
            assert_eq!(a.total_entries, b.total_entries);
            assert_eq!(a.max_entries, b.max_entries);
            assert!(
                b.bytes < a.bytes,
                "{} {} !< csr {}",
                storage.name(),
                b.bytes,
                a.bytes
            );
            assert_eq!(
                b.bytes,
                b.offsets_bytes + b.ranks_bytes + b.dists_bytes + b.dict_bytes,
                "{} plane breakdown must sum to the total",
                storage.name()
            );
        }
    }

    #[test]
    fn every_storage_scatter_agrees() {
        let g = grid(5, 4);
        let csr = PrunedLandmarkLabeling::build(&g);
        let mut sc_csr = csr.scatter();
        for storage in &LabelStorage::ALL[1..] {
            let other = PrunedLandmarkLabeling::build_with_config(
                &g,
                VertexOrder::DegreeDescending,
                &BuildConfig {
                    storage: *storage,
                    ..BuildConfig::default()
                },
            );
            let mut sc_other = other.scatter();
            for u in g.nodes() {
                csr.load_source(&mut sc_csr, u);
                other.load_source(&mut sc_other, u);
                for v in g.nodes() {
                    assert_eq!(
                        csr.query_one_to_many(&sc_csr, v).map(f64::to_bits),
                        other.query_one_to_many(&sc_other, v).map(f64::to_bits),
                        "{} one-to-many ({u},{v})",
                        storage.name()
                    );
                }
            }
        }
    }

    #[test]
    fn single_node_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0);
        let g = b.build().unwrap();
        let pll = PrunedLandmarkLabeling::build(&g);
        assert_eq!(pll.distance(a, a), Some(0.0));
        assert_eq!(pll.num_nodes(), 1);
    }

    #[test]
    fn stats_are_populated() {
        let g = grid(3, 3);
        let pll = PrunedLandmarkLabeling::build(&g);
        let s = pll.stats();
        assert_eq!(s.nodes, 9);
        assert!(s.total_entries >= 9, "every node labels itself at least");
        assert!(s.avg_entries > 0.0);
        // CSR footprint: (9+1) u32 offsets + one u32 + one f64 per entry.
        assert_eq!(s.bytes, 10 * 4 + s.total_entries * (4 + 8));
    }
}
