//! Pruned landmark labeling (2-hop cover) for weighted graphs.
//!
//! Construction (Akiba et al., SIGMOD 2013, generalized to non-negative
//! edge weights): process vertices in a centrality order; for the vertex
//! `h` of rank `k`, run a **pruned Dijkstra** from `h`. When a node `u` is
//! settled at distance `d`, first ask the labels built so far whether some
//! earlier hub already certifies `dist(h, u) <= d`; if so, prune (neither
//! label `u` nor expand it). Otherwise append `(k, d)` to `u`'s label and
//! expand. The resulting labels form a 2-hop cover: for every pair
//! `(u, v)`, some hub on a shortest `u`–`v` path appears in both labels, so
//! the merge-join query returns the exact distance.

use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use atd_graph::{ExpertGraph, NodeId, TotalF64};

use crate::label::{LabelEntry, LabelSet, LabelSetBuilder, LabelStats};
use crate::oracle::DistanceOracle;
use crate::order::{compute_order, VertexOrder};
use crate::scatter::SourceScatter;

/// A built pruned-landmark-labeling index.
///
/// Queries are exact shortest-path distances; see
/// [`PrunedLandmarkLabeling::build`] for construction.
pub struct PrunedLandmarkLabeling {
    labels: LabelSet,
    num_nodes: usize,
    build_time: Duration,
}

impl PrunedLandmarkLabeling {
    /// Builds the index with the default (degree-descending) vertex order.
    pub fn build(g: &ExpertGraph) -> Self {
        Self::build_with_order(g, VertexOrder::DegreeDescending)
    }

    /// Builds the index with an explicit vertex order.
    pub fn build_with_order(g: &ExpertGraph, order_kind: VertexOrder) -> Self {
        let start = Instant::now();
        let n = g.num_nodes();
        let order = compute_order(g, order_kind);

        // Labels grow grouped by hub; the builder journals them into flat
        // arenas and converts to CSR at the end (no per-node Vecs).
        let mut labels = LabelSetBuilder::new(n);

        // Reusable scratch: tentative distances, settled marks, touched list.
        let mut dist = vec![f64::INFINITY; n];
        let mut settled = vec![false; n];
        let mut touched: Vec<usize> = Vec::new();
        // The current hub's label scattered by rank, for O(|label(u)|)
        // prune queries — the same one-to-many engine queries use.
        let mut hub_scatter = SourceScatter::new(n);

        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();

        for (k, &hub) in order.iter().enumerate() {
            let k32 = k as u32;

            // Scatter the hub's current label for fast prune queries.
            hub_scatter.load_entries(hub.index(), labels.entries(hub.index()));

            heap.clear();
            dist[hub.index()] = 0.0;
            touched.push(hub.index());
            heap.push(HeapEntry {
                dist: TotalF64::ZERO,
                node: hub,
            });

            while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
                let ui = u.index();
                if settled[ui] {
                    continue;
                }
                settled[ui] = true;
                let d = d.get();

                // Prune: if an earlier hub already certifies a distance
                // <= d between `hub` and `u`, this entry is redundant.
                let mut covered = f64::INFINITY;
                for e in labels.entries(ui) {
                    let via = hub_scatter.hub_distance(e.hub_rank) + e.dist;
                    if via < covered {
                        covered = via;
                    }
                }
                if covered <= d {
                    continue;
                }

                labels.push(
                    ui,
                    LabelEntry {
                        hub_rank: k32,
                        dist: d,
                    },
                );

                for (v, w) in g.neighbors(u) {
                    let vi = v.index();
                    if settled[vi] {
                        continue;
                    }
                    let nd = d + w;
                    if nd < dist[vi] {
                        if !dist[vi].is_finite() {
                            touched.push(vi);
                        }
                        dist[vi] = nd;
                        heap.push(HeapEntry {
                            dist: TotalF64::expect(nd),
                            node: v,
                        });
                    }
                }
            }

            // Reset Dijkstra scratch for the next hub (only what we
            // touched; the scatter resets itself on the next load).
            for &t in &touched {
                dist[t] = f64::INFINITY;
                settled[t] = false;
            }
            touched.clear();
        }

        PrunedLandmarkLabeling {
            labels: labels.finish(),
            num_nodes: n,
            build_time: start.elapsed(),
        }
    }

    /// Label statistics (index size diagnostics).
    pub fn stats(&self) -> LabelStats {
        self.labels.stats()
    }

    /// Wall-clock construction time.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Raw query returning `f64::INFINITY` for disconnected pairs.
    #[inline]
    pub fn query_raw(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 0.0;
        }
        self.labels.query(u.index(), v.index())
    }

    /// The underlying CSR label store (for scatter queries and
    /// diagnostics).
    #[inline]
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// A one-to-many query scratch sized for this index. Allocate one per
    /// worker thread and reuse it across sources.
    pub fn scatter(&self) -> SourceScatter {
        SourceScatter::for_labels(&self.labels)
    }

    /// Loads `source` into `scatter`, after which
    /// [`query_one_to_many`](Self::query_one_to_many) answers
    /// `distance(source, ·)` in `O(|label(target)|)` each.
    #[inline]
    pub fn load_source(&self, scatter: &mut SourceScatter, source: NodeId) {
        scatter.load(&self.labels, source.index());
    }

    /// Distance from the loaded source to `target`; semantics identical to
    /// [`DistanceOracle::distance`] (`None` when disconnected, `Some(0.0)`
    /// when `target` is the loaded source).
    #[inline]
    pub fn query_one_to_many(&self, scatter: &SourceScatter, target: NodeId) -> Option<f64> {
        if scatter.source() == Some(target.index()) {
            return Some(0.0);
        }
        let d = scatter.distance(&self.labels, target.index());
        d.is_finite().then_some(d)
    }
}

impl DistanceOracle for PrunedLandmarkLabeling {
    #[inline]
    fn distance(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let d = self.query_raw(u, v);
        d.is_finite().then_some(d)
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

/// Min-heap entry (same scheme as the graph crate's Dijkstra).
#[derive(PartialEq, Eq)]
struct HeapEntry {
    dist: TotalF64,
    node: NodeId,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .dist
            .cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atd_graph::{dijkstra, GraphBuilder};

    fn grid(rows: usize, cols: usize) -> ExpertGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..rows * cols).map(|_| b.add_node(1.0)).collect();
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    b.add_edge(ids[i], ids[i + 1], 1.0 + (i % 3) as f64 * 0.5)
                        .unwrap();
                }
                if r + 1 < rows {
                    b.add_edge(ids[i], ids[i + cols], 1.0 + (i % 2) as f64)
                        .unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_dijkstra_on_grid() {
        let g = grid(5, 5);
        let pll = PrunedLandmarkLabeling::build(&g);
        for s in [NodeId(0), NodeId(7), NodeId(24)] {
            let sp = dijkstra(&g, s);
            for v in g.nodes() {
                let expect = sp.distance(v);
                let got = pll.distance(s, v);
                match (expect, got) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-9, "dist({s},{v}) expected {a}, got {b}")
                    }
                    (a, b) => assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn self_distance_is_zero() {
        let g = grid(3, 3);
        let pll = PrunedLandmarkLabeling::build(&g);
        assert_eq!(pll.distance(NodeId(4), NodeId(4)), Some(0.0));
    }

    #[test]
    fn disconnected_pairs_are_none() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0);
        let c = b.add_node(1.0);
        let d = b.add_node(1.0);
        b.add_edge(a, c, 1.0).unwrap();
        let g = b.build().unwrap();
        let pll = PrunedLandmarkLabeling::build(&g);
        assert_eq!(pll.distance(a, d), None);
        assert!(!pll.connected(a, d));
        assert_eq!(pll.distance(a, c), Some(1.0));
    }

    #[test]
    fn all_orders_agree() {
        let g = grid(4, 4);
        let base = PrunedLandmarkLabeling::build_with_order(&g, VertexOrder::DegreeDescending);
        for order in [VertexOrder::IdAscending, VertexOrder::AuthorityDescending] {
            let other = PrunedLandmarkLabeling::build_with_order(&g, order);
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        base.distance(u, v),
                        other.distance(u, v),
                        "order {order:?} disagrees on ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn degree_order_produces_smaller_labels_than_id_order_on_star() {
        // On a star the hub must be labeled first for O(1) labels; id order
        // labels everything through the leaves.
        let mut b = GraphBuilder::new();
        let leaves: Vec<NodeId> = (0..20).map(|_| b.add_node(1.0)).collect();
        let hub = b.add_node(1.0);
        for &l in &leaves {
            b.add_edge(hub, l, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let good = PrunedLandmarkLabeling::build_with_order(&g, VertexOrder::DegreeDescending);
        let bad = PrunedLandmarkLabeling::build_with_order(&g, VertexOrder::IdAscending);
        assert!(
            good.stats().total_entries <= bad.stats().total_entries,
            "degree order should not be worse on a star: {:?} vs {:?}",
            good.stats(),
            bad.stats()
        );
    }

    #[test]
    fn single_node_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0);
        let g = b.build().unwrap();
        let pll = PrunedLandmarkLabeling::build(&g);
        assert_eq!(pll.distance(a, a), Some(0.0));
        assert_eq!(pll.num_nodes(), 1);
    }

    #[test]
    fn stats_are_populated() {
        let g = grid(3, 3);
        let pll = PrunedLandmarkLabeling::build(&g);
        let s = pll.stats();
        assert_eq!(s.nodes, 9);
        assert!(s.total_entries >= 9, "every node labels itself at least");
        assert!(s.avg_entries > 0.0);
    }
}
