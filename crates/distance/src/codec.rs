//! Compressed hub-label storage — per-node delta+varint group blocks.
//!
//! The flat CSR [`LabelSet`] spends 4 bytes per
//! entry on a `u32` hub rank even though ranks are strictly ascending
//! within every node's label: the information content of an entry is its
//! *gap* to the previous rank, which on paper-scale graphs is almost
//! always a small integer. [`CompressedLabelSet`] stores each node's rank
//! list as a delta-encoded LEB128 varint stream instead, cutting the rank
//! bytes to ~1–2 per entry while keeping distances as a flat `f64` array
//! (distances are arbitrary weight sums; lossy compression would break the
//! bit-identical query contract).
//!
//! The streams are grouped into **per-node blocks** addressed by a byte
//! offset array, so the structure keeps the CSR's `O(1)` slice addressing:
//! a scatter query jumps straight to node `v`'s `(byte block, dist slice)`
//! pair and decodes it in one forward pass — exactly the pass the query
//! performs anyway. See `crates/distance/src/README.md` for the byte-level
//! format specification and decode invariants.
//!
//! [`LabelStore`] is the runtime storage dispatcher over the full
//! four-way backend matrix (rank plane × distance plane, the latter in
//! [`dict`](crate::dict)): every query surface ([`LabelStore::query`],
//! [`SourceScatter`](crate::scatter::SourceScatter)) evaluates the same
//! sums over the same common hubs in the same ascending rank order for
//! every backend, so results are **bit-identical** across storages —
//! enforced by `tests/proptest_codec.rs` and `tests/proptest_scatter.rs`.

use crate::dict::{CompressedDictLabelSet, DictDecoder, DictEntries, DictLabelSet};
use crate::label::{
    merge_join_entries, LabelEntry, LabelRef, LabelSet, LabelSetBuilder, LabelStats,
};
use crate::plane::Plane;

#[cfg(test)]
use crate::label::merge_join_min;

/// Which physical representation a built index keeps its labels in.
///
/// The storage matrix is two orthogonal axes — the **rank plane** (flat
/// `u32` CSR array vs. delta+varint blocks) × the **distance plane**
/// (flat `f64` array vs. dictionary codes into a sorted value table) —
/// giving four backends. All four answer every query bit-identically;
/// the choice trades memory footprint against per-entry decode work on
/// the query scan. Threaded through `BuildConfig::storage`,
/// `DiscoveryOptions::pll_build`, and `experiments --pll-storage`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LabelStorage {
    /// Flat CSR arrays: `u32` ranks + `f64` dists ([`LabelSet`]).
    #[default]
    Csr,
    /// Delta+varint rank blocks + flat `f64` dists
    /// ([`CompressedLabelSet`]).
    Compressed,
    /// Flat CSR `u32` ranks + dictionary-coded dists
    /// ([`DictLabelSet`]).
    CsrDict,
    /// Delta+varint rank blocks + dictionary-coded dists
    /// ([`CompressedDictLabelSet`]) — the smallest backend.
    CompressedDict,
}

impl LabelStorage {
    /// Every backend, in CSR-first order — what backend sweeps (benches,
    /// equivalence proptests) iterate. Parallel to [`LabelStorage::NAMES`]
    /// and to the on-disk storage tag of `persist.rs`.
    pub const ALL: [LabelStorage; 4] = [
        LabelStorage::Csr,
        LabelStorage::Compressed,
        LabelStorage::CsrDict,
        LabelStorage::CompressedDict,
    ];

    /// The CLI name of every backend, parallel to [`LabelStorage::ALL`] —
    /// the **single** source the parser ([`LabelStorage::parse`]), the
    /// display name ([`LabelStorage::name`]) and every usage/error string
    /// ([`LabelStorage::usage`]) derive from, so adding a backend cannot
    /// leave a stale CLI list behind.
    pub const NAMES: [&'static str; 4] = ["csr", "compressed", "csr-dict", "compressed-dict"];

    /// Parses a CLI name
    /// (`"csr"` / `"compressed"` / `"csr-dict"` / `"compressed-dict"`).
    ///
    /// ```
    /// use atd_distance::LabelStorage;
    /// assert_eq!(LabelStorage::parse("csr"), Some(LabelStorage::Csr));
    /// assert_eq!(
    ///     LabelStorage::parse("compressed-dict"),
    ///     Some(LabelStorage::CompressedDict)
    /// );
    /// assert_eq!(LabelStorage::parse("zstd"), None);
    /// for s in LabelStorage::ALL {
    ///     assert_eq!(LabelStorage::parse(s.name()), Some(s));
    /// }
    /// ```
    pub fn parse(s: &str) -> Option<LabelStorage> {
        LabelStorage::ALL.into_iter().find(|b| b.name() == s)
    }

    /// The CLI name [`LabelStorage::parse`] accepts for this backend.
    pub fn name(self) -> &'static str {
        LabelStorage::NAMES[self as usize]
    }

    /// The `|`-joined backend list (`"csr|compressed|…"`) for usage
    /// strings and unknown-name error messages.
    ///
    /// ```
    /// use atd_distance::LabelStorage;
    /// assert_eq!(LabelStorage::usage(), LabelStorage::NAMES.join("|"));
    /// ```
    pub fn usage() -> String {
        LabelStorage::NAMES.join("|")
    }
}

/// Appends `value` to `out` as an LEB128 varint (7 payload bits per byte,
/// high bit = continuation; 1 byte for values < 128, at most 5 for `u32`).
#[inline]
pub(crate) fn write_varint(mut value: u32, out: &mut Vec<u8>) {
    while value >= 0x80 {
        out.push((value as u8 & 0x7f) | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Why a fallible varint decode rejected its input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum VarintError {
    /// The stream ended inside a varint (a continuation byte was the last
    /// byte, or the slice was empty).
    Truncated,
    /// The encoding does not fit a `u32`: more than five bytes, or payload
    /// bits above bit 31 in the fifth byte. [`write_varint`] never
    /// produces such a stream, so this always means corruption.
    Overflow,
}

/// Fallible LEB128 decode for **untrusted** bytes, advancing `*pos` only
/// on success.
///
/// The unchecked [`read_varint`] is the hot-path form and assumes a
/// well-formed block: on truncated input it panics with an opaque
/// index-out-of-bounds, and on malformed continuation bytes its shift
/// marches past 31, corrupting the decoded value. Load-time validation
/// (`persist.rs`) therefore runs **this** decoder over every block first;
/// the query path keeps the unchecked form, now provably fed only
/// validated streams.
#[inline]
pub(crate) fn try_read_varint(bytes: &[u8], pos: &mut usize) -> Result<u32, VarintError> {
    let mut value = 0u32;
    let mut shift = 0u32;
    let mut cur = *pos;
    loop {
        let &b = bytes.get(cur).ok_or(VarintError::Truncated)?;
        cur += 1;
        let payload = (b & 0x7f) as u32;
        // The fifth byte may only carry u32 bits 28..=31.
        if shift == 28 && payload > 0x0f {
            return Err(VarintError::Overflow);
        }
        value |= payload << shift;
        if b < 0x80 {
            *pos = cur;
            return Ok(value);
        }
        shift += 7;
        if shift > 28 {
            return Err(VarintError::Overflow);
        }
    }
}

/// Reads one LEB128 varint from `bytes` at `*pos`, advancing `*pos`.
///
/// Decode invariant: callers only invoke this with `*pos` inside a
/// well-formed block (the encoder wrote exactly one varint per entry, and
/// loaded blocks are pre-validated with [`try_read_varint`]), so the
/// slice index cannot go out of bounds for in-contract inputs.
#[inline]
pub(crate) fn read_varint(bytes: &[u8], pos: &mut usize) -> u32 {
    let b = bytes[*pos];
    *pos += 1;
    if b < 0x80 {
        return b as u32;
    }
    let mut value = (b & 0x7f) as u32;
    let mut shift = 7;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        value |= ((b & 0x7f) as u32) << shift;
        if b < 0x80 {
            return value;
        }
        shift += 7;
    }
}

/// The sentinel "previous rank" before a block's first entry: the encoder
/// and decoder both start from `rank_{-1} = -1` (as a wrapping `u32`), so
/// every entry — including the first — stores `rank_i - rank_{i-1} - 1`
/// and the decode loop needs no first-entry branch.
pub(crate) const PREV_NONE: u32 = u32::MAX;

/// The label lists of every node as per-node delta+varint blocks.
///
/// Layout (see the format spec in `crates/distance/src/README.md`):
///
/// * `offsets[v]..offsets[v+1]` — node `v`'s slice of the flat `dists`
///   array (identical addressing to the CSR store);
/// * `byte_offsets[v]..byte_offsets[v+1]` — node `v`'s block of
///   `rank_bytes`, holding one varint gap per entry.
///
/// ```
/// use atd_distance::{CompressedLabelSet, LabelEntry, LabelSet};
/// let lists = vec![
///     vec![
///         LabelEntry { hub_rank: 0, dist: 0.0 },
///         LabelEntry { hub_rank: 700, dist: 2.5 },
///     ],
///     vec![LabelEntry { hub_rank: 3, dist: 1.0 }],
/// ];
/// let csr = LabelSet::from_lists(&lists);
/// let compressed = CompressedLabelSet::from_lists(&lists);
/// // Same entries, same query answers (to the bit).
/// assert_eq!(compressed.decode(0).collect::<Vec<_>>(), lists[0]);
/// assert_eq!(compressed.query(0, 1).to_bits(), csr.query(0, 1).to_bits());
/// ```
///
/// The footprint win appears once labels have realistic lengths (the
/// per-node byte-offset array costs 4 bytes, each entry saves ~2–3): on
/// the shared 2270-node testbed the compressed store is ~25% smaller —
/// 75.5% of the CSR baseline (see `LabelStats::bytes` and the README's
/// index memory table).
#[derive(Clone, Debug, Default)]
pub struct CompressedLabelSet {
    // Planes are borrowed-or-owned (`Plane`); encoders write through
    // `vec_mut()` (copy-on-write), readers through `Deref` slices.
    /// Entry offsets into `dists`; `offsets[v]..offsets[v+1]` is node `v`.
    pub(crate) offsets: Plane<u32>,
    /// Byte offsets into `rank_bytes`; one block per node.
    pub(crate) byte_offsets: Plane<u32>,
    /// Concatenated per-node varint gap streams.
    pub(crate) rank_bytes: Plane<u8>,
    /// All distances, flat and uncompressed, parallel to decode order.
    pub(crate) dists: Plane<f64>,
}

impl CompressedLabelSet {
    /// An empty compressed label set for `n` nodes.
    pub fn new(n: usize) -> Self {
        CompressedLabelSet {
            offsets: vec![0; n + 1].into(),
            byte_offsets: vec![0; n + 1].into(),
            rank_bytes: Plane::new(),
            dists: Plane::new(),
        }
    }

    /// Builds a compressed set from per-node entry lists (each strictly
    /// ascending in hub rank). Convenience for tests and fixtures; the PLL
    /// builder uses [`LabelSetBuilder::finish_compressed`].
    pub fn from_lists(lists: &[Vec<LabelEntry>]) -> Self {
        let total: usize = lists.iter().map(|l| l.len()).sum();
        assert!(total <= u32::MAX as usize, "label store overflow");
        let mut out = CompressedLabelSet {
            offsets: Vec::with_capacity(lists.len() + 1).into(),
            byte_offsets: Vec::with_capacity(lists.len() + 1).into(),
            rank_bytes: Plane::new(),
            dists: Vec::with_capacity(total).into(),
        };
        out.offsets.vec_mut().push(0);
        out.byte_offsets.vec_mut().push(0);
        for list in lists {
            out.encode_node(list.iter().copied());
        }
        out
    }

    /// Re-encodes an existing CSR label set.
    pub fn from_label_set(labels: &LabelSet) -> Self {
        let n = labels.num_nodes();
        let mut out = CompressedLabelSet {
            offsets: Vec::with_capacity(n + 1).into(),
            byte_offsets: Vec::with_capacity(n + 1).into(),
            rank_bytes: Plane::new(),
            dists: Vec::with_capacity(labels.stats().total_entries).into(),
        };
        out.offsets.vec_mut().push(0);
        out.byte_offsets.vec_mut().push(0);
        for v in 0..n {
            out.encode_node(labels.of(v).iter());
        }
        out
    }

    /// Appends one node's label — entries in strictly ascending hub rank —
    /// as the next group block, and seals it. The single write path every
    /// constructor funnels through, so all construction routes produce
    /// byte-identical stores (proptested in `tests/proptest_codec.rs`).
    fn encode_node(&mut self, entries: impl IntoIterator<Item = LabelEntry>) {
        let mut prev = PREV_NONE;
        for e in entries {
            debug_assert!(
                prev == PREV_NONE || prev < e.hub_rank,
                "label entries must ascend strictly in hub rank"
            );
            write_varint(gap(prev, e.hub_rank), self.rank_bytes.vec_mut());
            self.dists.vec_mut().push(e.dist);
            prev = e.hub_rank;
        }
        self.close_block();
    }

    /// Seals the current node's block (records both end offsets).
    fn close_block(&mut self) {
        assert!(
            self.dists.len() <= u32::MAX as usize && self.rank_bytes.len() <= u32::MAX as usize,
            "label store overflow"
        );
        let dists_len = self.dists.len() as u32;
        let bytes_len = self.rank_bytes.len() as u32;
        self.offsets.vec_mut().push(dists_len);
        self.byte_offsets.vec_mut().push(bytes_len);
    }

    /// Number of indexed nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Node `v`'s raw `(varint block, dist slice)` pair — the `O(1)` slice
    /// addressing the per-node grouping preserves.
    #[inline]
    pub(crate) fn block(&self, node: usize) -> (&[u8], &[f64]) {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        let blo = self.byte_offsets[node] as usize;
        let bhi = self.byte_offsets[node + 1] as usize;
        (&self.rank_bytes[blo..bhi], &self.dists[lo..hi])
    }

    /// Decodes node `v`'s label: an iterator of entries in strictly
    /// ascending hub rank — the same sequence the CSR store's
    /// [`LabelRef::iter`](crate::label::LabelRef::iter) yields.
    #[inline]
    pub fn decode(&self, node: usize) -> LabelDecoder<'_> {
        let (bytes, dists) = self.block(node);
        LabelDecoder {
            bytes,
            dists,
            pos: 0,
            next: 0,
            prev: PREV_NONE,
        }
    }

    /// Merge-join query over two decoded streams: minimum
    /// `d(u, hub) + d(hub, v)` over common hubs, `f64::INFINITY` when the
    /// labels share none. Bit-identical to [`LabelSet::query`] — same
    /// sums over the same hubs in the same ascending order.
    pub fn query(&self, u: usize, v: usize) -> f64 {
        merge_join_entries(self.decode(u), self.decode(v))
    }

    /// A copy of this store with the blocks of `dirty` nodes (sorted,
    /// deduplicated indices) re-encoded from their lists in `work`; clean
    /// blocks are copied byte-for-byte. Every dirty block goes through
    /// [`CompressedLabelSet::encode_node`] — the single write path all
    /// constructors use — so the result is byte-identical to a
    /// from-scratch encode of the final lists (`crate::incremental`).
    pub(crate) fn patched(&self, work: &[Vec<LabelEntry>], dirty: &[usize]) -> CompressedLabelSet {
        let n = self.num_nodes();
        debug_assert_eq!(work.len(), n);
        debug_assert!(dirty.windows(2).all(|w| w[0] < w[1]), "dirty must ascend");
        // Patching always emits a fully owned store (even over an
        // mmap-backed one): clean blocks are *copied* byte-for-byte, so
        // the shared mapping is never written through.
        let mut out = CompressedLabelSet {
            offsets: Vec::with_capacity(n + 1).into(),
            byte_offsets: Vec::with_capacity(n + 1).into(),
            rank_bytes: Plane::new(),
            dists: Plane::new(),
        };
        out.offsets.vec_mut().push(0);
        out.byte_offsets.vec_mut().push(0);
        let mut di = 0usize;
        for (v, wv) in work.iter().enumerate() {
            if dirty.get(di) == Some(&v) {
                di += 1;
                out.encode_node(wv.iter().copied());
            } else {
                let (bytes, dists) = self.block(v);
                out.rank_bytes.vec_mut().extend_from_slice(bytes);
                out.dists.vec_mut().extend_from_slice(dists);
                out.close_block();
            }
        }
        out
    }

    /// True when any plane borrows from a mapped index file.
    pub(crate) fn is_zero_copy(&self) -> bool {
        self.offsets.is_borrowed()
            || self.byte_offsets.is_borrowed()
            || self.rank_bytes.is_borrowed()
            || self.dists.is_borrowed()
    }

    /// Computes summary statistics. `bytes` counts all four arrays —
    /// the figure to compare against the CSR baseline.
    pub fn stats(&self) -> LabelStats {
        let nodes = self.num_nodes();
        let max_entries = (0..nodes)
            .map(|v| (self.offsets[v + 1] - self.offsets[v]) as usize)
            .max()
            .unwrap_or(0);
        LabelStats::from_parts(
            nodes,
            self.dists.len(),
            max_entries,
            std::mem::size_of::<u32>() * (self.offsets.len() + self.byte_offsets.len()),
            self.rank_bytes.len(),
            std::mem::size_of::<f64>() * self.dists.len(),
            0,
            0,
        )
    }
}

/// The gap the encoder stores for `rank` after `prev` (`PREV_NONE` before
/// the first entry): `rank - prev - 1` in wrapping arithmetic, so the
/// first entry stores its absolute rank and every later one its strict
/// gap minus one.
#[inline]
pub(crate) fn gap(prev: u32, rank: u32) -> u32 {
    rank.wrapping_sub(prev).wrapping_sub(1)
}

/// Streaming decoder over one node's compressed block (strictly ascending
/// hub rank, same order as the CSR slice walk).
#[derive(Clone, Debug)]
pub struct LabelDecoder<'a> {
    bytes: &'a [u8],
    dists: &'a [f64],
    /// Read cursor into `bytes`.
    pos: usize,
    /// Next entry index (parallel cursor into `dists`).
    next: usize,
    /// Previously decoded rank (`PREV_NONE` before the first entry).
    prev: u32,
}

impl Iterator for LabelDecoder<'_> {
    type Item = LabelEntry;

    #[inline]
    fn next(&mut self) -> Option<LabelEntry> {
        let dist = *self.dists.get(self.next)?;
        let delta = read_varint(self.bytes, &mut self.pos);
        let rank = self.prev.wrapping_add(delta).wrapping_add(1);
        self.prev = rank;
        self.next += 1;
        Some(LabelEntry {
            hub_rank: rank,
            dist,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.dists.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for LabelDecoder<'_> {}

/// A built label index in whichever physical storage the build selected.
///
/// All query surfaces dispatch on the variant once per call and then run
/// a storage-specialized loop; both backends produce bit-identical
/// results (same sums over the same common hubs in the same order).
///
/// ```
/// use atd_distance::{LabelEntry, LabelSet, LabelStorage, LabelStore};
/// let csr = LabelSet::from_lists(&[
///     vec![LabelEntry { hub_rank: 0, dist: 0.0 }],
///     vec![LabelEntry { hub_rank: 0, dist: 2.0 }],
/// ]);
/// let store = LabelStore::from(csr);
/// assert_eq!(store.storage(), LabelStorage::Csr);
/// assert_eq!(store.query(0, 1), 2.0);
/// ```
#[derive(Clone, Debug)]
pub enum LabelStore {
    /// Flat CSR arrays.
    Csr(LabelSet),
    /// Delta+varint per-node blocks, flat dists.
    Compressed(CompressedLabelSet),
    /// Flat CSR ranks, dictionary-coded dists.
    CsrDict(DictLabelSet),
    /// Delta+varint rank blocks, dictionary-coded dists.
    CompressedDict(CompressedDictLabelSet),
}

impl From<LabelSet> for LabelStore {
    fn from(labels: LabelSet) -> Self {
        LabelStore::Csr(labels)
    }
}

impl From<CompressedLabelSet> for LabelStore {
    fn from(labels: CompressedLabelSet) -> Self {
        LabelStore::Compressed(labels)
    }
}

impl From<DictLabelSet> for LabelStore {
    fn from(labels: DictLabelSet) -> Self {
        LabelStore::CsrDict(labels)
    }
}

impl From<CompressedDictLabelSet> for LabelStore {
    fn from(labels: CompressedDictLabelSet) -> Self {
        LabelStore::CompressedDict(labels)
    }
}

impl LabelStore {
    /// Which storage backend this store uses.
    #[inline]
    pub fn storage(&self) -> LabelStorage {
        match self {
            LabelStore::Csr(_) => LabelStorage::Csr,
            LabelStore::Compressed(_) => LabelStorage::Compressed,
            LabelStore::CsrDict(_) => LabelStorage::CsrDict,
            LabelStore::CompressedDict(_) => LabelStorage::CompressedDict,
        }
    }

    /// The CSR label set, when that is the active backend (diagnostics
    /// and slice-level tests).
    #[inline]
    pub fn as_csr(&self) -> Option<&LabelSet> {
        match self {
            LabelStore::Csr(l) => Some(l),
            _ => None,
        }
    }

    /// Number of indexed nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        match self {
            LabelStore::Csr(l) => l.num_nodes(),
            LabelStore::Compressed(l) => l.num_nodes(),
            LabelStore::CsrDict(l) => l.num_nodes(),
            LabelStore::CompressedDict(l) => l.num_nodes(),
        }
    }

    /// Node `v`'s label entries in ascending hub rank, independent of
    /// backend.
    #[inline]
    pub fn entries(&self, node: usize) -> LabelEntries<'_> {
        LabelEntries {
            inner: match self {
                LabelStore::Csr(l) => EntriesInner::Csr {
                    label: l.of(node),
                    next: 0,
                },
                LabelStore::Compressed(l) => EntriesInner::Compressed(l.decode(node)),
                LabelStore::CsrDict(l) => EntriesInner::CsrDict(l.entries(node)),
                LabelStore::CompressedDict(l) => EntriesInner::CompressedDict(l.decode(node)),
            },
        }
    }

    /// Pairwise merge-join query; bit-identical across backends.
    #[inline]
    pub fn query(&self, u: usize, v: usize) -> f64 {
        match self {
            LabelStore::Csr(l) => l.query(u, v),
            LabelStore::Compressed(l) => l.query(u, v),
            LabelStore::CsrDict(l) => l.query(u, v),
            LabelStore::CompressedDict(l) => l.query(u, v),
        }
    }

    /// Summary statistics; `bytes` reflects the active backend's real
    /// footprint, broken into planes by the `*_bytes` fields.
    pub fn stats(&self) -> LabelStats {
        match self {
            LabelStore::Csr(l) => l.stats(),
            LabelStore::Compressed(l) => l.stats(),
            LabelStore::CsrDict(l) => l.stats(),
            LabelStore::CompressedDict(l) => l.stats(),
        }
    }

    /// Statistics of these labels re-encoded in `storage`, without
    /// rebuilding the index — the footprint-comparison diagnostic the
    /// benches and examples report. Returns [`LabelStore::stats`] when
    /// `storage` is already the active backend; otherwise re-encodes on
    /// the fly (cheap from CSR, via an entry-list round-trip from the
    /// other backends — a diagnostic path, not a serving path).
    pub fn stats_in(&self, storage: LabelStorage) -> LabelStats {
        if storage == self.storage() {
            return self.stats();
        }
        if let LabelStore::Csr(l) = self {
            return match storage {
                LabelStorage::Csr => unreachable!("handled by the equal-storage case"),
                LabelStorage::Compressed => CompressedLabelSet::from_label_set(l).stats(),
                LabelStorage::CsrDict => DictLabelSet::from_label_set(l).stats(),
                LabelStorage::CompressedDict => CompressedDictLabelSet::from_label_set(l).stats(),
            };
        }
        let lists: Vec<Vec<LabelEntry>> = (0..self.num_nodes())
            .map(|v| self.entries(v).collect())
            .collect();
        match storage {
            LabelStorage::Csr => LabelSet::from_lists(&lists).stats(),
            LabelStorage::Compressed => CompressedLabelSet::from_lists(&lists).stats(),
            LabelStorage::CsrDict => DictLabelSet::from_lists(&lists).stats(),
            LabelStorage::CompressedDict => CompressedDictLabelSet::from_lists(&lists).stats(),
        }
    }

    /// True when any plane of the active backend borrows from a mapped
    /// index file (the store came through
    /// [`LabelStore::load_mmap`](crate::persist) and its planes alias the
    /// page cache rather than owning copies).
    pub fn is_zero_copy(&self) -> bool {
        match self {
            LabelStore::Csr(l) => l.is_zero_copy(),
            LabelStore::Compressed(l) => l.is_zero_copy(),
            LabelStore::CsrDict(l) => l.is_zero_copy(),
            LabelStore::CompressedDict(l) => l.is_zero_copy(),
        }
    }
}

/// Backend-independent iterator over one node's label entries (ascending
/// hub rank), yielded by [`LabelStore::entries`].
pub struct LabelEntries<'a> {
    inner: EntriesInner<'a>,
}

enum EntriesInner<'a> {
    Csr { label: LabelRef<'a>, next: usize },
    Compressed(LabelDecoder<'a>),
    CsrDict(DictEntries<'a>),
    CompressedDict(DictDecoder<'a>),
}

impl Iterator for LabelEntries<'_> {
    type Item = LabelEntry;

    #[inline]
    fn next(&mut self) -> Option<LabelEntry> {
        match &mut self.inner {
            EntriesInner::Csr { label, next } => {
                let rank = *label.hub_ranks.get(*next)?;
                let dist = label.dists[*next];
                *next += 1;
                Some(LabelEntry {
                    hub_rank: rank,
                    dist,
                })
            }
            EntriesInner::Compressed(d) => d.next(),
            EntriesInner::CsrDict(d) => d.next(),
            EntriesInner::CompressedDict(d) => d.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            EntriesInner::Csr { label, next } => {
                let rem = label.len() - next;
                (rem, Some(rem))
            }
            EntriesInner::Compressed(d) => d.size_hint(),
            EntriesInner::CsrDict(d) => d.size_hint(),
            EntriesInner::CompressedDict(d) => d.size_hint(),
        }
    }
}

impl ExactSizeIterator for LabelEntries<'_> {}

impl LabelSetBuilder {
    /// Converts the journaled labels straight to the compressed store —
    /// the uncompressed CSR arrays are **never materialized**. `O(nodes +
    /// entries)` time; the only scratch is one reversal buffer bounded by
    /// the largest single label (the builder's chains are newest-first,
    /// the encoder needs ascending order).
    pub fn finish_compressed(self) -> CompressedLabelSet {
        let n = self.num_nodes();
        let total = self.total_entries();
        let mut out = CompressedLabelSet {
            offsets: Vec::with_capacity(n + 1).into(),
            byte_offsets: Vec::with_capacity(n + 1).into(),
            rank_bytes: Plane::new(),
            dists: Vec::with_capacity(total).into(),
        };
        out.offsets.vec_mut().push(0);
        out.byte_offsets.vec_mut().push(0);
        let mut scratch: Vec<LabelEntry> = Vec::new();
        for v in 0..n {
            scratch.clear();
            scratch.extend(self.entries(v)); // newest first = descending
            out.encode_node(scratch.iter().rev().copied());
        }
        out
    }
}

/// Two-stream compressed merge-join used by tests to cross-check
/// [`CompressedLabelSet::query`] against the slice-level
/// [`merge_join_min`]; kept here so the codec module owns both sides of
/// the equivalence.
#[cfg(test)]
fn reference_query(csr: &LabelSet, u: usize, v: usize) -> f64 {
    let (a, b) = (csr.of(u), csr.of(v));
    merge_join_min(a.hub_ranks, a.dists, b.hub_ranks, b.dists)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(hub_rank: u32, dist: f64) -> LabelEntry {
        LabelEntry { hub_rank, dist }
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 129, 16383, 16384, 1 << 21, u32::MAX];
        for &v in &values {
            write_varint(v, &mut buf);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn try_read_varint_accepts_everything_the_encoder_writes() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 129, 16383, 16384, 1 << 21, u32::MAX];
        for &v in &values {
            write_varint(v, &mut buf);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(try_read_varint(&buf, &mut pos), Ok(v));
        }
        assert_eq!(pos, buf.len());
        assert_eq!(try_read_varint(&buf, &mut pos), Err(VarintError::Truncated));
    }

    #[test]
    fn try_read_varint_rejects_truncation_without_advancing() {
        let mut buf = Vec::new();
        write_varint(u32::MAX, &mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(
                try_read_varint(&buf[..cut], &mut pos),
                Err(VarintError::Truncated),
                "cut at {cut}"
            );
            assert_eq!(pos, 0, "cursor must not move on failure");
        }
    }

    #[test]
    fn try_read_varint_rejects_overflowing_continuations() {
        // Six continuation bytes: the unchecked decoder would shift past 31.
        let runaway = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01];
        let mut pos = 0;
        assert_eq!(
            try_read_varint(&runaway, &mut pos),
            Err(VarintError::Overflow)
        );
        // Five bytes whose fifth carries payload above u32 bit 31.
        let wide = [0xffu8, 0xff, 0xff, 0xff, 0x10];
        let mut pos = 0;
        assert_eq!(try_read_varint(&wide, &mut pos), Err(VarintError::Overflow));
        // The widest legal five-byte value is exactly u32::MAX.
        let max = [0xffu8, 0xff, 0xff, 0xff, 0x0f];
        let mut pos = 0;
        assert_eq!(try_read_varint(&max, &mut pos), Ok(u32::MAX));
    }

    #[test]
    fn varint_width_matches_spec() {
        for (v, width) in [(0u32, 1usize), (127, 1), (128, 2), (16383, 2), (16384, 3)] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            assert_eq!(buf.len(), width, "width of {v}");
        }
        let mut buf = Vec::new();
        write_varint(u32::MAX, &mut buf);
        assert_eq!(buf.len(), 5, "u32::MAX takes the maximum 5 bytes");
    }

    #[test]
    fn decode_matches_lists() {
        let lists = vec![
            vec![e(0, 0.25), e(1, 1.5), e(7, 2.0), e(700_000, 9.0)],
            vec![],
            vec![e(3, 0.5), e(4, 4.0)],
        ];
        let c = CompressedLabelSet::from_lists(&lists);
        assert_eq!(c.num_nodes(), 3);
        for (v, list) in lists.iter().enumerate() {
            let decoded: Vec<LabelEntry> = c.decode(v).collect();
            assert_eq!(&decoded, list, "node {v}");
            assert_eq!(c.decode(v).len(), list.len());
        }
    }

    #[test]
    fn first_entry_stores_absolute_rank() {
        // rank 0 encodes as gap 0 (prev = -1); rank 5 first encodes as 5.
        let c = CompressedLabelSet::from_lists(&[vec![e(5, 1.0), e(6, 2.0)]]);
        let (bytes, dists) = c.block(0);
        assert_eq!(bytes, &[5u8, 0u8], "gap-minus-one encoding");
        assert_eq!(dists.len(), 2);
    }

    #[test]
    fn query_matches_csr_bitwise() {
        let lists = vec![
            vec![e(0, 1.0), e(2, 0.5)],
            vec![e(0, 2.0), e(2, 5.0)],
            vec![e(9, 0.0)],
            vec![],
        ];
        let csr = LabelSet::from_lists(&lists);
        let c = CompressedLabelSet::from_lists(&lists);
        for u in 0..lists.len() {
            for v in 0..lists.len() {
                assert_eq!(
                    c.query(u, v).to_bits(),
                    reference_query(&csr, u, v).to_bits(),
                    "({u},{v})"
                );
            }
        }
    }

    #[test]
    fn stats_count_real_bytes() {
        let lists = vec![vec![e(0, 0.0)], vec![e(0, 1.0), e(1, 0.0)], vec![]];
        let c = CompressedLabelSet::from_lists(&lists);
        let s = c.stats();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.total_entries, 3);
        assert_eq!(s.max_entries, 2);
        // 2×4 offset arrays of 4 u32s, 3 one-byte varints, 3 f64 dists.
        assert_eq!(s.bytes, 2 * 4 * 4 + 3 + 3 * 8);
    }

    #[test]
    fn compression_beats_csr_once_labels_are_realistic() {
        // The second offset array costs 4 bytes per node, the varint
        // stream saves ~3 bytes per entry — compression wins as soon as
        // labels average more than a couple of entries (PLL labels on the
        // testbeds average 50–115).
        let lists: Vec<Vec<LabelEntry>> = (0..8)
            .map(|v| {
                (0..40)
                    .map(|i| e(v + i * 3, 0.5 * i as f64))
                    .collect::<Vec<_>>()
            })
            .collect();
        let csr = LabelSet::from_lists(&lists).stats();
        let comp = CompressedLabelSet::from_lists(&lists).stats();
        assert_eq!(csr.total_entries, comp.total_entries);
        assert!(
            comp.bytes < csr.bytes,
            "compressed {} !< csr {}",
            comp.bytes,
            csr.bytes
        );
    }

    #[test]
    fn builder_finish_compressed_matches_from_lists() {
        let lists = vec![
            vec![e(0, 0.25), e(3, 1.5), e(7, 2.0)],
            vec![],
            vec![e(1, 0.5), e(2, 4.0)],
        ];
        let mut b = LabelSetBuilder::new(3);
        let mut flat: Vec<(usize, LabelEntry)> = Vec::new();
        for (v, l) in lists.iter().enumerate() {
            for &entry in l {
                flat.push((v, entry));
            }
        }
        flat.sort_by_key(|&(_, entry)| entry.hub_rank);
        for (v, entry) in flat {
            b.push(v, entry);
        }
        let c = b.finish_compressed();
        let reference = CompressedLabelSet::from_lists(&lists);
        for v in 0..3 {
            let got: Vec<LabelEntry> = c.decode(v).collect();
            let want: Vec<LabelEntry> = reference.decode(v).collect();
            assert_eq!(got, want, "node {v}");
        }
        assert_eq!(c.stats(), reference.stats());
    }

    #[test]
    fn from_label_set_roundtrips() {
        let lists = vec![vec![e(2, 1.0), e(5, 0.5), e(130, 3.0)], vec![e(0, 0.0)]];
        let csr = LabelSet::from_lists(&lists);
        let c = CompressedLabelSet::from_label_set(&csr);
        for (v, list) in lists.iter().enumerate() {
            let got: Vec<LabelEntry> = c.decode(v).collect();
            assert_eq!(&got, list);
        }
    }

    #[test]
    fn store_dispatch_agrees() {
        let lists = vec![vec![e(0, 1.0), e(2, 0.5)], vec![e(0, 2.0)], vec![]];
        let csr = LabelStore::from(LabelSet::from_lists(&lists));
        let comp = LabelStore::from(CompressedLabelSet::from_lists(&lists));
        assert_eq!(csr.storage(), LabelStorage::Csr);
        assert_eq!(comp.storage(), LabelStorage::Compressed);
        assert!(csr.as_csr().is_some());
        assert!(comp.as_csr().is_none());
        assert_eq!(csr.num_nodes(), comp.num_nodes());
        for u in 0..3 {
            let a: Vec<LabelEntry> = csr.entries(u).collect();
            let b: Vec<LabelEntry> = comp.entries(u).collect();
            assert_eq!(a, b, "entries of {u}");
            for v in 0..3 {
                assert_eq!(csr.query(u, v).to_bits(), comp.query(u, v).to_bits());
            }
        }
        assert_eq!(csr.stats().total_entries, comp.stats().total_entries);
    }

    #[test]
    fn empty_store_is_consistent() {
        let c = CompressedLabelSet::new(2);
        assert_eq!(c.num_nodes(), 2);
        assert_eq!(c.decode(0).count(), 0);
        assert_eq!(c.query(0, 1), f64::INFINITY);
        assert_eq!(c.stats().total_entries, 0);
    }

    #[test]
    fn storage_parse() {
        assert_eq!(LabelStorage::parse("csr"), Some(LabelStorage::Csr));
        assert_eq!(
            LabelStorage::parse("compressed"),
            Some(LabelStorage::Compressed)
        );
        assert_eq!(LabelStorage::parse("flat"), None);
        assert_eq!(LabelStorage::default(), LabelStorage::Csr);
    }
}
