//! Ground-truth oracle: memoized single-source Dijkstra.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use atd_graph::{dijkstra, ExpertGraph, NodeId, ShortestPathTree};

use crate::oracle::DistanceOracle;

/// A [`DistanceOracle`] that lazily runs Dijkstra per source and memoizes
/// the full shortest-path tree.
///
/// Ideal when queries cluster on few sources (e.g. the Random baseline,
/// which reuses a handful of roots, or tests); poor for Algorithm 1's scan
/// over all `N` roots — that is what [`crate::PrunedLandmarkLabeling`] is
/// for. The memo is bounded by `max_cached_sources` and evicts arbitrarily
/// (hash order) beyond it.
pub struct DijkstraOracle<'g> {
    graph: &'g ExpertGraph,
    cache: RwLock<HashMap<u32, Arc<ShortestPathTree>>>,
    max_cached_sources: usize,
}

impl<'g> DijkstraOracle<'g> {
    /// Default cache bound (full SP trees are `O(V)` each).
    pub const DEFAULT_CACHE: usize = 1024;

    /// Creates an oracle over `graph` with the default cache bound.
    pub fn new(graph: &'g ExpertGraph) -> Self {
        Self::with_cache_bound(graph, Self::DEFAULT_CACHE)
    }

    /// Creates an oracle with an explicit cache bound (0 disables caching).
    pub fn with_cache_bound(graph: &'g ExpertGraph, max_cached_sources: usize) -> Self {
        DijkstraOracle {
            graph,
            cache: RwLock::new(HashMap::new()),
            max_cached_sources,
        }
    }

    /// The memoized (or freshly computed) shortest-path tree from `source`.
    pub fn tree(&self, source: NodeId) -> Arc<ShortestPathTree> {
        if let Some(t) = self.cache.read().expect("lock poisoned").get(&source.0) {
            return Arc::clone(t);
        }
        let t = Arc::new(dijkstra(self.graph, source));
        let mut cache = self.cache.write().expect("lock poisoned");
        if cache.len() >= self.max_cached_sources && self.max_cached_sources > 0 {
            // Arbitrary eviction keeps the bound without LRU bookkeeping;
            // workloads that need better locality should size the bound.
            if let Some(&k) = cache.keys().next() {
                cache.remove(&k);
            }
        }
        if self.max_cached_sources > 0 {
            cache.insert(source.0, Arc::clone(&t));
        }
        t
    }

    /// Number of cached sources (diagnostics).
    pub fn cached_sources(&self) -> usize {
        self.cache.read().expect("lock poisoned").len()
    }
}

impl DistanceOracle for DijkstraOracle<'_> {
    fn distance(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.tree(u).distance(v)
    }

    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atd_graph::GraphBuilder;

    fn path_graph(n: usize) -> ExpertGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..n).map(|_| b.add_node(1.0)).collect();
        for i in 0..n - 1 {
            b.add_edge(ids[i], ids[i + 1], 2.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn distances_match_structure() {
        let g = path_graph(5);
        let o = DijkstraOracle::new(&g);
        assert_eq!(o.distance(NodeId(0), NodeId(4)), Some(8.0));
        assert_eq!(o.distance(NodeId(2), NodeId(2)), Some(0.0));
    }

    #[test]
    fn caches_trees_per_source() {
        let g = path_graph(4);
        let o = DijkstraOracle::new(&g);
        assert_eq!(o.cached_sources(), 0);
        o.distance(NodeId(0), NodeId(1));
        o.distance(NodeId(0), NodeId(3));
        assert_eq!(o.cached_sources(), 1, "same source reuses the tree");
        o.distance(NodeId(2), NodeId(0));
        assert_eq!(o.cached_sources(), 2);
    }

    #[test]
    fn cache_bound_is_respected() {
        let g = path_graph(6);
        let o = DijkstraOracle::with_cache_bound(&g, 2);
        for i in 0..5 {
            o.distance(NodeId(i), NodeId(0));
        }
        assert!(o.cached_sources() <= 2);
    }

    #[test]
    fn zero_cache_disables_memoization() {
        let g = path_graph(3);
        let o = DijkstraOracle::with_cache_bound(&g, 0);
        o.distance(NodeId(0), NodeId(2));
        assert_eq!(o.cached_sources(), 0);
    }

    #[test]
    fn disconnected_is_none() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0);
        let c = b.add_node(1.0);
        let g = b.build().unwrap();
        let o = DijkstraOracle::new(&g);
        assert_eq!(o.distance(a, c), None);
    }
}
