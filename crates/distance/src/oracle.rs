//! The distance-oracle abstraction the team-formation layer is generic over.

use atd_graph::NodeId;

/// Answers shortest-path distance queries over a fixed graph.
///
/// Implementations must be consistent with Dijkstra on the graph they were
/// built from: `distance(u, v)` returns the weight of a shortest `u`–`v`
/// path, or `None` when `v` is unreachable from `u`.
///
/// `Sync` is required so Algorithm 1's independent per-root scan can be
/// parallelized with scoped threads.
pub trait DistanceOracle: Sync {
    /// Shortest-path distance between `u` and `v`, or `None` if
    /// disconnected.
    fn distance(&self, u: NodeId, v: NodeId) -> Option<f64>;

    /// Number of nodes in the indexed graph.
    fn num_nodes(&self) -> usize;

    /// True if `u` and `v` are in the same connected component.
    fn connected(&self, u: NodeId, v: NodeId) -> bool {
        self.distance(u, v).is_some()
    }
}

impl<T: DistanceOracle + ?Sized> DistanceOracle for &T {
    fn distance(&self, u: NodeId, v: NodeId) -> Option<f64> {
        (**self).distance(u, v)
    }

    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
}

impl<T: DistanceOracle + Send + ?Sized> DistanceOracle for std::sync::Arc<T> {
    fn distance(&self, u: NodeId, v: NodeId) -> Option<f64> {
        (**self).distance(u, v)
    }

    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
}
