//! Borrowed-or-owned storage planes.
//!
//! Every label backend stores its data as a handful of flat, homogeneous
//! arrays — *planes*: CSR offsets, hub ranks, varint byte streams,
//! distance values, dictionary codes. [`Plane<T>`] abstracts where a
//! plane's memory lives:
//!
//! * **Owned** — a plain `Vec<T>`, produced by builders, incremental
//!   patching, and the portable (decode-and-validate) load path.
//! * **Borrowed** — a `&[T]` view into an [`MmapRegion`] backing an
//!   on-disk index in persist format v2, whose payload is laid out
//!   8-byte-aligned precisely so planes can be reinterpreted in place.
//!   The plane holds an `Arc` to the region, so the mapping lives as
//!   long as any plane borrowed from it.
//!
//! Readers never see the difference: `Plane<T>` derefs to `[T]`, and all
//! query paths work on slices. Writers call [`Plane::vec_mut`], which
//! transparently copies a borrowed plane into owned storage first —
//! copy-on-write by construction, so nothing can ever write through a
//! shared mapping.
//!
//! Borrowing is only constructed by the persist layer, which guarantees
//! (and [`Plane::borrowed`] re-checks) alignment and bounds; element
//! types are restricted to the sealed [`PlanePod`] set, for which every
//! bit pattern is a valid value.

use std::sync::Arc;

use crate::mmap::MmapRegion;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f64 {}
}

/// Marker for element types a plane may hold: plain-old-data numerics
/// where *any* bit pattern is a valid value, so reinterpreting aligned
/// little-endian file bytes as `[T]` is sound. Sealed — exactly
/// `u8`/`u16`/`u32`/`u64`/`f64`.
pub trait PlanePod: sealed::Sealed + Copy + Send + Sync + 'static {}
impl PlanePod for u8 {}
impl PlanePod for u16 {}
impl PlanePod for u32 {}
impl PlanePod for u64 {}
impl PlanePod for f64 {}

enum Repr<T: PlanePod> {
    Owned(Vec<T>),
    Borrowed {
        ptr: *const T,
        len: usize,
        /// Keeps the mapping alive; never read through directly.
        _backing: Arc<MmapRegion>,
    },
}

/// A flat array of `T` that is either owned (`Vec<T>`) or borrowed from
/// a reference-counted [`MmapRegion`]. Derefs to `[T]`; see the module
/// docs for the contract.
pub struct Plane<T: PlanePod> {
    repr: Repr<T>,
}

// SAFETY: `Borrowed` points into an immutable `MmapRegion` (read-only
// mapping or untouched heap buffer) kept alive by the Arc it carries;
// `Owned` is an ordinary Vec. Either way the data is plain `Copy`
// numerics with no interior mutability.
unsafe impl<T: PlanePod> Send for Plane<T> {}
unsafe impl<T: PlanePod> Sync for Plane<T> {}

impl<T: PlanePod> Plane<T> {
    /// An empty owned plane.
    pub fn new() -> Self {
        Plane {
            repr: Repr::Owned(Vec::new()),
        }
    }

    /// Borrow `len` elements of `T` starting `byte_offset` bytes into
    /// `backing`. Returns `None` when the requested window is out of
    /// bounds or misaligned for `T` — callers treat that as a corrupt
    /// file, not a panic. Zero-length borrows normalize to an owned
    /// empty plane (no reason to pin the mapping).
    pub fn borrowed(backing: &Arc<MmapRegion>, byte_offset: usize, len: usize) -> Option<Self> {
        if len == 0 {
            return Some(Plane::new());
        }
        let bytes = backing.as_bytes();
        let elem = std::mem::size_of::<T>();
        let total = len.checked_mul(elem)?;
        let end = byte_offset.checked_add(total)?;
        if end > bytes.len() {
            return None;
        }
        let ptr = bytes[byte_offset..].as_ptr();
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(Plane {
            repr: Repr::Borrowed {
                ptr: ptr as *const T,
                len,
                _backing: Arc::clone(backing),
            },
        })
    }

    /// The plane as a slice (what `Deref` also gives).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v.as_slice(),
            // SAFETY: constructed by `borrowed` over an in-bounds,
            // aligned window of an immutable region pinned by `_backing`.
            Repr::Borrowed { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }

    /// True when the plane borrows from a mapped region rather than
    /// owning its storage.
    pub fn is_borrowed(&self) -> bool {
        matches!(self.repr, Repr::Borrowed { .. })
    }

    /// Mutable access to the underlying `Vec`, converting a borrowed
    /// plane into owned storage first (copy-on-write). Builder and
    /// patch paths go through here, which is what guarantees nothing
    /// ever writes through a shared mapping.
    pub fn vec_mut(&mut self) -> &mut Vec<T> {
        if let Repr::Borrowed { .. } = self.repr {
            self.repr = Repr::Owned(self.as_slice().to_vec());
        }
        match &mut self.repr {
            Repr::Owned(v) => v,
            Repr::Borrowed { .. } => unreachable!("borrowed plane was just copied to owned"),
        }
    }

    /// The owned `Vec`, copying first if borrowed (copy-on-write).
    pub fn into_vec(mut self) -> Vec<T> {
        std::mem::take(self.vec_mut())
    }
}

impl<T: PlanePod> std::ops::Deref for Plane<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: PlanePod> From<Vec<T>> for Plane<T> {
    fn from(v: Vec<T>) -> Self {
        Plane {
            repr: Repr::Owned(v),
        }
    }
}

impl<T: PlanePod> Default for Plane<T> {
    fn default() -> Self {
        Plane::new()
    }
}

impl<T: PlanePod> Clone for Plane<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(v) => Plane {
                repr: Repr::Owned(v.clone()),
            },
            // Cloning a borrow is cheap: same window, one more Arc ref.
            Repr::Borrowed { ptr, len, _backing } => Plane {
                repr: Repr::Borrowed {
                    ptr: *ptr,
                    len: *len,
                    _backing: Arc::clone(_backing),
                },
            },
        }
    }
}

impl<T: PlanePod + std::fmt::Debug> std::fmt::Debug for Plane<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PlanePod + PartialEq> PartialEq for Plane<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region_of(bytes: &[u8]) -> Arc<MmapRegion> {
        let path = std::env::temp_dir().join(format!(
            "atd_plane_{}_{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, bytes).unwrap();
        let r = MmapRegion::map_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        r
    }

    #[test]
    fn owned_roundtrip_and_deref() {
        let p: Plane<u32> = vec![1, 2, 3].into();
        assert_eq!(&p[..], &[1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_borrowed());
        assert_eq!(p.clone().into_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn borrowed_reads_the_mapped_bytes() {
        let mut bytes = Vec::new();
        for v in [10u32, 20, 30, 40] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let region = region_of(&bytes);
        let p = Plane::<u32>::borrowed(&region, 0, 4).unwrap();
        assert!(p.is_borrowed());
        assert_eq!(&p[..], &[10, 20, 30, 40]);
        let q = Plane::<u32>::borrowed(&region, 8, 2).unwrap();
        assert_eq!(&q[..], &[30, 40]);
    }

    #[test]
    fn borrowed_rejects_out_of_bounds_and_misalignment() {
        let region = region_of(&[0u8; 64]);
        assert!(Plane::<u64>::borrowed(&region, 0, 9).is_none(), "past end");
        assert!(
            Plane::<u64>::borrowed(&region, 60, 1).is_none(),
            "tail past end"
        );
        assert!(
            Plane::<u64>::borrowed(&region, 4, 1).is_none(),
            "misaligned"
        );
        assert!(
            Plane::<u32>::borrowed(&region, 2, 1).is_none(),
            "misaligned u32"
        );
        assert!(
            Plane::<u8>::borrowed(&region, 3, 5).is_some(),
            "u8 never misaligned"
        );
        assert!(
            Plane::<u64>::borrowed(&region, usize::MAX, 2).is_none(),
            "offset overflow"
        );
    }

    #[test]
    fn zero_length_borrow_is_owned_and_does_not_pin() {
        let region = region_of(&[0u8; 8]);
        let p = Plane::<u64>::borrowed(&region, 0, 0).unwrap();
        assert!(!p.is_borrowed());
        assert!(p.is_empty());
        assert_eq!(Arc::strong_count(&region), 1);
    }

    #[test]
    fn vec_mut_copies_on_write_and_drops_the_pin() {
        let bytes: Vec<u8> = [1.5f64, 2.5, 3.5]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let region = region_of(&bytes);
        let mut p = Plane::<f64>::borrowed(&region, 0, 3).unwrap();
        assert_eq!(Arc::strong_count(&region), 2);
        p.vec_mut().push(4.5);
        assert!(!p.is_borrowed());
        assert_eq!(&p[..], &[1.5, 2.5, 3.5, 4.5]);
        assert_eq!(Arc::strong_count(&region), 1, "CoW released the mapping");
        // The region still reads its original bytes.
        assert_eq!(region.as_bytes(), &bytes[..]);
    }

    #[test]
    fn clone_of_borrow_shares_the_region() {
        let region = region_of(&[0u8; 16]);
        let p = Plane::<u64>::borrowed(&region, 0, 2).unwrap();
        let q = p.clone();
        assert!(q.is_borrowed());
        assert_eq!(Arc::strong_count(&region), 3);
        drop(p);
        drop(q);
        assert_eq!(Arc::strong_count(&region), 1);
    }
}
