//! One-to-many 2-hop-cover queries via source scattering.
//!
//! A pairwise label query merge-joins two rank-sorted lists — fine for one
//! lookup, wasteful when the same source is queried against many targets
//! (Algorithm 1 asks `t · |C(s)|` distances per candidate root). The
//! batched form scatters the source's label into a rank-indexed array
//! **once** (`O(|label(source)|)`); every subsequent target query is then a
//! single branch-light linear pass over the target's label slice
//! (`O(|label(target)|)`), with no rank comparisons and no merge state.
//!
//! This is the same trick PLL construction uses internally to prune
//! (`pll.rs` scatters each hub's label before its Dijkstra); this module
//! promotes it to a public query API. [`SourceScatter`] answers exactly
//! what [`LabelStore::query`] answers — bit-identical results, including
//! `INFINITY` for disconnected pairs — because it evaluates the same sums
//! over the same common hubs in the same (ascending-rank) order.
//!
//! Every label storage backend is supported: against the flat CSR
//! backend the target pass reads ranks directly from the slice; against
//! the compressed backend
//! ([`CompressedLabelSet`](crate::codec::CompressedLabelSet)) it decodes
//! the target's delta+varint block in the same single forward pass,
//! accumulating ranks as it goes; against the dictionary-distance
//! backends ([`DictLabelSet`](crate::dict::DictLabelSet),
//! [`CompressedDictLabelSet`](crate::dict::CompressedDictLabelSet)) the
//! source's label is decoded to the `f64` scratch **once** at load time,
//! so the per-holder hot loop pays at most one table lookup per entry.
//! The scatter array is direct-indexed identically in all cases, so the
//! sums (and their bits) cannot differ.

use crate::codec::{read_varint, LabelStore, PREV_NONE};
use crate::dict::{CodesRef, DistCode};
use crate::label::LabelEntry;

/// Reusable scratch for one-to-many label queries.
///
/// `hub_dist[rank]` holds the loaded source's distance to that hub
/// (`INFINITY` when the hub is not in the source's label). The touched-rank
/// list makes reloading `O(|label(old)| + |label(new)|)` instead of
/// `O(num_ranks)`, so one scratch can serve millions of roots.
///
/// Typical root-scan shape (one scratch per worker thread):
///
/// ```
/// # use atd_distance::{LabelEntry, LabelSet, LabelStore, SourceScatter};
/// # let labels = LabelStore::from(LabelSet::from_lists(&[
/// #     vec![LabelEntry { hub_rank: 0, dist: 0.0 }],
/// #     vec![LabelEntry { hub_rank: 0, dist: 2.0 }],
/// # ]));
/// let mut scatter = SourceScatter::for_labels(&labels);
/// for root in 0..labels.num_nodes() {
///     scatter.load(&labels, root);
///     for target in 0..labels.num_nodes() {
///         assert_eq!(scatter.distance(&labels, target), labels.query(root, target));
///     }
/// }
/// ```
#[derive(Clone, Debug)]
pub struct SourceScatter {
    /// Source-to-hub distance, indexed by hub rank.
    hub_dist: Vec<f64>,
    /// Ranks currently holding finite entries (for cheap reset).
    touched: Vec<u32>,
    /// The node whose label is loaded, if any.
    source: Option<usize>,
}

impl SourceScatter {
    /// Scratch for indices with `num_ranks` distinct hub ranks (= number of
    /// indexed nodes for PLL).
    pub fn new(num_ranks: usize) -> Self {
        SourceScatter {
            hub_dist: vec![f64::INFINITY; num_ranks],
            touched: Vec::new(),
            source: None,
        }
    }

    /// Scratch sized for `labels`.
    pub fn for_labels(labels: &LabelStore) -> Self {
        Self::new(labels.num_nodes())
    }

    /// The currently loaded source node, if any.
    #[inline]
    pub fn source(&self) -> Option<usize> {
        self.source
    }

    /// The number of hub-rank slots this scratch was sized for. A
    /// scratch only answers correctly against a label store with the
    /// same `num_nodes()` — callers that cache scratches across index
    /// swaps (e.g. a serving worker) compare this against the new
    /// store's node count to decide whether the scratch is reusable.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.hub_dist.len()
    }

    /// Unloads the current source, restoring all slots to `INFINITY`.
    pub fn clear(&mut self) {
        for &r in &self.touched {
            self.hub_dist[r as usize] = f64::INFINITY;
        }
        self.touched.clear();
        self.source = None;
    }

    /// Loads `source`'s label, replacing any previous source. For the
    /// compressed and dictionary backends this is the **one-time
    /// per-source scatter decode**: the block (and any dict codes) is
    /// decoded to the `f64` scratch once here, after which every target
    /// query direct-indexes the scatter array without touching the
    /// source's label again.
    pub fn load(&mut self, labels: &LabelStore, source: usize) {
        self.clear();
        match labels {
            LabelStore::Csr(l) => {
                let label = l.of(source);
                for (&rank, &dist) in label.hub_ranks.iter().zip(label.dists) {
                    self.hub_dist[rank as usize] = dist;
                    self.touched.push(rank);
                }
            }
            LabelStore::Compressed(l) => {
                for e in l.decode(source) {
                    self.hub_dist[e.hub_rank as usize] = e.dist;
                    self.touched.push(e.hub_rank);
                }
            }
            LabelStore::CsrDict(l) => {
                for e in l.entries(source) {
                    self.hub_dist[e.hub_rank as usize] = e.dist;
                    self.touched.push(e.hub_rank);
                }
            }
            LabelStore::CompressedDict(l) => {
                for e in l.decode(source) {
                    self.hub_dist[e.hub_rank as usize] = e.dist;
                    self.touched.push(e.hub_rank);
                }
            }
        }
        self.source = Some(source);
    }

    /// Loads a label presented as an entry iterator (used by PLL
    /// construction, whose labels live in a builder, not a [`LabelStore`]).
    /// `source` is recorded as the loaded node.
    pub fn load_entries(&mut self, source: usize, entries: impl IntoIterator<Item = LabelEntry>) {
        self.clear();
        for e in entries {
            self.hub_dist[e.hub_rank as usize] = e.dist;
            self.touched.push(e.hub_rank);
        }
        self.source = Some(source);
    }

    /// The loaded source's distance to the hub of `rank`, or `INFINITY`.
    #[inline]
    pub fn hub_distance(&self, rank: u32) -> f64 {
        self.hub_dist[rank as usize]
    }

    /// Distance from the loaded source to `target` over common hubs —
    /// bit-identical to `labels.query(source, target)`, including
    /// `INFINITY` for disconnected pairs and the `source == target` case.
    ///
    /// Instead of a two-pointer merge this direct-indexes the scatter array
    /// per target entry: hubs absent from the source's label contribute
    /// `INFINITY + d`, which can never win, so no rank comparison is
    /// needed. Same sums, same order, same float result as the merge-join.
    /// The compressed path decodes the target's block in the same forward
    /// pass, so it evaluates literally the same expressions.
    ///
    /// # Panics
    ///
    /// Panics when no source is loaded (fresh scratch, or after
    /// [`SourceScatter::clear`]) — in release builds too. An unloaded
    /// scatter would otherwise silently answer `INFINITY` for **every**
    /// pair, turning a caller bug into "all nodes disconnected"; the
    /// check is one predictable branch against a full label scan.
    #[inline]
    pub fn distance(&self, labels: &LabelStore, target: usize) -> f64 {
        assert!(
            self.source.is_some(),
            "SourceScatter::distance called with no source loaded (call load first)"
        );
        let mut best = f64::INFINITY;
        match labels {
            LabelStore::Csr(l) => {
                let label = l.of(target);
                for (&rank, &dist) in label.hub_ranks.iter().zip(label.dists) {
                    let d = self.hub_dist[rank as usize] + dist;
                    if d < best {
                        best = d;
                    }
                }
            }
            LabelStore::Compressed(l) => {
                for e in l.decode(target) {
                    let d = self.hub_dist[e.hub_rank as usize] + e.dist;
                    if d < best {
                        best = d;
                    }
                }
            }
            LabelStore::CsrDict(l) => {
                // One width dispatch per target, then a monomorphized
                // scan: rank read + code read + one table lookup per
                // entry.
                let (lo, hi) = l.bounds(target);
                let ranks = l.ranks_of(target);
                let table = l.dict().table();
                best = match l.dict().codes_in(lo, hi) {
                    CodesRef::U8(c) => csr_dict_scan(ranks, c, table, &self.hub_dist),
                    CodesRef::U16(c) => csr_dict_scan(ranks, c, table, &self.hub_dist),
                    CodesRef::U32(c) => csr_dict_scan(ranks, c, table, &self.hub_dist),
                };
            }
            LabelStore::CompressedDict(l) => {
                let (bytes, lo, hi) = l.block(target);
                let table = l.dict().table();
                best = match l.dict().codes_in(lo, hi) {
                    CodesRef::U8(c) => varint_dict_scan(bytes, c, table, &self.hub_dist),
                    CodesRef::U16(c) => varint_dict_scan(bytes, c, table, &self.hub_dist),
                    CodesRef::U32(c) => varint_dict_scan(bytes, c, table, &self.hub_dist),
                };
            }
        }
        best
    }
}

/// The dict-backend target pass over flat CSR ranks, monomorphized per
/// code width: same sums in the same order as the flat-dist scan, with
/// `dist` read through the dictionary table (identical bit pattern).
#[inline]
fn csr_dict_scan<C: DistCode>(ranks: &[u32], codes: &[C], table: &[f64], hub_dist: &[f64]) -> f64 {
    let mut best = f64::INFINITY;
    for (&rank, &code) in ranks.iter().zip(codes) {
        let d = hub_dist[rank as usize] + table[code.idx()];
        if d < best {
            best = d;
        }
    }
    best
}

/// The dict-backend target pass over a delta+varint rank block,
/// monomorphized per code width: one forward varint decode with a
/// parallel code cursor, one table lookup per entry.
#[inline]
fn varint_dict_scan<C: DistCode>(
    bytes: &[u8],
    codes: &[C],
    table: &[f64],
    hub_dist: &[f64],
) -> f64 {
    let mut best = f64::INFINITY;
    let mut pos = 0usize;
    let mut prev = PREV_NONE;
    for &code in codes {
        let delta = read_varint(bytes, &mut pos);
        let rank = prev.wrapping_add(delta).wrapping_add(1);
        prev = rank;
        let d = hub_dist[rank as usize] + table[code.idx()];
        if d < best {
            best = d;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CompressedLabelSet;
    use crate::label::LabelSet;

    fn e(hub_rank: u32, dist: f64) -> LabelEntry {
        LabelEntry { hub_rank, dist }
    }

    fn lists() -> Vec<Vec<LabelEntry>> {
        vec![
            vec![e(0, 0.0)],
            vec![e(0, 1.0), e(1, 0.0)],
            vec![e(0, 2.5), e(1, 1.5), e(2, 0.0)],
            vec![e(3, 0.0)], // separate component
        ]
    }

    fn fixture() -> LabelStore {
        LabelStore::from(LabelSet::from_lists(&lists()))
    }

    fn fixture_compressed() -> LabelStore {
        LabelStore::from(CompressedLabelSet::from_lists(&lists()))
    }

    fn fixtures_all() -> Vec<LabelStore> {
        use crate::dict::{CompressedDictLabelSet, DictLabelSet};
        vec![
            fixture(),
            fixture_compressed(),
            LabelStore::from(DictLabelSet::from_lists(&lists())),
            LabelStore::from(CompressedDictLabelSet::from_lists(&lists())),
        ]
    }

    #[test]
    fn matches_merge_join_on_all_pairs() {
        for ls in fixtures_all() {
            let mut sc = SourceScatter::for_labels(&ls);
            for u in 0..ls.num_nodes() {
                sc.load(&ls, u);
                assert_eq!(sc.source(), Some(u));
                for v in 0..ls.num_nodes() {
                    let (a, b) = (sc.distance(&ls, v), ls.query(u, v));
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "({u},{v}) on {:?}: scatter {a} vs merge {b}",
                        ls.storage()
                    );
                }
            }
        }
    }

    #[test]
    fn storages_agree_bitwise() {
        let csr = fixture();
        let mut sc_csr = SourceScatter::for_labels(&csr);
        for other in &fixtures_all()[1..] {
            let mut sc_other = SourceScatter::for_labels(other);
            for u in 0..csr.num_nodes() {
                sc_csr.load(&csr, u);
                sc_other.load(other, u);
                for v in 0..csr.num_nodes() {
                    assert_eq!(
                        sc_csr.distance(&csr, v).to_bits(),
                        sc_other.distance(other, v).to_bits(),
                        "({u},{v}) on {:?}",
                        other.storage()
                    );
                }
            }
        }
    }

    #[test]
    fn reload_resets_previous_source() {
        let ls = fixture();
        let mut sc = SourceScatter::for_labels(&ls);
        sc.load(&ls, 2); // touches ranks 0, 1, 2
        sc.load(&ls, 3); // touches rank 3 only
                         // Rank 0 must no longer be finite: node 0 unreachable from node 3.
        assert_eq!(sc.distance(&ls, 0), f64::INFINITY);
        assert_eq!(sc.hub_distance(0), f64::INFINITY);
        assert_eq!(sc.distance(&ls, 3), 0.0);
    }

    #[test]
    fn clear_unloads() {
        let ls = fixture();
        let mut sc = SourceScatter::for_labels(&ls);
        sc.load(&ls, 1);
        sc.clear();
        assert_eq!(sc.source(), None);
        assert!(sc.hub_distance(0).is_infinite());
        assert!(sc.hub_distance(1).is_infinite());
    }

    #[test]
    #[should_panic(expected = "no source loaded")]
    fn distance_without_a_loaded_source_panics_in_release_too() {
        // A plain assert (not debug_assert): an unloaded scatter answering
        // INFINITY for every pair would silently report every node
        // disconnected in release builds.
        let ls = fixture();
        let sc = SourceScatter::for_labels(&ls);
        let _ = sc.distance(&ls, 0);
    }

    #[test]
    #[should_panic(expected = "no source loaded")]
    fn distance_after_clear_panics_in_release_too() {
        let ls = fixture();
        let mut sc = SourceScatter::for_labels(&ls);
        sc.load(&ls, 1);
        sc.clear();
        let _ = sc.distance(&ls, 0);
    }

    #[test]
    fn load_entries_mirrors_load() {
        let ls = fixture();
        let mut via_load = SourceScatter::for_labels(&ls);
        let mut via_entries = SourceScatter::for_labels(&ls);
        via_load.load(&ls, 2);
        // Feed the same entries in reverse (builder chains are descending).
        let reversed: Vec<LabelEntry> = {
            let mut v: Vec<LabelEntry> = ls.entries(2).collect();
            v.reverse();
            v
        };
        via_entries.load_entries(2, reversed);
        for v in 0..ls.num_nodes() {
            assert_eq!(
                via_load.distance(&ls, v).to_bits(),
                via_entries.distance(&ls, v).to_bits()
            );
        }
    }
}
