//! Dictionary-encoded distance planes — per-index `f64` value tables
//! with narrow integer codes.
//!
//! PR 3 compressed the *rank* side of the label store; the flat `f64`
//! distance array then dominates the footprint (8 of ~9.3 bytes per entry
//! on the 2270-node testbed). But distances in this system are sums of
//! normalized Jaccard edge weights over shortest paths, so the value
//! universe is small and heavily repeated: ~50K distinct values across
//! 260K entries at the 3000-author scale, and the ratio keeps falling as
//! the graph grows. [`DistDict`] exploits that: the index's distinct
//! distance values go into one sorted table, and every label entry stores
//! a narrow integer *code* (`u8`/`u16`/`u32`, the narrowest width that
//! fits the table) instead of the raw 8-byte float.
//!
//! Decoding is **bit-exact by construction**: a decoded distance is the
//! identical `f64` bit pattern that went into the table (the table stores
//! the values themselves, deduplicated by bit pattern), so every query
//! sums literally the same floats as the flat backends and the
//! crate-wide bit-identical contract holds unchanged — enforced across
//! backends by `tests/proptest_codec.rs`, `tests/proptest_scatter.rs`,
//! and the greedy engine tests.
//!
//! The plane is orthogonal to the rank encoding: [`DictLabelSet`] pairs
//! it with flat CSR ranks ([`LabelStorage::CsrDict`]),
//! [`CompressedDictLabelSet`] with delta+varint rank blocks
//! ([`LabelStorage::CompressedDict`]) — the four-way storage matrix is
//! dispatched by [`LabelStore`]. See `crates/distance/src/README.md` for
//! the byte-level format and decode invariants.
//!
//! [`LabelStorage::CsrDict`]: crate::codec::LabelStorage::CsrDict
//! [`LabelStorage::CompressedDict`]: crate::codec::LabelStorage::CompressedDict
//! [`LabelStore`]: crate::codec::LabelStore

use std::collections::HashSet;

use crate::codec::{gap, read_varint, write_varint, PREV_NONE};
use crate::label::{merge_join_entries, LabelEntry, LabelSet, LabelSetBuilder, LabelStats, NONE};
use crate::plane::Plane;

/// A narrow unsigned code type indexing a dictionary table. Sealed to the
/// three widths [`DistDict`] emits; hot loops are generic over it so each
/// width gets its own monomorphized scan.
pub(crate) trait DistCode: Copy {
    /// The code as a table index.
    fn idx(self) -> usize;
}

impl DistCode for u8 {
    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

impl DistCode for u16 {
    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

impl DistCode for u32 {
    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

/// The code array of a [`DistDict`] in its physical width. Each variant
/// holds a [`Plane`] — owned by encoders, borrowed straight from a
/// mapped v2 index file by the zero-copy loader.
#[derive(Clone, Debug)]
pub(crate) enum CodePlane {
    /// Table has ≤ 2⁸ values.
    U8(Plane<u8>),
    /// Table has ≤ 2¹⁶ values.
    U16(Plane<u16>),
    /// Wider tables.
    U32(Plane<u32>),
}

impl Default for CodePlane {
    fn default() -> Self {
        CodePlane::U8(Plane::new())
    }
}

impl CodePlane {
    /// An empty plane of the narrowest width that can index a table of
    /// `num_values`, with room for `capacity` codes.
    fn for_table(num_values: usize, capacity: usize) -> CodePlane {
        if num_values <= 1 << 8 {
            CodePlane::U8(Vec::with_capacity(capacity).into())
        } else if num_values <= 1 << 16 {
            CodePlane::U16(Vec::with_capacity(capacity).into())
        } else {
            CodePlane::U32(Vec::with_capacity(capacity).into())
        }
    }

    /// A zero-filled plane of length `len` (for backward-fill writes).
    fn zeroed(num_values: usize, len: usize) -> CodePlane {
        if num_values <= 1 << 8 {
            CodePlane::U8(vec![0; len].into())
        } else if num_values <= 1 << 16 {
            CodePlane::U16(vec![0; len].into())
        } else {
            CodePlane::U32(vec![0; len].into())
        }
    }

    #[inline]
    fn push(&mut self, code: u32) {
        match self {
            CodePlane::U8(v) => v.vec_mut().push(code as u8),
            CodePlane::U16(v) => v.vec_mut().push(code as u16),
            CodePlane::U32(v) => v.vec_mut().push(code),
        }
    }

    #[inline]
    fn set(&mut self, i: usize, code: u32) {
        match self {
            CodePlane::U8(v) => v.vec_mut()[i] = code as u8,
            CodePlane::U16(v) => v.vec_mut()[i] = code as u16,
            CodePlane::U32(v) => v.vec_mut()[i] = code,
        }
    }

    #[inline]
    fn get(&self, i: usize) -> usize {
        match self {
            CodePlane::U8(v) => v[i] as usize,
            CodePlane::U16(v) => v[i] as usize,
            CodePlane::U32(v) => v[i] as usize,
        }
    }

    fn len(&self) -> usize {
        match self {
            CodePlane::U8(v) => v.len(),
            CodePlane::U16(v) => v.len(),
            CodePlane::U32(v) => v.len(),
        }
    }

    /// Bytes per code.
    fn width(&self) -> usize {
        match self {
            CodePlane::U8(_) => 1,
            CodePlane::U16(_) => 2,
            CodePlane::U32(_) => 4,
        }
    }

    /// True when the codes borrow from a mapped index file.
    fn is_borrowed(&self) -> bool {
        match self {
            CodePlane::U8(v) => v.is_borrowed(),
            CodePlane::U16(v) => v.is_borrowed(),
            CodePlane::U32(v) => v.is_borrowed(),
        }
    }
}

/// A borrowed code sub-slice in its physical width, for width-specialized
/// hot loops (one match per node, not per entry).
#[derive(Clone, Copy, Debug)]
pub(crate) enum CodesRef<'a> {
    /// 1-byte codes.
    U8(&'a [u8]),
    /// 2-byte codes.
    U16(&'a [u16]),
    /// 4-byte codes.
    U32(&'a [u32]),
}

/// A dictionary-encoded plane of `f64` distances.
///
/// `table` holds the distinct distance values (ascending, deduplicated by
/// bit pattern); `codes` holds one table index per label entry, in decode
/// order, at the narrowest of 1/2/4 bytes that can address the table.
/// [`DistDict::get`] decodes entry `i` as `table[codes[i]]` — the exact
/// `f64` bits the encoder saw.
#[derive(Clone, Debug, Default)]
pub struct DistDict {
    /// Distinct distance values, ascending; entries are unique bit
    /// patterns (all distances are non-negative finite sums, so bit order
    /// and numeric order coincide).
    pub(crate) table: Plane<f64>,
    /// One table index per label entry, in decode order.
    pub(crate) codes: CodePlane,
}

impl DistDict {
    /// Number of encoded entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when no entries are encoded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes entry `i`: one code load + one table load, returning the
    /// identical bit pattern the encoder stored.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.table[self.codes.get(i)]
    }

    /// The sorted distinct-value table.
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// Distinct distance values in the table.
    pub fn num_values(&self) -> usize {
        self.table.len()
    }

    /// Bytes per code (1, 2 or 4 — the narrowest that fits the table).
    pub fn code_width(&self) -> usize {
        self.codes.width()
    }

    /// Bytes spent on the code array.
    pub fn codes_bytes(&self) -> usize {
        self.codes.len() * self.codes.width()
    }

    /// Bytes spent on the value table.
    pub fn table_bytes(&self) -> usize {
        std::mem::size_of::<f64>() * self.table.len()
    }

    /// The code sub-slice `lo..hi` in its physical width.
    #[inline]
    pub(crate) fn codes_in(&self, lo: usize, hi: usize) -> CodesRef<'_> {
        match &self.codes {
            CodePlane::U8(v) => CodesRef::U8(&v[lo..hi]),
            CodePlane::U16(v) => CodesRef::U16(&v[lo..hi]),
            CodePlane::U32(v) => CodesRef::U32(&v[lo..hi]),
        }
    }

    /// True when the table or code plane borrows from a mapped file.
    pub(crate) fn is_zero_copy(&self) -> bool {
        self.table.is_borrowed() || self.codes.is_borrowed()
    }
}

/// Two-pass dictionary encoder: pass 1 collects the distinct values into
/// the sorted table, pass 2 maps each distance to its code.
pub(crate) struct DictEncoder {
    table: Vec<f64>,
    /// The table's `f64` bit patterns, ascending — distances are
    /// non-negative finite, so bit order and numeric order coincide and
    /// code assignment is a binary search over raw bits (measurably
    /// cheaper than hashing on the build's finish path).
    table_bits: Vec<u64>,
}

impl DictEncoder {
    /// Builds the sorted distinct-value table from one pass over all
    /// distances (any order).
    pub(crate) fn from_values(values: impl IntoIterator<Item = f64>) -> DictEncoder {
        let uniq: HashSet<u64> = values.into_iter().map(f64::to_bits).collect();
        assert!(
            uniq.len() <= u32::MAX as usize,
            "distance dictionary overflow"
        );
        let mut table_bits: Vec<u64> = uniq.into_iter().collect();
        table_bits.sort_unstable();
        let table = table_bits.iter().map(|&b| f64::from_bits(b)).collect();
        DictEncoder { table, table_bits }
    }

    /// The code of `dist` (which must have been in the value pass).
    #[inline]
    fn code(&self, dist: f64) -> u32 {
        self.table_bits.partition_point(|&b| b < dist.to_bits()) as u32
    }

    /// An empty code plane sized for this table, with room for
    /// `capacity` codes.
    fn plane(&self, capacity: usize) -> CodePlane {
        CodePlane::for_table(self.table.len(), capacity)
    }

    /// A zero-filled code plane of length `len` for backward fills.
    fn zeroed_plane(&self, len: usize) -> CodePlane {
        CodePlane::zeroed(self.table.len(), len)
    }

    fn into_dict(self, codes: CodePlane) -> DistDict {
        DistDict {
            table: self.table.into(),
            codes,
        }
    }
}

/// Builds the dictionary encoder for a patched store: the final distance
/// multiset is clean entries (decoded through the old dict) plus the
/// `work` lists of `dirty` nodes — exactly the values a from-scratch
/// build's value pass would see, so the resulting table is identical to
/// it. Returns `(encoder, remap, total_entries)`, where `remap` maps old
/// codes to new ones when the table changed (`None` when it is bitwise
/// unchanged and clean codes can be copied verbatim). Old table slots
/// whose value vanished from the final multiset get a meaningless remap
/// entry, but no surviving clean code references them.
fn patched_encoder(
    dict: &DistDict,
    offsets: &[u32],
    work: &[Vec<LabelEntry>],
    dirty: &[usize],
) -> (DictEncoder, Option<Vec<u32>>, usize) {
    let n = offsets.len() - 1;
    let mut values: Vec<f64> = Vec::new();
    let mut di = 0usize;
    for v in 0..n {
        if dirty.get(di) == Some(&v) {
            di += 1;
            values.extend(work[v].iter().map(|e| e.dist));
        } else {
            for i in offsets[v] as usize..offsets[v + 1] as usize {
                values.push(dict.get(i));
            }
        }
    }
    let total = values.len();
    let enc = DictEncoder::from_values(values);
    let unchanged = enc.table_bits.len() == dict.table.len()
        && enc
            .table_bits
            .iter()
            .zip(dict.table.iter())
            .all(|(&b, &t)| b == t.to_bits());
    let remap = if unchanged {
        None
    } else {
        Some(dict.table.iter().map(|&t| enc.code(t)).collect())
    };
    (enc, remap, total)
}

/// Flat CSR hub ranks + dictionary-encoded distances
/// ([`LabelStorage::CsrDict`](crate::codec::LabelStorage::CsrDict)).
///
/// Identical addressing to [`LabelSet`] — `offsets[v]..offsets[v+1]`
/// slices both the rank array and the code array — with the 8-byte `f64`
/// per entry replaced by a 1/2/4-byte code plus the shared table.
///
/// ```
/// use atd_distance::{DictLabelSet, LabelEntry, LabelSet};
/// let lists = vec![
///     vec![
///         LabelEntry { hub_rank: 0, dist: 0.5 },
///         LabelEntry { hub_rank: 3, dist: 1.5 },
///     ],
///     vec![LabelEntry { hub_rank: 0, dist: 0.5 }],
/// ];
/// let csr = LabelSet::from_lists(&lists);
/// let dict = DictLabelSet::from_lists(&lists);
/// // Three entries share two distinct values -> two table slots.
/// assert_eq!(dict.dict().num_values(), 2);
/// assert_eq!(dict.entries(0).collect::<Vec<_>>(), lists[0]);
/// assert_eq!(dict.query(0, 1).to_bits(), csr.query(0, 1).to_bits());
/// ```
#[derive(Clone, Debug, Default)]
pub struct DictLabelSet {
    /// `offsets[v]..offsets[v + 1]` is node `v`'s slice of both planes.
    pub(crate) offsets: Plane<u32>,
    /// All hub ranks, concatenated per node, ascending within a node.
    pub(crate) hub_ranks: Plane<u32>,
    /// Dictionary-encoded distances, parallel to `hub_ranks`.
    pub(crate) dists: DistDict,
}

impl DictLabelSet {
    /// Builds a dict-distance set from per-node entry lists (each
    /// strictly ascending in hub rank). Convenience for tests and
    /// fixtures; the PLL builder uses
    /// [`LabelSetBuilder::finish_csr_dict`].
    pub fn from_lists(lists: &[Vec<LabelEntry>]) -> Self {
        Self::from_label_set(&LabelSet::from_lists(lists))
    }

    /// Re-encodes an existing CSR label set.
    pub fn from_label_set(labels: &LabelSet) -> Self {
        let enc = DictEncoder::from_values(labels.dists.iter().copied());
        let mut codes = enc.plane(labels.dists.len());
        for &d in labels.dists.iter() {
            codes.push(enc.code(d));
        }
        DictLabelSet {
            offsets: labels.offsets.clone(),
            hub_ranks: labels.hub_ranks.clone(),
            dists: enc.into_dict(codes),
        }
    }

    /// Number of indexed nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The distance dictionary (table + codes).
    #[inline]
    pub fn dict(&self) -> &DistDict {
        &self.dists
    }

    /// Node `v`'s entry range in the flat planes.
    #[inline]
    pub(crate) fn bounds(&self, node: usize) -> (usize, usize) {
        (self.offsets[node] as usize, self.offsets[node + 1] as usize)
    }

    /// Node `v`'s hub-rank slice.
    #[inline]
    pub(crate) fn ranks_of(&self, node: usize) -> &[u32] {
        let (lo, hi) = self.bounds(node);
        &self.hub_ranks[lo..hi]
    }

    /// Node `v`'s entries in strictly ascending hub rank — the same
    /// sequence the CSR slice walk yields.
    #[inline]
    pub fn entries(&self, node: usize) -> DictEntries<'_> {
        let (lo, hi) = self.bounds(node);
        DictEntries {
            ranks: &self.hub_ranks[lo..hi],
            dict: &self.dists,
            base: lo,
            next: 0,
        }
    }

    /// Pairwise merge-join query; bit-identical to [`LabelSet::query`].
    pub fn query(&self, u: usize, v: usize) -> f64 {
        merge_join_entries(self.entries(u), self.entries(v))
    }

    /// A copy of this store with the labels of `dirty` nodes (sorted,
    /// deduplicated indices) replaced by their lists in `work`. The value
    /// table is rebuilt from the final distance multiset (identical to a
    /// from-scratch [`DictEncoder`] pass); clean codes are copied when the
    /// table is bitwise unchanged and remapped otherwise
    /// (`crate::incremental`).
    pub(crate) fn patched(&self, work: &[Vec<LabelEntry>], dirty: &[usize]) -> DictLabelSet {
        let n = self.num_nodes();
        debug_assert_eq!(work.len(), n);
        debug_assert!(dirty.windows(2).all(|w| w[0] < w[1]), "dirty must ascend");
        let (enc, remap, total) = patched_encoder(&self.dists, &self.offsets, work, dirty);
        assert!(total <= u32::MAX as usize, "label store overflow");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut hub_ranks = Vec::with_capacity(total);
        let mut codes = enc.plane(total);
        offsets.push(0u32);
        let mut di = 0usize;
        for (v, wv) in work.iter().enumerate() {
            if dirty.get(di) == Some(&v) {
                di += 1;
                for e in wv {
                    hub_ranks.push(e.hub_rank);
                    codes.push(enc.code(e.dist));
                }
            } else {
                let (lo, hi) = self.bounds(v);
                hub_ranks.extend_from_slice(&self.hub_ranks[lo..hi]);
                for i in lo..hi {
                    let old = self.dists.codes.get(i) as u32;
                    codes.push(match &remap {
                        Some(m) => m[old as usize],
                        None => old,
                    });
                }
            }
            offsets.push(hub_ranks.len() as u32);
        }
        // Fully owned by construction — patching an mmap-backed store
        // never writes through the mapping.
        DictLabelSet {
            offsets: offsets.into(),
            hub_ranks: hub_ranks.into(),
            dists: enc.into_dict(codes),
        }
    }

    /// Computes summary statistics; `bytes` counts offsets, ranks, codes
    /// and the dictionary table.
    pub fn stats(&self) -> LabelStats {
        let nodes = self.num_nodes();
        let max_entries = (0..nodes)
            .map(|v| (self.offsets[v + 1] - self.offsets[v]) as usize)
            .max()
            .unwrap_or(0);
        LabelStats::from_parts(
            nodes,
            self.hub_ranks.len(),
            max_entries,
            std::mem::size_of::<u32>() * self.offsets.len(),
            std::mem::size_of::<u32>() * self.hub_ranks.len(),
            self.dists.codes_bytes(),
            self.dists.table_bytes(),
            self.dists.num_values(),
        )
    }

    /// True when any plane borrows from a mapped index file.
    pub(crate) fn is_zero_copy(&self) -> bool {
        self.offsets.is_borrowed() || self.hub_ranks.is_borrowed() || self.dists.is_zero_copy()
    }
}

/// Iterator over one node's label in a [`DictLabelSet`] (strictly
/// ascending hub rank).
#[derive(Clone, Debug)]
pub struct DictEntries<'a> {
    ranks: &'a [u32],
    dict: &'a DistDict,
    /// Global entry index of the slice start.
    base: usize,
    /// Next local entry index.
    next: usize,
}

impl Iterator for DictEntries<'_> {
    type Item = LabelEntry;

    #[inline]
    fn next(&mut self) -> Option<LabelEntry> {
        let rank = *self.ranks.get(self.next)?;
        let dist = self.dict.get(self.base + self.next);
        self.next += 1;
        Some(LabelEntry {
            hub_rank: rank,
            dist,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.ranks.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for DictEntries<'_> {}

/// Delta+varint hub-rank blocks + dictionary-encoded distances
/// ([`LabelStorage::CompressedDict`](crate::codec::LabelStorage::CompressedDict))
/// — both planes compressed, the smallest backend.
///
/// The rank side is byte-identical to
/// [`CompressedLabelSet`](crate::codec::CompressedLabelSet)'s blocks; the
/// distance side replaces the flat `f64` array with [`DistDict`] codes at
/// the same entry offsets, so per-node addressing stays `O(1)`.
///
/// ```
/// use atd_distance::{CompressedDictLabelSet, LabelEntry, LabelSet};
/// let lists = vec![
///     vec![
///         LabelEntry { hub_rank: 0, dist: 0.0 },
///         LabelEntry { hub_rank: 700, dist: 2.5 },
///     ],
///     vec![LabelEntry { hub_rank: 3, dist: 2.5 }],
/// ];
/// let csr = LabelSet::from_lists(&lists);
/// let cd = CompressedDictLabelSet::from_lists(&lists);
/// assert_eq!(cd.decode(0).collect::<Vec<_>>(), lists[0]);
/// assert_eq!(cd.query(0, 1).to_bits(), csr.query(0, 1).to_bits());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CompressedDictLabelSet {
    /// Entry offsets into the code plane; `offsets[v]..offsets[v+1]` is
    /// node `v`.
    pub(crate) offsets: Plane<u32>,
    /// Byte offsets into `rank_bytes`; one block per node.
    pub(crate) byte_offsets: Plane<u32>,
    /// Concatenated per-node varint gap streams (same encoding as
    /// [`CompressedLabelSet`](crate::codec::CompressedLabelSet)).
    pub(crate) rank_bytes: Plane<u8>,
    /// Dictionary-encoded distances, parallel to decode order.
    pub(crate) dists: DistDict,
}

impl CompressedDictLabelSet {
    /// Builds a fully-compressed set from per-node entry lists (each
    /// strictly ascending in hub rank). Convenience for tests and
    /// fixtures; the PLL builder uses
    /// [`LabelSetBuilder::finish_compressed_dict`].
    pub fn from_lists(lists: &[Vec<LabelEntry>]) -> Self {
        Self::from_label_set(&LabelSet::from_lists(lists))
    }

    /// Re-encodes an existing CSR label set.
    pub fn from_label_set(labels: &LabelSet) -> Self {
        let n = labels.num_nodes();
        let enc = DictEncoder::from_values(labels.dists.iter().copied());
        let mut codes = enc.plane(labels.dists.len());
        let mut out = CompressedDictLabelSet {
            offsets: Vec::with_capacity(n + 1).into(),
            byte_offsets: Vec::with_capacity(n + 1).into(),
            rank_bytes: Plane::new(),
            dists: DistDict::default(),
        };
        out.offsets.vec_mut().push(0);
        out.byte_offsets.vec_mut().push(0);
        for v in 0..n {
            let mut prev = PREV_NONE;
            for e in labels.of(v).iter() {
                write_varint(gap(prev, e.hub_rank), out.rank_bytes.vec_mut());
                codes.push(enc.code(e.dist));
                prev = e.hub_rank;
            }
            out.close_block(codes.len());
        }
        out.dists = enc.into_dict(codes);
        out
    }

    /// Seals the current node's block (records both end offsets).
    fn close_block(&mut self, entries: usize) {
        assert!(
            entries <= u32::MAX as usize && self.rank_bytes.len() <= u32::MAX as usize,
            "label store overflow"
        );
        let bytes_len = self.rank_bytes.len() as u32;
        self.offsets.vec_mut().push(entries as u32);
        self.byte_offsets.vec_mut().push(bytes_len);
    }

    /// Number of indexed nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The distance dictionary (table + codes).
    #[inline]
    pub fn dict(&self) -> &DistDict {
        &self.dists
    }

    /// Node `v`'s raw `(varint block, entry range)` — the `O(1)` per-node
    /// addressing both offset arrays preserve.
    #[inline]
    pub(crate) fn block(&self, node: usize) -> (&[u8], usize, usize) {
        let blo = self.byte_offsets[node] as usize;
        let bhi = self.byte_offsets[node + 1] as usize;
        (
            &self.rank_bytes[blo..bhi],
            self.offsets[node] as usize,
            self.offsets[node + 1] as usize,
        )
    }

    /// Decodes node `v`'s label: entries in strictly ascending hub rank.
    #[inline]
    pub fn decode(&self, node: usize) -> DictDecoder<'_> {
        let (bytes, lo, hi) = self.block(node);
        DictDecoder {
            bytes,
            dict: &self.dists,
            base: lo,
            len: hi - lo,
            pos: 0,
            next: 0,
            prev: PREV_NONE,
        }
    }

    /// Pairwise merge-join query; bit-identical to [`LabelSet::query`].
    pub fn query(&self, u: usize, v: usize) -> f64 {
        merge_join_entries(self.decode(u), self.decode(v))
    }

    /// A copy of this store with the blocks of `dirty` nodes (sorted,
    /// deduplicated indices) re-encoded from their lists in `work`. Clean
    /// rank blocks are copied byte-for-byte; the value table is rebuilt
    /// from the final distance multiset with clean codes copied or
    /// remapped exactly as in [`DictLabelSet::patched`]
    /// (`crate::incremental`).
    pub(crate) fn patched(
        &self,
        work: &[Vec<LabelEntry>],
        dirty: &[usize],
    ) -> CompressedDictLabelSet {
        let n = self.num_nodes();
        debug_assert_eq!(work.len(), n);
        debug_assert!(dirty.windows(2).all(|w| w[0] < w[1]), "dirty must ascend");
        let (enc, remap, total) = patched_encoder(&self.dists, &self.offsets, work, dirty);
        let mut codes = enc.plane(total);
        // Fully owned by construction — clean blocks are copied, so an
        // mmap-backed store is never written through.
        let mut out = CompressedDictLabelSet {
            offsets: Vec::with_capacity(n + 1).into(),
            byte_offsets: Vec::with_capacity(n + 1).into(),
            rank_bytes: Plane::new(),
            dists: DistDict::default(),
        };
        out.offsets.vec_mut().push(0);
        out.byte_offsets.vec_mut().push(0);
        let mut di = 0usize;
        for (v, wv) in work.iter().enumerate() {
            if dirty.get(di) == Some(&v) {
                di += 1;
                let mut prev = PREV_NONE;
                for e in wv {
                    debug_assert!(
                        prev == PREV_NONE || prev < e.hub_rank,
                        "label entries must ascend strictly in hub rank"
                    );
                    write_varint(gap(prev, e.hub_rank), out.rank_bytes.vec_mut());
                    codes.push(enc.code(e.dist));
                    prev = e.hub_rank;
                }
            } else {
                let (bytes, lo, hi) = self.block(v);
                out.rank_bytes.vec_mut().extend_from_slice(bytes);
                for i in lo..hi {
                    let old = self.dists.codes.get(i) as u32;
                    codes.push(match &remap {
                        Some(m) => m[old as usize],
                        None => old,
                    });
                }
            }
            out.close_block(codes.len());
        }
        out.dists = enc.into_dict(codes);
        out
    }

    /// Computes summary statistics; `bytes` counts both offset arrays,
    /// the varint stream, the codes and the dictionary table.
    pub fn stats(&self) -> LabelStats {
        let nodes = self.num_nodes();
        let max_entries = (0..nodes)
            .map(|v| (self.offsets[v + 1] - self.offsets[v]) as usize)
            .max()
            .unwrap_or(0);
        LabelStats::from_parts(
            nodes,
            self.dists.len(),
            max_entries,
            std::mem::size_of::<u32>() * (self.offsets.len() + self.byte_offsets.len()),
            self.rank_bytes.len(),
            self.dists.codes_bytes(),
            self.dists.table_bytes(),
            self.dists.num_values(),
        )
    }

    /// True when any plane borrows from a mapped index file.
    pub(crate) fn is_zero_copy(&self) -> bool {
        self.offsets.is_borrowed()
            || self.byte_offsets.is_borrowed()
            || self.rank_bytes.is_borrowed()
            || self.dists.is_zero_copy()
    }
}

/// Streaming decoder over one node's block in a
/// [`CompressedDictLabelSet`] (strictly ascending hub rank).
#[derive(Clone, Debug)]
pub struct DictDecoder<'a> {
    bytes: &'a [u8],
    dict: &'a DistDict,
    /// Global entry index of the block start.
    base: usize,
    /// Entries in this block.
    len: usize,
    /// Read cursor into `bytes`.
    pos: usize,
    /// Next local entry index.
    next: usize,
    /// Previously decoded rank (`PREV_NONE` before the first entry).
    prev: u32,
}

impl Iterator for DictDecoder<'_> {
    type Item = LabelEntry;

    #[inline]
    fn next(&mut self) -> Option<LabelEntry> {
        if self.next >= self.len {
            return None;
        }
        let delta = read_varint(self.bytes, &mut self.pos);
        let rank = self.prev.wrapping_add(delta).wrapping_add(1);
        self.prev = rank;
        let dist = self.dict.get(self.base + self.next);
        self.next += 1;
        Some(LabelEntry {
            hub_rank: rank,
            dist,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for DictDecoder<'_> {}

impl LabelSetBuilder {
    /// Converts the journaled labels straight to the CSR+dict store — the
    /// flat `f64` distance array is **never materialized**. The value
    /// table is collected from the journal arena (which holds exactly the
    /// final entries), then the counting pass fills ranks and codes the
    /// same way [`LabelSetBuilder::finish`] fills ranks and dists.
    pub fn finish_csr_dict(self) -> DictLabelSet {
        let n = self.head.len();
        let total = self.arena_ranks.len();
        let enc = DictEncoder::from_values(self.arena_dists.iter().copied());
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &c in &self.counts {
            acc += c;
            offsets.push(acc);
        }
        let mut hub_ranks = vec![0u32; total];
        let mut codes = enc.zeroed_plane(total);
        for v in 0..n {
            let mut slot = offsets[v + 1] as usize;
            let mut cur = self.head[v];
            while cur != NONE {
                let i = cur as usize;
                slot -= 1;
                hub_ranks[slot] = self.arena_ranks[i];
                codes.set(slot, enc.code(self.arena_dists[i]));
                cur = self.arena_prev[i];
            }
            debug_assert_eq!(slot, offsets[v] as usize, "chain/count mismatch");
        }
        DictLabelSet {
            offsets: offsets.into(),
            hub_ranks: hub_ranks.into(),
            dists: enc.into_dict(codes),
        }
    }

    /// Converts the journaled labels straight to the fully-compressed
    /// store (varint ranks + dict distances) — neither the CSR arrays nor
    /// the flat `f64` distance array is ever materialized. Scratch is one
    /// reversal buffer bounded by the largest single label.
    pub fn finish_compressed_dict(self) -> CompressedDictLabelSet {
        let n = self.num_nodes();
        let total = self.total_entries();
        let enc = DictEncoder::from_values(self.arena_dists.iter().copied());
        let mut codes = enc.plane(total);
        let mut out = CompressedDictLabelSet {
            offsets: Vec::with_capacity(n + 1).into(),
            byte_offsets: Vec::with_capacity(n + 1).into(),
            rank_bytes: Plane::new(),
            dists: DistDict::default(),
        };
        out.offsets.vec_mut().push(0);
        out.byte_offsets.vec_mut().push(0);
        let mut scratch: Vec<LabelEntry> = Vec::new();
        for v in 0..n {
            scratch.clear();
            scratch.extend(self.entries(v)); // newest first = descending
            let mut prev = PREV_NONE;
            for e in scratch.iter().rev() {
                write_varint(gap(prev, e.hub_rank), out.rank_bytes.vec_mut());
                codes.push(enc.code(e.dist));
                prev = e.hub_rank;
            }
            out.close_block(codes.len());
        }
        out.dists = enc.into_dict(codes);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(hub_rank: u32, dist: f64) -> LabelEntry {
        LabelEntry { hub_rank, dist }
    }

    fn fixture() -> Vec<Vec<LabelEntry>> {
        vec![
            vec![e(0, 0.25), e(1, 1.5), e(7, 2.0), e(700_000, 9.0)],
            vec![],
            vec![e(3, 0.25), e(4, 1.5), e(9, 0.0)],
        ]
    }

    #[test]
    fn table_is_sorted_unique_and_codes_decode_exactly() {
        let lists = fixture();
        let d = DictLabelSet::from_lists(&lists);
        // 7 entries, 5 distinct values (0.25 and 1.5 repeat).
        assert_eq!(d.dict().len(), 7);
        assert_eq!(d.dict().num_values(), 5);
        assert_eq!(d.dict().code_width(), 1);
        let table = d.dict().table();
        assert!(table.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        for (v, list) in lists.iter().enumerate() {
            let got: Vec<LabelEntry> = d.entries(v).collect();
            assert_eq!(&got, list, "node {v}");
            assert_eq!(d.entries(v).len(), list.len());
        }
    }

    #[test]
    fn compressed_dict_roundtrips() {
        let lists = fixture();
        let cd = CompressedDictLabelSet::from_lists(&lists);
        assert_eq!(cd.num_nodes(), 3);
        for (v, list) in lists.iter().enumerate() {
            let got: Vec<LabelEntry> = cd.decode(v).collect();
            assert_eq!(&got, list, "node {v}");
            assert_eq!(cd.decode(v).len(), list.len());
        }
    }

    #[test]
    fn queries_match_csr_bitwise() {
        let lists = fixture();
        let csr = LabelSet::from_lists(&lists);
        let d = DictLabelSet::from_lists(&lists);
        let cd = CompressedDictLabelSet::from_lists(&lists);
        for u in 0..lists.len() {
            for v in 0..lists.len() {
                let want = csr.query(u, v).to_bits();
                assert_eq!(d.query(u, v).to_bits(), want, "csr_dict ({u},{v})");
                assert_eq!(cd.query(u, v).to_bits(), want, "compressed_dict ({u},{v})");
            }
        }
    }

    #[test]
    fn code_width_tracks_table_size() {
        // ≤256 distinct values -> u8 codes.
        let small: Vec<Vec<LabelEntry>> = vec![(0..300).map(|i| e(i, (i % 10) as f64)).collect()];
        let d = DictLabelSet::from_lists(&small);
        assert_eq!(d.dict().num_values(), 10);
        assert_eq!(d.dict().code_width(), 1);
        assert_eq!(d.dict().codes_bytes(), 300);

        // >256 distinct values -> u16 codes.
        let medium: Vec<Vec<LabelEntry>> = vec![(0..300).map(|i| e(i, i as f64 * 0.5)).collect()];
        let d = DictLabelSet::from_lists(&medium);
        assert_eq!(d.dict().num_values(), 300);
        assert_eq!(d.dict().code_width(), 2);
        assert_eq!(d.dict().codes_bytes(), 600);
    }

    #[test]
    fn stats_count_real_bytes_per_plane() {
        let lists = vec![vec![e(0, 0.5)], vec![e(0, 0.5), e(1, 1.5)], vec![]];
        let d = DictLabelSet::from_lists(&lists);
        let s = d.stats();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.total_entries, 3);
        assert_eq!(s.max_entries, 2);
        // offsets: 4 u32; ranks: 3 u32; codes: 3 u8; table: 2 f64.
        assert_eq!(s.offsets_bytes, 4 * 4);
        assert_eq!(s.ranks_bytes, 3 * 4);
        assert_eq!(s.dists_bytes, 3);
        assert_eq!(s.dict_bytes, 2 * 8);
        assert_eq!(s.dict_values, 2);
        assert_eq!(s.bytes, 16 + 12 + 3 + 16);

        let cd = CompressedDictLabelSet::from_lists(&lists);
        let s = cd.stats();
        // Two 4-u32 offset arrays, 3 one-byte varints, 3 u8 codes, 2 f64s.
        assert_eq!(s.offsets_bytes, 2 * 4 * 4);
        assert_eq!(s.ranks_bytes, 3);
        assert_eq!(s.dists_bytes, 3);
        assert_eq!(s.dict_bytes, 16);
        assert_eq!(s.dict_values, 2);
        assert_eq!(s.bytes, 32 + 3 + 3 + 16);
    }

    #[test]
    fn builder_finishes_match_from_lists() {
        let lists = fixture();
        let build = || {
            let mut b = LabelSetBuilder::new(lists.len());
            let mut flat: Vec<(usize, LabelEntry)> = Vec::new();
            for (v, l) in lists.iter().enumerate() {
                for &entry in l {
                    flat.push((v, entry));
                }
            }
            flat.sort_by_key(|&(v, entry)| (entry.hub_rank, v));
            for (v, entry) in flat {
                b.push(v, entry);
            }
            b
        };

        let d = build().finish_csr_dict();
        let d_ref = DictLabelSet::from_lists(&lists);
        let cd = build().finish_compressed_dict();
        let cd_ref = CompressedDictLabelSet::from_lists(&lists);
        for (v, want) in lists.iter().enumerate() {
            assert_eq!(&d.entries(v).collect::<Vec<_>>(), want, "csr_dict node {v}");
            assert_eq!(
                &cd.decode(v).collect::<Vec<_>>(),
                want,
                "compressed_dict node {v}"
            );
        }
        assert_eq!(d.stats(), d_ref.stats());
        assert_eq!(cd.stats(), cd_ref.stats());
    }

    #[test]
    fn empty_stores_are_consistent() {
        let d = LabelSetBuilder::new(2).finish_csr_dict();
        assert_eq!(d.num_nodes(), 2);
        assert_eq!(d.entries(0).count(), 0);
        assert_eq!(d.query(0, 1), f64::INFINITY);
        assert_eq!(d.dict().num_values(), 0);
        let cd = LabelSetBuilder::new(2).finish_compressed_dict();
        assert_eq!(cd.num_nodes(), 2);
        assert_eq!(cd.decode(1).count(), 0);
        assert_eq!(cd.query(0, 1), f64::INFINITY);
        assert!(cd.dict().is_empty());
    }

    #[test]
    fn dict_beats_flat_on_repetitive_values() {
        // 320 entries over 8 distinct values: codes are u8, table tiny.
        let lists: Vec<Vec<LabelEntry>> = (0..8)
            .map(|v| {
                (0..40)
                    .map(|i| e(v + i * 3, (i % 8) as f64 * 0.5))
                    .collect()
            })
            .collect();
        let csr = LabelSet::from_lists(&lists).stats();
        let d = DictLabelSet::from_lists(&lists).stats();
        let cd = CompressedDictLabelSet::from_lists(&lists).stats();
        assert_eq!(csr.total_entries, d.total_entries);
        assert_eq!(csr.total_entries, cd.total_entries);
        assert!(
            d.bytes < csr.bytes,
            "csr_dict {} !< csr {}",
            d.bytes,
            csr.bytes
        );
        assert!(
            cd.bytes < d.bytes,
            "compressed_dict {} !< csr_dict {}",
            cd.bytes,
            d.bytes
        );
    }
}
