//! Vertex orderings for pruned landmark labeling.
//!
//! PLL processes vertices from "most central" to least; the earlier a hub
//! is processed, the more shortest paths it covers and the smaller every
//! later label becomes. Akiba et al. found degree-descending order to work
//! well on social networks (hubs = high-degree celebrities), which matches
//! the expert-network setting where prolific senior researchers are the
//! natural hubs.

use atd_graph::{ExpertGraph, NodeId};

/// How to order vertices for label construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VertexOrder {
    /// Degree descending (ties by node id) — the standard social-network
    /// heuristic.
    #[default]
    DegreeDescending,
    /// Node id ascending — only sensible for testing worst-case labels.
    IdAscending,
    /// Authority descending — an expert-network-specific alternative using
    /// node authority as the centrality proxy.
    AuthorityDescending,
}

/// Computes the processing order: `order[k]` is the node processed at
/// rank `k`.
pub fn compute_order(g: &ExpertGraph, kind: VertexOrder) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = g.nodes().collect();
    match kind {
        VertexOrder::DegreeDescending => {
            order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        }
        VertexOrder::IdAscending => {}
        VertexOrder::AuthorityDescending => {
            order.sort_by(|&a, &b| {
                g.authority(b)
                    .total_cmp(&g.authority(a))
                    .then_with(|| a.cmp(&b))
            });
        }
    }
    order
}

/// Degree-descending order (the default used by the team-discovery engine).
pub fn degree_descending_order(g: &ExpertGraph) -> Vec<NodeId> {
    compute_order(g, VertexOrder::DegreeDescending)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atd_graph::GraphBuilder;

    fn star() -> ExpertGraph {
        // Node 3 is the hub of a star with leaves 0, 1, 2.
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|i| b.add_node(1.0 + i as f64)).collect();
        b.add_edge(n[3], n[0], 1.0).unwrap();
        b.add_edge(n[3], n[1], 1.0).unwrap();
        b.add_edge(n[3], n[2], 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn degree_order_puts_hub_first() {
        let g = star();
        let order = degree_descending_order(&g);
        assert_eq!(order[0], NodeId(3));
    }

    #[test]
    fn degree_ties_break_by_id() {
        let g = star();
        let order = degree_descending_order(&g);
        assert_eq!(&order[1..], &[NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn id_order_is_identity() {
        let g = star();
        let order = compute_order(&g, VertexOrder::IdAscending);
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn authority_order_descends() {
        let g = star();
        let order = compute_order(&g, VertexOrder::AuthorityDescending);
        assert_eq!(order[0], NodeId(3), "authority 4.0 is the highest");
        assert_eq!(order[3], NodeId(0));
    }
}
