//! The contract of the one-to-many query engine: scatter-based distances
//! are **bit-identical** to the pairwise merge-join on arbitrary weighted
//! graphs — same finite values, same `INFINITY` for disconnected pairs,
//! same `u == v` behavior — under every vertex ordering, and for every
//! source in sequence on one reused scratch (reload must fully erase the
//! previous source).

use atd_distance::order::VertexOrder;
use atd_distance::{
    BuildConfig, DistanceOracle, LabelStorage, PrunedLandmarkLabeling, SourceScatter,
};
use atd_graph::{GraphBuilder, NodeId};
use proptest::prelude::*;

fn random_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (2usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.01f64..5.0), 0..50);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> atd_graph::ExpertGraph {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_node(1.0 + (i % 5) as f64);
    }
    for &(u, v, w) in edges {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v), w).unwrap();
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scatter == merge-join, to the bit, on every ordered pair. Covers
    /// `u == v` and disconnected pairs (random sparse graphs regularly
    /// split into components).
    #[test]
    fn scatter_equals_merge_join((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let pll = PrunedLandmarkLabeling::build(&g);
        let labels = pll.labels();
        let mut scatter = SourceScatter::for_labels(labels);
        for u in 0..g.num_nodes() {
            scatter.load(labels, u);
            for v in 0..g.num_nodes() {
                let one_to_many = scatter.distance(labels, v);
                let merge = labels.query(u, v);
                prop_assert_eq!(
                    one_to_many.to_bits(),
                    merge.to_bits(),
                    "({},{}): scatter {} vs merge-join {}",
                    u, v, one_to_many, merge
                );
            }
        }
    }

    /// The `Option`-level wrapper agrees with the oracle's pairwise
    /// `distance`, including `Some(0.0)` on the diagonal and `None` across
    /// components.
    #[test]
    fn query_one_to_many_equals_distance((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let pll = PrunedLandmarkLabeling::build(&g);
        let mut scatter = pll.scatter();
        for u in g.nodes() {
            pll.load_source(&mut scatter, u);
            for v in g.nodes() {
                let batched = pll.query_one_to_many(&scatter, v);
                let pairwise = pll.distance(u, v);
                prop_assert_eq!(
                    batched.map(f64::to_bits),
                    pairwise.map(f64::to_bits),
                    "({},{}): batched {:?} vs pairwise {:?}",
                    u, v, batched, pairwise
                );
            }
        }
    }

    /// Every storage backend answers every scatter query bit-identically:
    /// each backend's one-to-many scan decodes the same entries in the
    /// same order the CSR slice walk reads them (with dict distances read
    /// through the value table as identical bit patterns), so the sums
    /// (and their f64 bits) cannot differ — and each backend matches its
    /// own pairwise merge-join.
    #[test]
    fn scatter_is_storage_independent((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let csr = PrunedLandmarkLabeling::build(&g);
        let mut sc_csr = csr.scatter();
        for storage in &LabelStorage::ALL[1..] {
            let other = PrunedLandmarkLabeling::build_with_config(
                &g,
                VertexOrder::DegreeDescending,
                &BuildConfig {
                    storage: *storage,
                    ..BuildConfig::default()
                },
            );
            prop_assert_eq!(other.storage(), *storage);
            let mut sc_other = other.scatter();
            for u in g.nodes() {
                csr.load_source(&mut sc_csr, u);
                other.load_source(&mut sc_other, u);
                for v in g.nodes() {
                    let a = csr.query_one_to_many(&sc_csr, v);
                    let b = other.query_one_to_many(&sc_other, v);
                    prop_assert_eq!(
                        a.map(f64::to_bits),
                        b.map(f64::to_bits),
                        "({},{}): csr {:?} vs {} {:?}",
                        u, v, a, storage.name(), b
                    );
                    let pairwise = other.labels().query(u.index(), v.index());
                    let scattered = sc_other.distance(other.labels(), v.index());
                    prop_assert_eq!(
                        pairwise.to_bits(), scattered.to_bits(),
                        "({},{}): {} merge {} vs scatter {}",
                        u, v, storage.name(), pairwise, scattered
                    );
                }
            }
        }
    }

    /// Ordering only changes label sizes, never one-to-many answers.
    #[test]
    fn scatter_is_order_independent((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let base = PrunedLandmarkLabeling::build(&g);
        let alt =
            PrunedLandmarkLabeling::build_with_order(&g, VertexOrder::AuthorityDescending);
        let mut sc_base = base.scatter();
        let mut sc_alt = alt.scatter();
        for u in g.nodes() {
            base.load_source(&mut sc_base, u);
            alt.load_source(&mut sc_alt, u);
            for v in g.nodes() {
                let (a, b) = (
                    base.query_one_to_many(&sc_base, v),
                    alt.query_one_to_many(&sc_alt, v),
                );
                match (a, b) {
                    (Some(x), Some(y)) => prop_assert!(
                        (x - y).abs() < 1e-9,
                        "({},{}): {} vs {}", u, v, x, y
                    ),
                    (x, y) => prop_assert_eq!(x, y),
                }
            }
        }
    }
}
