//! The persistence contract: `save → load` is bit-lossless for **every**
//! storage backend (labels, stats, storage tag), and loading is total —
//! any corrupted, truncated, stale, or malicious byte stream yields a
//! clean [`PersistError`], never a panic. The corruption half flips every
//! byte and cuts every prefix of real dumps, then re-seals patched
//! payloads with the format's own checksum to drive the *structural*
//! validation behind it (out-of-range dictionary codes, malformed varint
//! blocks, non-monotone offsets).

use atd_distance::persist::{checksum, HEADER_LEN};
use atd_distance::{
    CompressedDictLabelSet, CompressedLabelSet, DictLabelSet, LabelEntry, LabelSet, LabelStore,
    PersistError, PrunedLandmarkLabeling,
};
use proptest::prelude::*;

/// Random per-node label lists: strictly ascending ranks from random
/// gaps (crossing the varint byte-width boundaries) and non-negative
/// distances with heavy repetition (the shape dictionary codes exist
/// for). Ranks stay below the node count often enough to exercise both
/// small and large gaps.
fn random_lists() -> impl Strategy<Value = Vec<Vec<LabelEntry>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..40_000, 0.0f64..50.0), 0..32),
        0..12,
    )
    .prop_map(|nodes| {
        nodes
            .into_iter()
            .map(|gaps| {
                let mut rank: u64 = 0;
                let mut list = Vec::with_capacity(gaps.len());
                for (i, (gap, dist)) in gaps.into_iter().enumerate() {
                    rank = if i == 0 {
                        gap as u64
                    } else {
                        rank + 1 + gap as u64
                    };
                    let dist = if i % 8 == 7 {
                        0.0
                    } else if i % 3 == 0 {
                        (gap % 5) as f64 * 0.25
                    } else {
                        dist
                    };
                    list.push(LabelEntry {
                        hub_rank: rank as u32,
                        dist,
                    });
                }
                list
            })
            .collect()
    })
}

/// Every backend built from the same lists (order matches
/// `LabelStorage::ALL`).
fn stores(lists: &[Vec<LabelEntry>]) -> Vec<LabelStore> {
    vec![
        LabelStore::from(LabelSet::from_lists(lists)),
        LabelStore::from(CompressedLabelSet::from_lists(lists)),
        LabelStore::from(DictLabelSet::from_lists(lists)),
        LabelStore::from(CompressedDictLabelSet::from_lists(lists)),
    ]
}

const HASH: u64 = 0x0123_4567_89ab_cdef;

fn assert_stores_bit_identical(a: &LabelStore, b: &LabelStore) {
    assert_eq!(a.storage(), b.storage());
    assert_eq!(a.stats(), b.stats());
    for v in 0..a.num_nodes() {
        let la: Vec<LabelEntry> = a.entries(v).collect();
        let lb: Vec<LabelEntry> = b.entries(v).collect();
        assert_eq!(la.len(), lb.len(), "node {v}");
        for (x, y) in la.iter().zip(&lb) {
            assert_eq!(x.hub_rank, y.hub_rank, "node {v}");
            assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "node {v}");
        }
    }
}

/// Recomputes the payload checksum after a test patched payload bytes,
/// so the patch reaches the structural validation instead of dying at
/// the checksum gate.
fn reseal(bytes: &mut [u8]) {
    let sum = checksum(&bytes[HEADER_LEN..]);
    bytes[40..48].copy_from_slice(&sum.to_le_bytes());
}

fn e(hub_rank: u32, dist: f64) -> LabelEntry {
    LabelEntry { hub_rank, dist }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// save → load reproduces every backend bit-identically: same
    /// storage tag, same stats (hence same per-plane bytes), same rank
    /// and distance bits for every node.
    #[test]
    fn roundtrip_is_bit_lossless_for_every_backend(lists in random_lists()) {
        for store in stores(&lists) {
            let bytes = store.to_bytes(HASH);
            let loaded = LabelStore::from_bytes(&bytes, store.num_nodes(), HASH)
                .unwrap_or_else(|err| panic!("{:?}: {err}", store.storage()));
            assert_stores_bit_identical(&store, &loaded);
        }
    }

    /// Flipping ANY single byte of a valid dump makes loading fail
    /// cleanly: every byte is covered by the magic, a header field
    /// check, the fingerprint, or the payload checksum — and nothing
    /// panics.
    #[test]
    fn any_single_byte_flip_is_rejected(lists in random_lists(), seed in 0usize..1_000_000) {
        for store in stores(&lists) {
            let mut bytes = store.to_bytes(HASH);
            let pos = seed % bytes.len();
            bytes[pos] ^= 0xff;
            let result = LabelStore::from_bytes(&bytes, store.num_nodes(), HASH);
            prop_assert!(
                result.is_err(),
                "{:?}: flip at byte {pos} of {} went unnoticed",
                store.storage(),
                bytes.len()
            );
        }
    }

    /// A dump loaded against a *different* snapshot fingerprint is
    /// rejected as stale for every backend.
    #[test]
    fn wrong_fingerprint_is_stale(lists in random_lists()) {
        for store in stores(&lists) {
            let bytes = store.to_bytes(HASH);
            let err = LabelStore::from_bytes(&bytes, store.num_nodes(), HASH ^ 1).unwrap_err();
            prop_assert!(matches!(err, PersistError::StaleIndex { .. }), "{err}");
        }
    }
}

#[test]
fn every_truncation_point_is_rejected_cleanly() {
    let lists = vec![
        vec![e(0, 0.25), e(1, 1.5), e(300, 2.0)],
        vec![],
        vec![e(2, 0.25), e(5, 1.5), e(6, 0.0)],
    ];
    for store in stores(&lists) {
        let bytes = store.to_bytes(HASH);
        for cut in 0..bytes.len() {
            let result = LabelStore::from_bytes(&bytes[..cut], store.num_nodes(), HASH);
            assert!(
                result.is_err(),
                "{:?}: truncation at {cut}/{} went unnoticed",
                store.storage(),
                bytes.len()
            );
        }
    }
}

#[test]
fn header_field_corruption_yields_the_matching_error() {
    let store = LabelStore::from(LabelSet::from_lists(&[vec![e(0, 1.0)]]));
    let bytes = store.to_bytes(HASH);
    let load = |b: &[u8]| LabelStore::from_bytes(b, 1, HASH);

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    assert!(matches!(load(&bad_magic), Err(PersistError::BadMagic)));

    let mut bad_version = bytes.clone();
    bad_version[4] = 99;
    assert!(matches!(
        load(&bad_version),
        Err(PersistError::UnsupportedVersion(99))
    ));

    let mut bad_tag = bytes.clone();
    bad_tag[6] = 17;
    assert!(matches!(
        load(&bad_tag),
        Err(PersistError::BadStorageTag(17))
    ));

    let mut bad_reserved = bytes.clone();
    bad_reserved[7] = 1;
    assert!(matches!(load(&bad_reserved), Err(PersistError::Corrupt(_))));

    let mut bad_checksum = bytes.clone();
    bad_checksum[40] ^= 1;
    assert!(matches!(
        load(&bad_checksum),
        Err(PersistError::ChecksumMismatch)
    ));

    let mut flipped_payload = bytes.clone();
    let last = flipped_payload.len() - 1;
    flipped_payload[last] ^= 1;
    assert!(matches!(
        load(&flipped_payload),
        Err(PersistError::ChecksumMismatch)
    ));
}

#[test]
fn dictionary_code_beyond_table_is_rejected_not_panicking() {
    // One entry, one table value: the only legal code is 0. The code
    // plane is the final plane — one u8 followed by 7 alignment-pad
    // bytes in the v2 layout — so the code itself sits 8 bytes from the
    // end; patch it to 1 (== table len) and re-seal.
    let store = LabelStore::from(DictLabelSet::from_lists(&[vec![e(0, 0.5)]]));
    let mut bytes = store.to_bytes(HASH);
    let last = bytes.len() - 8;
    bytes[last] = 1;
    reseal(&mut bytes);
    let err = LabelStore::from_bytes(&bytes, 1, HASH).unwrap_err();
    assert!(
        matches!(err, PersistError::Corrupt(msg) if msg.contains("code")),
        "{err}"
    );
}

#[test]
fn malformed_varint_block_is_rejected_not_panicking() {
    // Compressed v2 layout: max-rank word (8), offsets (8+8),
    // byte_offsets (8+8), then the rank-byte block (8-byte length
    // prefix + one varint byte). Setting that varint's continuation bit
    // leaves the block truncated mid-varint — exactly what the
    // unchecked hot-path decoder would have walked off the end of.
    let store = LabelStore::from(CompressedLabelSet::from_lists(&[vec![e(0, 0.5)]]));
    let mut bytes = store.to_bytes(HASH);
    let rank_byte = HEADER_LEN + 8 + 16 + 16 + 8;
    assert_eq!(bytes[rank_byte], 0x00, "rank 0 encodes as one zero byte");
    bytes[rank_byte] = 0x80;
    reseal(&mut bytes);
    let err = LabelStore::from_bytes(&bytes, 1, HASH).unwrap_err();
    assert!(
        matches!(err, PersistError::Corrupt(msg) if msg.contains("varint")),
        "{err}"
    );
}

#[test]
fn non_monotone_offsets_are_rejected_not_panicking() {
    // CSR v2 layout: max-rank word, then the offsets block = 8-byte
    // length prefix + [0, 1, 2] u32s. Patching offsets[1] to 5 breaks
    // monotonicity (and the slice bounds the unchecked `of()` would
    // have used).
    let store = LabelStore::from(LabelSet::from_lists(&[vec![e(0, 1.0)], vec![e(1, 2.0)]]));
    let mut bytes = store.to_bytes(HASH);
    let offset1 = HEADER_LEN + 8 + 8 + 4;
    bytes[offset1..offset1 + 4].copy_from_slice(&5u32.to_le_bytes());
    reseal(&mut bytes);
    let err = LabelStore::from_bytes(&bytes, 2, HASH).unwrap_err();
    assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
}

#[test]
fn descending_csr_ranks_are_rejected() {
    // Two entries for one node with swapped ranks: build the valid dump
    // first, then swap the two rank u32s (offsets 8+12 in) and re-seal.
    let store = LabelStore::from(LabelSet::from_lists(&[vec![e(3, 1.0), e(9, 2.0)]]));
    let mut bytes = store.to_bytes(HASH);
    let ranks_at = HEADER_LEN + 8 + (8 + 8) + 8; // max-rank word, offsets block, ranks length prefix
    bytes[ranks_at..ranks_at + 4].copy_from_slice(&9u32.to_le_bytes());
    bytes[ranks_at + 4..ranks_at + 8].copy_from_slice(&3u32.to_le_bytes());
    reseal(&mut bytes);
    let err = LabelStore::from_bytes(&bytes, 1, HASH).unwrap_err();
    assert!(
        matches!(err, PersistError::Corrupt(msg) if msg.contains("ascending")),
        "{err}"
    );
}

#[test]
fn pll_load_rejects_hub_ranks_beyond_the_node_count() {
    // Structurally valid store, but rank 5 cannot be a vertex rank in a
    // 1-node graph: LabelStore::load_from accepts it (raw stores carry
    // no such bound), PrunedLandmarkLabeling::load_from must reject it —
    // its scatter scratch direct-indexes by rank.
    use atd_graph::GraphBuilder;
    let mut b = GraphBuilder::new();
    b.add_node(1.0);
    let g = b.build().unwrap();
    let store = LabelStore::from(LabelSet::from_lists(&[vec![e(5, 1.0)]]));
    let bytes = store.to_bytes(atd_distance::graph_fingerprint(&g));
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "atd_persist_rank_bound_{}_{:?}.atdl",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, &bytes).unwrap();
    assert!(LabelStore::load_from(&path, &g).is_ok(), "store-level load");
    let err = PrunedLandmarkLabeling::load_from(&path, &g).unwrap_err();
    assert!(
        matches!(err, PersistError::Corrupt(msg) if msg.contains("rank")),
        "{err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn pll_roundtrip_through_files_is_bit_identical_and_queryable() {
    // End-to-end through real files: build an index on a real graph,
    // save, load, and compare labels and a full pairwise query matrix
    // bitwise.
    use atd_graph::GraphBuilder;
    let mut b = GraphBuilder::new();
    let ids: Vec<_> = (0..12).map(|i| b.add_node(1.0 + i as f64)).collect();
    for i in 0..ids.len() {
        b.add_edge(ids[i], ids[(i + 1) % ids.len()], 1.0 + (i % 3) as f64 * 0.5)
            .unwrap();
        if i + 4 < ids.len() {
            b.add_edge(ids[i], ids[i + 4], 2.5).unwrap();
        }
    }
    let g = b.build().unwrap();
    let built = PrunedLandmarkLabeling::build(&g);
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "atd_persist_pll_roundtrip_{}_{:?}.atdl",
        std::process::id(),
        std::thread::current().id()
    ));
    built.save_to(&path, &g).unwrap();
    let loaded = PrunedLandmarkLabeling::load_from(&path, &g).unwrap();
    assert_stores_bit_identical(built.labels(), loaded.labels());
    let mut sc = loaded.scatter();
    for u in g.nodes() {
        loaded.load_source(&mut sc, u);
        for v in g.nodes() {
            assert_eq!(
                built.query_raw(u, v).to_bits(),
                loaded.query_raw(u, v).to_bits()
            );
            assert_eq!(
                loaded.query_one_to_many(&sc, v),
                built.query_one_to_many(
                    &{
                        let mut s2 = built.scatter();
                        built.load_source(&mut s2, u);
                        s2
                    },
                    v
                )
            );
        }
    }
    // A perturbed graph (one weight changed) must reject the file.
    let g2 = g.map_weights(|_, _, w| w * 2.0);
    let err = PrunedLandmarkLabeling::load_from(&path, &g2).unwrap_err();
    assert!(matches!(err, PersistError::StaleIndex { .. }), "{err}");
    std::fs::remove_file(&path).ok();
}
