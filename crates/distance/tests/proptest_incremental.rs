//! The incremental maintainer's contract: for ANY random graph, ANY
//! random mutation sequence (edge relaxations and edge insertions, via
//! the real `GraphDelta` machinery), and EVERY storage backend, after
//! every prefix of mutations the incrementally refreshed index is
//! **bit-identical** to a from-scratch sequential build on the mutated
//! graph — same ranks, same f64 bit patterns, same storage bytes. When
//! `refresh` refuses a delta (order change, blown budget), the test
//! rebuilds from scratch and keeps composing — exactly the fallback
//! contract of the serving layer.

use atd_distance::incremental::refresh;
use atd_distance::order::VertexOrder;
use atd_distance::{BuildConfig, DistanceOracle, LabelStorage, PrunedLandmarkLabeling};
use atd_graph::{ExpertGraph, GraphBuilder, GraphDelta, NodeId};
use proptest::prelude::*;

fn random_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (3usize..20).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.05f64..5.0), 1..40);
        (Just(n), edges)
    })
}

/// One mutation: lower an existing edge multiplicatively, or reinforce a
/// (possibly new) pair at a low cost.
fn mutations() -> impl Strategy<Value = Vec<(u32, u32, u32, f64, bool)>> {
    proptest::collection::vec(
        (
            0u32..1000,
            0u32..1000,
            0u32..1000,
            0.3f64..0.9,
            any::<bool>(),
        ),
        1..7,
    )
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> ExpertGraph {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_node(1.0 + (i % 7) as f64);
    }
    for &(u, v, w) in edges {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v), w).unwrap();
        }
    }
    b.build().unwrap()
}

/// Bitwise equality across entries AND encoded storage bytes.
fn bit_identical(a: &PrunedLandmarkLabeling, b: &PrunedLandmarkLabeling) -> Result<(), String> {
    if a.num_nodes() != b.num_nodes() {
        return Err("node counts differ".into());
    }
    for v in 0..a.num_nodes() {
        let la: Vec<_> = a.labels().entries(v).collect();
        let lb: Vec<_> = b.labels().entries(v).collect();
        if la.len() != lb.len() {
            return Err(format!("node {v}: {} vs {} entries", la.len(), lb.len()));
        }
        for (i, (x, y)) in la.iter().zip(&lb).enumerate() {
            if x.hub_rank != y.hub_rank {
                return Err(format!(
                    "node {v} entry {i}: rank {} vs {}",
                    x.hub_rank, y.hub_rank
                ));
            }
            if x.dist.to_bits() != y.dist.to_bits() {
                return Err(format!("node {v} entry {i}: dist {} vs {}", x.dist, y.dist));
            }
        }
    }
    if a.stats().bytes != b.stats().bytes {
        return Err(format!(
            "storage bytes differ: {} vs {}",
            a.stats().bytes,
            b.stats().bytes
        ));
    }
    Ok(())
}

/// Turns one mutation tuple into the next graph via `apply_delta`, or
/// `None` when the op degenerates (self-loop pick on an edgeless graph).
fn mutate(g: &ExpertGraph, m: (u32, u32, u32, f64, bool)) -> Option<ExpertGraph> {
    let (pick, a, b, factor, reinforce_pair) = m;
    let n = g.num_nodes() as u32;
    let mut delta = GraphDelta::new();
    if reinforce_pair {
        let (u, v) = (a % n, b % n);
        if u == v {
            return None;
        }
        delta.reinforce_edge(NodeId(u), NodeId(v), factor);
    } else {
        let edges: Vec<_> = g.edges().collect();
        if edges.is_empty() {
            return None;
        }
        let (u, v, w) = edges[pick as usize % edges.len()];
        delta.reinforce_edge(u, v, w * factor);
    }
    Some(g.apply_delta(&delta).expect("valid mutation"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// refresh == scratch rebuild, bitwise, after every mutation prefix,
    /// on every backend. A generous hub budget keeps the incremental
    /// path engaged; refusals (e.g. an insertion that reshuffles the
    /// vertex order) fall back to a scratch build and composition
    /// continues from there.
    #[test]
    fn refresh_is_bit_identical_after_every_prefix(
        (n, edges) in random_graph(),
        muts in mutations(),
    ) {
        for storage in LabelStorage::ALL {
            let config = BuildConfig {
                storage,
                incremental_hub_budget: Some(10_000),
                ..BuildConfig::sequential()
            };
            let mut cur = build(n, &edges);
            let mut pll = PrunedLandmarkLabeling::build_with_config(
                &cur,
                VertexOrder::DegreeDescending,
                &config,
            );
            for &m in &muts {
                let Some(next) = mutate(&cur, m) else { continue };
                let scratch = PrunedLandmarkLabeling::build_with_config(
                    &next,
                    VertexOrder::DegreeDescending,
                    &config,
                );
                match refresh(&pll, &cur, &next, VertexOrder::DegreeDescending, &config) {
                    Ok((inc, _report)) => {
                        let res = bit_identical(&inc, &scratch);
                        prop_assert!(
                            res.is_ok(),
                            "{}: {}",
                            storage.name(),
                            res.unwrap_err()
                        );
                        pll = inc;
                    }
                    Err(_) => pll = scratch,
                }
                cur = next;
            }
        }
    }

    /// The default (tight) hub budget: whatever path each step takes,
    /// every pairwise distance answered by the composed index matches a
    /// scratch build exactly — the fallback contract end to end.
    #[test]
    fn default_budget_composition_answers_exactly(
        (n, edges) in random_graph(),
        muts in mutations(),
    ) {
        let config = BuildConfig::sequential();
        let mut cur = build(n, &edges);
        let mut pll = PrunedLandmarkLabeling::build_with_config(
            &cur,
            VertexOrder::DegreeDescending,
            &config,
        );
        for &m in &muts {
            let Some(next) = mutate(&cur, m) else { continue };
            pll = match refresh(&pll, &cur, &next, VertexOrder::DegreeDescending, &config) {
                Ok((inc, _)) => inc,
                Err(_) => PrunedLandmarkLabeling::build_with_config(
                    &next,
                    VertexOrder::DegreeDescending,
                    &config,
                ),
            };
            cur = next;
        }
        let scratch = PrunedLandmarkLabeling::build_with_config(
            &cur,
            VertexOrder::DegreeDescending,
            &config,
        );
        for u in cur.nodes() {
            for v in cur.nodes() {
                let a = pll.distance(u, v);
                let b = scratch.distance(u, v);
                prop_assert_eq!(
                    a.map(f64::to_bits),
                    b.map(f64::to_bits),
                    "({:?},{:?})", u, v
                );
            }
        }
    }
}
