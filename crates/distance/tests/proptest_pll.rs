//! The load-bearing property of the whole distance layer: PLL answers are
//! exactly Dijkstra's on arbitrary weighted graphs, including disconnected
//! ones, under every vertex ordering.

use atd_distance::order::VertexOrder;
use atd_distance::{DijkstraOracle, DistanceOracle, PrunedLandmarkLabeling};
use atd_graph::{GraphBuilder, NodeId};
use proptest::prelude::*;

fn random_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (2usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.01f64..5.0), 0..50);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> atd_graph::ExpertGraph {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_node(1.0 + (i % 7) as f64);
    }
    for &(u, v, w) in edges {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v), w).unwrap();
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PLL == Dijkstra on every pair, degree order.
    #[test]
    fn pll_equals_dijkstra((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let pll = PrunedLandmarkLabeling::build(&g);
        let dij = DijkstraOracle::new(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                let (a, b) = (pll.distance(u, v), dij.distance(u, v));
                match (a, b) {
                    (Some(x), Some(y)) =>
                        prop_assert!((x - y).abs() < 1e-9, "({u},{v}): {x} vs {y}"),
                    (x, y) => prop_assert_eq!(x, y, "({:?},{:?})", u, v),
                }
            }
        }
    }

    /// PLL == Dijkstra under the authority ordering too (order only affects
    /// index size, never correctness).
    #[test]
    fn pll_equals_dijkstra_authority_order((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let pll =
            PrunedLandmarkLabeling::build_with_order(&g, VertexOrder::AuthorityDescending);
        let dij = DijkstraOracle::new(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                match (pll.distance(u, v), dij.distance(u, v)) {
                    (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
                    (x, y) => prop_assert_eq!(x, y),
                }
            }
        }
    }

    /// Distance is symmetric (the graph is undirected).
    #[test]
    fn pll_distance_is_symmetric((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let pll = PrunedLandmarkLabeling::build(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                match (pll.distance(u, v), pll.distance(v, u)) {
                    (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
                    (x, y) => prop_assert_eq!(x, y),
                }
            }
        }
    }

    /// Triangle inequality holds for PLL answers.
    #[test]
    fn pll_triangle_inequality((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let pll = PrunedLandmarkLabeling::build(&g);
        let nodes: Vec<NodeId> = g.nodes().collect();
        for &a in nodes.iter().take(6) {
            for &b in nodes.iter().take(6) {
                for &c in nodes.iter().take(6) {
                    if let (Some(ab), Some(bc), Some(ac)) =
                        (pll.distance(a, b), pll.distance(b, c), pll.distance(a, c))
                    {
                        prop_assert!(ac <= ab + bc + 1e-9);
                    }
                }
            }
        }
    }
}
