//! The parallel builder's contract: for ANY thread count and batch size,
//! the batch-synchronous build produces a label set **bit-identical** to
//! the sequential algorithm's — same ranks, same distances down to the
//! f64 bit pattern — on arbitrary weighted graphs, including disconnected
//! ones. Plus the end-to-end check: those labels answer every pairwise
//! distance exactly like the Dijkstra oracle.

use atd_distance::order::VertexOrder;
use atd_distance::{BuildConfig, DijkstraOracle, DistanceOracle, PrunedLandmarkLabeling};
use atd_graph::{GraphBuilder, NodeId};
use proptest::prelude::*;

fn random_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (2usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.01f64..5.0), 0..50);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> atd_graph::ExpertGraph {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_node(1.0 + (i % 7) as f64);
    }
    for &(u, v, w) in edges {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v), w).unwrap();
        }
    }
    b.build().unwrap()
}

/// Bitwise label equality (ranks and f64 bit patterns per node),
/// independent of either index's storage backend.
fn bit_identical(a: &PrunedLandmarkLabeling, b: &PrunedLandmarkLabeling) -> Result<(), String> {
    if a.num_nodes() != b.num_nodes() {
        return Err("node counts differ".into());
    }
    for v in 0..a.num_nodes() {
        let la: Vec<_> = a.labels().entries(v).collect();
        let lb: Vec<_> = b.labels().entries(v).collect();
        if la.len() != lb.len() {
            return Err(format!("node {v}: {} vs {} entries", la.len(), lb.len()));
        }
        for (i, (x, y)) in la.iter().zip(&lb).enumerate() {
            if x.hub_rank != y.hub_rank {
                return Err(format!(
                    "node {v} entry {i}: rank {} vs {}",
                    x.hub_rank, y.hub_rank
                ));
            }
            if x.dist.to_bits() != y.dist.to_bits() {
                return Err(format!("node {v} entry {i}: dist {} vs {}", x.dist, y.dist));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel == sequential, bitwise, across thread counts {1, 2, 4} and
    /// a spread of batch sizes (1 = degenerate, small odd sizes stress the
    /// round-robin shard assignment, 64 covers the single-batch case).
    #[test]
    fn parallel_build_is_bit_identical((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let seq = PrunedLandmarkLabeling::build_with_config(
            &g,
            VertexOrder::DegreeDescending,
            &BuildConfig::sequential(),
        );
        for &threads in &[1usize, 2, 4] {
            for &batch_size in &[1usize, 2, 3, 7, 64] {
                let par = PrunedLandmarkLabeling::build_with_config(
                    &g,
                    VertexOrder::DegreeDescending,
                    &BuildConfig { threads: Some(threads), batch_size, ..BuildConfig::default() },
                );
                let res = bit_identical(&seq, &par);
                prop_assert!(
                    res.is_ok(),
                    "threads={} batch_size={}: {}",
                    threads, batch_size, res.unwrap_err()
                );
            }
        }
    }

    /// The parallel build is not just self-consistent — it answers every
    /// pairwise query exactly like the ground-truth Dijkstra oracle.
    #[test]
    fn parallel_build_matches_dijkstra((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let par = PrunedLandmarkLabeling::build_with_config(
            &g,
            VertexOrder::DegreeDescending,
            &BuildConfig { threads: Some(4), batch_size: 5, ..BuildConfig::default() },
        );
        let dij = DijkstraOracle::new(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                match (par.distance(u, v), dij.distance(u, v)) {
                    (Some(x), Some(y)) =>
                        prop_assert!((x - y).abs() < 1e-9, "({u},{v}): {x} vs {y}"),
                    (x, y) => prop_assert_eq!(x, y, "({:?},{:?})", u, v),
                }
            }
        }
    }

    /// The authority ordering goes through the same parallel machinery.
    #[test]
    fn parallel_authority_order_is_bit_identical((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let seq = PrunedLandmarkLabeling::build_with_config(
            &g,
            VertexOrder::AuthorityDescending,
            &BuildConfig::sequential(),
        );
        let par = PrunedLandmarkLabeling::build_with_config(
            &g,
            VertexOrder::AuthorityDescending,
            &BuildConfig { threads: Some(2), batch_size: 4, ..BuildConfig::default() },
        );
        let res = bit_identical(&seq, &par);
        prop_assert!(res.is_ok(), "{}", res.unwrap_err());
    }
}
