//! The zero-copy loading contract: for every storage backend,
//! `save → load_mmap` borrows the label planes straight out of the
//! mapped file and is **bit-identical** to the owned decode — same
//! labels, same stats, same pairwise and one-to-many query bits. The
//! corruption half drives every single-byte flip and every truncation
//! prefix through the mmap path (the checksum/metadata gates must catch
//! what the skipped per-entry validation no longer would), and legacy
//! v1 files must keep loading through the owned fallback.

use atd_distance::persist::{checksum, HEADER_LEN};
use atd_distance::{
    graph_fingerprint, BuildConfig, CompressedDictLabelSet, CompressedLabelSet, DictLabelSet,
    LabelEntry, LabelSet, LabelStorage, LabelStore, PersistError, PrunedLandmarkLabeling,
    VertexOrder,
};
use atd_graph::{ExpertGraph, GraphBuilder};
use proptest::prelude::*;
use std::path::PathBuf;

/// A unique temp path that removes its file on drop, so failing tests
/// don't litter the temp dir.
struct TempIndex(PathBuf);

impl TempIndex {
    fn new(tag: &str) -> TempIndex {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        TempIndex(std::env::temp_dir().join(format!(
            "atd_mmap_{tag}_{}_{}.atdl",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        )))
    }
}

impl Drop for TempIndex {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

fn random_lists() -> impl Strategy<Value = Vec<Vec<LabelEntry>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..40_000, 0.0f64..50.0), 0..24),
        0..10,
    )
    .prop_map(|nodes| {
        nodes
            .into_iter()
            .map(|gaps| {
                let mut rank: u64 = 0;
                let mut list = Vec::with_capacity(gaps.len());
                for (i, (gap, dist)) in gaps.into_iter().enumerate() {
                    rank = if i == 0 {
                        gap as u64
                    } else {
                        rank + 1 + gap as u64
                    };
                    let dist = if i % 3 == 0 {
                        (gap % 5) as f64 * 0.25
                    } else {
                        dist
                    };
                    list.push(LabelEntry {
                        hub_rank: rank as u32,
                        dist,
                    });
                }
                list
            })
            .collect()
    })
}

fn stores(lists: &[Vec<LabelEntry>]) -> Vec<LabelStore> {
    vec![
        LabelStore::from(LabelSet::from_lists(lists)),
        LabelStore::from(CompressedLabelSet::from_lists(lists)),
        LabelStore::from(DictLabelSet::from_lists(lists)),
        LabelStore::from(CompressedDictLabelSet::from_lists(lists)),
    ]
}

const HASH: u64 = 0x0dd0_beef_cafe_f00d;

fn assert_stores_bit_identical(a: &LabelStore, b: &LabelStore) {
    assert_eq!(a.storage(), b.storage());
    assert_eq!(a.stats(), b.stats());
    for v in 0..a.num_nodes() {
        let la: Vec<LabelEntry> = a.entries(v).collect();
        let lb: Vec<LabelEntry> = b.entries(v).collect();
        assert_eq!(la.len(), lb.len(), "node {v}");
        for (x, y) in la.iter().zip(&lb) {
            assert_eq!(x.hub_rank, y.hub_rank, "node {v}");
            assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "node {v}");
        }
    }
}

/// A small weighted graph with cycles and chords, the shape the PLL
/// end-to-end tests build real indexes on.
fn test_graph() -> ExpertGraph {
    let mut b = GraphBuilder::new();
    let ids: Vec<_> = (0..14).map(|i| b.add_node(1.0 + i as f64 * 0.5)).collect();
    for i in 0..ids.len() {
        b.add_edge(ids[i], ids[(i + 1) % ids.len()], 1.0 + (i % 4) as f64 * 0.5)
            .unwrap();
        if i + 5 < ids.len() {
            b.add_edge(ids[i], ids[i + 5], 2.25).unwrap();
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// save → load_mmap is bit-identical to the owned load for every
    /// backend, and actually borrows (zero-copy) wherever native or
    /// heap-backed mapping produced an aligned v2 region — which is
    /// everywhere, by construction.
    #[test]
    fn mmap_load_is_bit_identical_to_owned_for_every_backend(lists in random_lists()) {
        for store in stores(&lists) {
            let bytes = store.to_bytes(HASH);
            let tmp = TempIndex::new("identity");
            std::fs::write(&tmp.0, &bytes).unwrap();
            let owned = LabelStore::from_bytes(&bytes, store.num_nodes(), HASH).unwrap();
            let mapped = {
                // load_mmap wants a graph for the fingerprint; at the
                // store level we exercise from_bytes vs the mapped
                // region through the PLL-free path below instead.
                let region = atd_distance::MmapRegion::map_file(&tmp.0).unwrap();
                LabelStore::from_region(&region, store.num_nodes(), HASH).unwrap()
            };
            prop_assert!(mapped.is_zero_copy(), "{:?} did not borrow", store.storage());
            assert_stores_bit_identical(&store, &owned);
            assert_stores_bit_identical(&store, &mapped);
            // Re-serializing the mapped store reproduces the file bytes
            // exactly — nothing was lost or reordered in the borrow.
            prop_assert_eq!(mapped.to_bytes(HASH), bytes);
        }
    }

    /// Flipping ANY single byte of a v2 dump makes the mmap load fail
    /// cleanly — the word-lane checksum (plus header checks) covers
    /// every payload byte the skipped per-entry validation used to.
    #[test]
    fn mmap_load_rejects_any_single_byte_flip(lists in random_lists(), seed in 0usize..1_000_000) {
        for store in stores(&lists) {
            let mut bytes = store.to_bytes(HASH);
            let pos = seed % bytes.len();
            bytes[pos] ^= 0xff;
            let tmp = TempIndex::new("flip");
            std::fs::write(&tmp.0, &bytes).unwrap();
            let region = atd_distance::MmapRegion::map_file(&tmp.0).unwrap();
            let result = LabelStore::from_region(&region, store.num_nodes(), HASH);
            prop_assert!(
                result.is_err(),
                "{:?}: flip at byte {pos} of {} went unnoticed by the mmap path",
                store.storage(),
                bytes.len()
            );
        }
    }
}

#[test]
fn mmap_load_rejects_every_truncation_point() {
    let lists = vec![
        vec![
            LabelEntry {
                hub_rank: 0,
                dist: 0.25,
            },
            LabelEntry {
                hub_rank: 1,
                dist: 1.5,
            },
            LabelEntry {
                hub_rank: 300,
                dist: 2.0,
            },
        ],
        vec![],
        vec![
            LabelEntry {
                hub_rank: 2,
                dist: 0.25,
            },
            LabelEntry {
                hub_rank: 5,
                dist: 1.5,
            },
        ],
    ];
    for store in stores(&lists) {
        let bytes = store.to_bytes(HASH);
        for cut in 0..bytes.len() {
            let tmp = TempIndex::new("cut");
            std::fs::write(&tmp.0, &bytes[..cut]).unwrap();
            let region = atd_distance::MmapRegion::map_file(&tmp.0).unwrap();
            let result = LabelStore::from_region(&region, store.num_nodes(), HASH);
            assert!(
                result.is_err(),
                "{:?}: truncation at {cut}/{} went unnoticed by the mmap path",
                store.storage(),
                bytes.len()
            );
        }
    }
}

/// End-to-end through the PLL engine: build on a real graph with every
/// backend, save, load both ways, and compare every pairwise and
/// one-to-many query bit-for-bit.
#[test]
fn pll_mmap_queries_are_bit_identical_across_backends() {
    let g = test_graph();
    for storage in LabelStorage::ALL {
        let config = BuildConfig {
            storage,
            ..BuildConfig::default()
        };
        let built = PrunedLandmarkLabeling::build_with_config(&g, VertexOrder::default(), &config);
        let tmp = TempIndex::new("pll");
        built.save_to(&tmp.0, &g).unwrap();
        let owned = PrunedLandmarkLabeling::load_from(&tmp.0, &g).unwrap();
        let mapped = PrunedLandmarkLabeling::load_mmap(&tmp.0, &g).unwrap();
        assert!(
            mapped.labels().is_zero_copy(),
            "{storage:?}: mmap load did not borrow"
        );
        assert!(
            !owned.labels().is_zero_copy(),
            "{storage:?}: owned load borrowed"
        );
        assert_stores_bit_identical(built.labels(), mapped.labels());
        let mut sc_mapped = mapped.scatter();
        let mut sc_owned = owned.scatter();
        for u in g.nodes() {
            mapped.load_source(&mut sc_mapped, u);
            owned.load_source(&mut sc_owned, u);
            for v in g.nodes() {
                assert_eq!(
                    owned.query_raw(u, v).to_bits(),
                    mapped.query_raw(u, v).to_bits(),
                    "{storage:?}: pairwise {u:?}→{v:?}"
                );
                assert_eq!(
                    owned.query_one_to_many(&sc_owned, v),
                    mapped.query_one_to_many(&sc_mapped, v),
                    "{storage:?}: scatter {u:?}→{v:?}"
                );
            }
        }
    }
}

/// Legacy v1 files (unaligned planes, byte-wise checksum) still load —
/// through the owned fallback — via both `load_from` and `load_mmap`.
#[test]
fn v1_files_load_through_the_owned_fallback() {
    let g = test_graph();
    let built = PrunedLandmarkLabeling::build(&g);
    let v1_bytes = built.labels().to_bytes_v1(graph_fingerprint(&g));
    assert_eq!(
        u16::from_le_bytes([v1_bytes[4], v1_bytes[5]]),
        1,
        "legacy writer stamps version 1"
    );
    let tmp = TempIndex::new("v1");
    std::fs::write(&tmp.0, &v1_bytes).unwrap();
    let owned = PrunedLandmarkLabeling::load_from(&tmp.0, &g).unwrap();
    let mapped = PrunedLandmarkLabeling::load_mmap(&tmp.0, &g).unwrap();
    assert!(
        !mapped.labels().is_zero_copy(),
        "v1 files cannot be borrowed; the fallback decodes owned"
    );
    assert_stores_bit_identical(built.labels(), owned.labels());
    assert_stores_bit_identical(built.labels(), mapped.labels());
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(
                built.query_raw(u, v).to_bits(),
                mapped.query_raw(u, v).to_bits()
            );
        }
    }
}

/// The v2 `max_rank` header word is what the mmap path trusts for the
/// PLL vertex-rank bound; an inflated value (resealed past the
/// checksum) must fail the PLL load on both paths — via the O(1) bound
/// check on mmap, via the cross-check against decoded ranks on owned.
#[test]
fn inflated_max_rank_field_is_rejected_on_both_paths() {
    let g = test_graph();
    let built = PrunedLandmarkLabeling::build(&g);
    let mut bytes = built.labels().to_bytes(graph_fingerprint(&g));
    bytes[HEADER_LEN..HEADER_LEN + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
    let sum = checksum(&bytes[HEADER_LEN..]);
    bytes[40..48].copy_from_slice(&sum.to_le_bytes());
    let tmp = TempIndex::new("maxrank");
    std::fs::write(&tmp.0, &bytes).unwrap();
    let owned = PrunedLandmarkLabeling::load_from(&tmp.0, &g).unwrap_err();
    assert!(
        matches!(owned, PersistError::Corrupt(msg) if msg.contains("max-rank")),
        "{owned}"
    );
    let mapped = PrunedLandmarkLabeling::load_mmap(&tmp.0, &g).unwrap_err();
    assert!(
        matches!(mapped, PersistError::Corrupt(msg) if msg.contains("rank")),
        "{mapped}"
    );
}
